"""Ablation A1 (Section 4.2): query correctness under churn, scanRange vs. naive scan.

The paper argues (Sections 4.2.1-4.2.2) that the naive application-level scan
can miss live items when splits, merges, redistributions or ring reorganisation
overlap with a query, while scanRange provably cannot.  This ablation runs the
same churny workload with both strategies and counts queries violating
Definition 4.
"""

from benchmarks.conftest import run_figure


def test_ablation_query_correctness_under_churn(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "ablation_query_correctness",
        bench_dir=bench_json_dir,
        peers=max(10, figure_scale["peers"] - 4),
        items=figure_scale["items"],
        queries=15,
    )
    rows = {row[0]: row for row in result.rows}
    scan_strategy = rows["scan"]
    assert scan_strategy[1] > 0, "the scanRange run must actually execute queries"
    # Theorem 3: scanRange never returns an incorrect result.
    assert scan_strategy[2] == 0
    # The naive strategy executed the same number of queries (violations are
    # workload dependent and may legitimately be zero in a lucky run).
    assert rows["naive"][1] > 0
