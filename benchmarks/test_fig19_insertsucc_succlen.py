"""Figure 19: insertSucc completion time vs. successor-list length.

Paper result: the naive insertSucc is flat (~0.06 s on their LAN testbed);
the PEPPER insertSucc sits above it (~0.2-0.25 s) and grows slowly and
linearly with the successor-list length thanks to the proactive-predecessor
optimisation.  The reproduction checks the same ordering and trend on the
simulated substrate.
"""

from benchmarks.conftest import run_figure


def test_figure_19_insertsucc_vs_successor_list_length(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "figure_19",
        bench_dir=bench_json_dir,
        succ_lengths=(2, 3, 4, 5, 6, 7, 8),
        peers=figure_scale["peers"],
        items=figure_scale["items"],
    )
    naive = {row[0]: row[1] for row in result.rows}
    pepper = {row[0]: row[2] for row in result.rows}
    # PEPPER is always at least as expensive as the naive insert.
    assert all(pepper[length] >= naive[length] for length in naive)
    # ... and the cost grows with the successor-list length.
    assert pepper[8] > pepper[2]
    # ... while the naive baseline stays essentially flat.
    assert naive[8] <= naive[2] * 3
