"""Ablation A2 (Section 5): system and item availability across merges + a failure.

Reproduces the paper's Figure 17 argument quantitatively: with the naive leave
and no extra-hop replication, a merge followed by a single failure can lose
items; with the paper's protocols nothing is lost.
"""

from benchmarks.conftest import run_figure


def test_ablation_item_availability_after_merges(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "ablation_availability",
        bench_dir=bench_json_dir,
        peers=max(10, figure_scale["peers"] - 4),
        items=max(60, figure_scale["items"] - 30),
    )
    rows = {row[0]: row for row in result.rows}
    assert rows["pepper"][1] >= 1, "the workload must force at least one merge"
    # The paper's protocols never lose an item.
    assert rows["pepper"][2] == 0
    # The naive baseline merged as well; whether it lost items is scenario
    # dependent, but it must never do *better* than the paper's protocols.
    assert rows["naive"][2] >= rows["pepper"][2]
