"""Figure 23: insertSucc completion time under peer failures (failure mode).

Paper result: the PEPPER insertSucc degrades gracefully with the failure rate,
from ~0.2 s with no failures to ~1.2 s at one failure every 10 seconds
(rate 10 per 100 s); it never becomes prohibitive.
"""

from benchmarks.conftest import run_figure


def test_figure_23_insertsucc_under_failures(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "figure_23",
        bench_dir=bench_json_dir,
        failure_rates=(0.0, 4.0, 8.0, 12.0),
        peers=max(10, figure_scale["peers"] - 4),
        items=figure_scale["items"],
        extra_peers=6,
    )
    series = {row[0]: row[1] for row in result.rows}
    samples = {row[0]: row[2] for row in result.rows}
    assert all(count > 0 for count in samples.values()), "every rate needs insertSucc samples"
    # Failures must not make insertSucc meaningfully *faster* (within noise --
    # only a handful of inserts land inside each failure window)...
    assert series[12.0] >= series[0.0] * 0.5
    # ...and never catastrophically slower (the paper's worst case stays ~6x
    # the fail-free cost; allow an order of magnitude plus a constant here).
    assert series[12.0] <= series[0.0] * 50 + 5.0
