"""Shared helpers for the benchmark suite.

Every benchmark reproduces one of the paper's evaluation figures (or one of the
correctness/availability ablations) by running the corresponding
:mod:`repro.harness.figures` function once inside ``pytest-benchmark``'s timer
and printing the same series the paper plots.  The simulated deployments are
slightly smaller than the paper's 30-peer testbed so the whole suite finishes
in a few minutes; pass ``--paper-scale`` to run at the paper's size.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the figure reproductions at the paper's deployment size (slower)",
    )


@pytest.fixture(scope="session")
def figure_scale(request):
    """Deployment sizes used by the figure benchmarks."""
    if request.config.getoption("--paper-scale"):
        return {"peers": 30, "items": 180, "queries_per_target": 5}
    return {"peers": 14, "items": 90, "queries_per_target": 3}


def run_figure(benchmark, figure_function, **kwargs):
    """Execute a figure function exactly once under the benchmark timer."""
    result = benchmark.pedantic(lambda: figure_function(**kwargs), rounds=1, iterations=1)
    print()
    print(result.as_table())
    if result.notes:
        print(f"note: {result.notes}")
    return result
