"""Shared helpers for the benchmark suite.

Every benchmark reproduces one of the paper's evaluation figures (or one of the
correctness/availability ablations).  Figures are resolved *by name* through
the harness registry (``repro.harness.figures.ALL_FIGURES`` -- the same lookup
``repro-run figure_19`` uses), executed once inside ``pytest-benchmark``'s
timer, printed as the series the paper plots, and emitted as
``BENCH_<name>.json`` so the perf trajectory is tracked run over run.  The
simulated deployments are slightly smaller than the paper's 30-peer testbed so
the whole suite finishes in a few minutes; pass ``--paper-scale`` to run at
the paper's size.
"""

from __future__ import annotations

import time

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the figure reproductions at the paper's deployment size (slower)",
    )
    parser.addoption(
        "--bench-json-dir",
        default=None,
        help="directory for BENCH_<figure>.json files (default: repo root)",
    )


@pytest.fixture(scope="session")
def figure_scale(request):
    """Deployment sizes used by the figure benchmarks."""
    if request.config.getoption("--paper-scale"):
        return {"peers": 30, "items": 180, "queries_per_target": 5}
    return {"peers": 14, "items": 90, "queries_per_target": 3}


@pytest.fixture(scope="session")
def bench_json_dir(request):
    return request.config.getoption("--bench-json-dir") or "."


def run_figure(benchmark, figure_name, bench_dir=".", **kwargs):
    """Run the named registry figure once under the benchmark timer."""
    from repro.harness.figures import ALL_FIGURES
    from repro.harness.runner import write_bench

    figure_function = ALL_FIGURES[figure_name]
    started = time.perf_counter()
    result = benchmark.pedantic(lambda: figure_function(**kwargs), rounds=1, iterations=1)
    wall = time.perf_counter() - started
    print()
    print(result.as_table())
    if result.notes:
        print(f"note: {result.notes}")
    write_bench(
        figure_name,
        {
            "summary": {"wall_clock_s": round(wall, 3), "parameters": _plain(kwargs)},
            "results": [result.as_dict()],
        },
        out_dir=bench_dir,
    )
    return result


def _plain(kwargs):
    return {key: list(value) if isinstance(value, tuple) else value for key, value in kwargs.items()}
