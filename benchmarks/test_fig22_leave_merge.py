"""Figure 22: cost of the availability-preserving leave and of the Data Store merge.

Paper result (log-scale figure): the leave and the merge (which includes the
replicate-to-additional-hop step) cost on the order of 100 ms and vary little
with the successor-list length, while the naive leave costs about 1 ms because
it simply walks away.
"""

from benchmarks.conftest import run_figure


def test_figure_22_leave_and_merge_overhead(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "figure_22",
        bench_dir=bench_json_dir,
        succ_lengths=(2, 4, 6, 8),
        peers=max(10, figure_scale["peers"] - 4),
        items=figure_scale["items"],
    )
    for length, merge_time, safe_leave, naive_leave in result.rows:
        # The availability-preserving protocols are orders of magnitude more
        # expensive than the naive leave, which is (near) instantaneous.
        assert naive_leave < 0.01, (length, naive_leave)
        assert safe_leave > naive_leave, (length, safe_leave, naive_leave)
        assert merge_time >= safe_leave, (length, merge_time, safe_leave)
