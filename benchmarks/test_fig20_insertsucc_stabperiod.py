"""Figure 20: insertSucc completion time vs. ring stabilization period.

Paper result: the naive insertSucc does not depend on the stabilization
period; the PEPPER insertSucc grows only mildly with it because the proactive
predecessor nudges decouple the protocol from the periodic rounds.
"""

from benchmarks.conftest import run_figure


def test_figure_20_insertsucc_vs_stabilization_period(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "figure_20",
        bench_dir=bench_json_dir,
        stabilization_periods=(2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
        peers=figure_scale["peers"],
        items=figure_scale["items"],
    )
    naive = {row[0]: row[1] for row in result.rows}
    pepper = {row[0]: row[2] for row in result.rows}
    assert all(pepper[period] >= naive[period] for period in naive)
    # Thanks to proactive nudging, quadrupling the stabilization period must
    # not blow the PEPPER insertSucc up proportionally (stays within ~4x of the
    # fastest setting rather than growing by the period ratio).
    assert pepper[8.0] <= max(pepper[2.0] * 4, pepper[2.0] + 1.0)
