"""Figure 21: range-scan elapsed time vs. ring hops, scanRange vs. naive scan.

Paper result: the scanRange primitive adds essentially no overhead over the
application-level scan -- the two curves lie on top of each other -- and the
elapsed time grows only slightly with the hop count on a LAN.
"""

from benchmarks.conftest import run_figure


def test_figure_21_scanrange_vs_naive_scan(benchmark, figure_scale, bench_json_dir):
    result = run_figure(
        benchmark,
        "figure_21",
        bench_dir=bench_json_dir,
        hop_targets=(1, 2, 4, 6, 8, 10),
        peers=figure_scale["peers"],
        items=figure_scale["items"],
        queries_per_target=figure_scale["queries_per_target"],
    )
    assert result.rows, "the benchmark should produce at least one hop bucket"
    for hops, scan_time, naive_time in result.rows:
        # "practically no overhead to using scanRange" -- allow generous slack
        # for the per-bucket averaging noise of a single run.
        assert scan_time <= naive_time * 3 + 0.02, (hops, scan_time, naive_time)
    # Longer scans should not be cheaper than the shortest ones.
    first_hops, first_scan, _ = result.rows[0]
    last_hops, last_scan, _ = result.rows[-1]
    if last_hops > first_hops:
        assert last_scan >= first_scan * 0.5
