"""Range queries: the ``scanRange`` primitive and the naive application-level scan.

``scanRange`` (Section 4.3.2, Algorithms 3-5) walks the ring peer by peer while
*lock-coupling* on the peers' Data Store ranges: a peer's range cannot change
while its portion of the scan is in progress, and the lock is released only
once the next peer along the ring has locked its own range.  Registered
handlers (here: the range-query handler of Algorithms 6-7, which ships the
matching items back to the initiating peer) therefore observe a consistent
sweep of the queried interval, which is what Theorems 2-3 formalise.

One presentational difference from the paper's pseudocode: each hop forwards a
*watermark* -- the upper end of the interval already covered -- and computes
its own sub-range starting from it.  In the paper the sub-range is recomputed
from the original bounds at every peer; the watermark form is equivalent when
ranges are stable and strictly stronger during splits/merges (it guarantees
Definition 6's disjointness even while two peers transiently claim overlapping
ranges), so all stated theorems continue to hold.

The *naive* baseline reproduces what an application scanning the ring by itself
would do (Section 6.2): fetch a peer's local items with one message, fetch its
successor with another, and move on -- with no locks, so the Section 4.2
anomalies (missed items during splits, merges, redistributions and ring
inconsistency) can and do occur.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

from repro.datastore.items import Item, items_from_wire, items_to_wire
from repro.datastore.ranges import CircularRange, segments_cover_interval
from repro.index.config import IndexConfig
from repro.ring.entries import JOINED
from repro.transport import RpcError

_DEPRECATION = (
    "RangeQueryEngine.{name}() is deprecated; issue queries through "
    "repro.serve.QueryClient (e.g. index.query_client(routing=...)) instead"
)


class RangeQueryEngine:
    """Per-peer component executing range queries (initiator and scan sides)."""

    def __init__(
        self,
        node,
        ring,
        store,
        router,
        config: IndexConfig,
        metrics=None,
        history=None,
    ):
        self.node = node
        self.ring = ring
        self.store = store
        self.router = router
        self.config = config
        self.metrics = metrics
        self.history = history

        self._pending: Dict[str, Dict] = {}
        self._next_query = 0

        node.register_handler("scan_begin", self._handle_scan_begin)
        node.register_handler("scan_continue", self._handle_scan_continue)
        node.register_handler("query_deliver", self._handle_query_deliver)
        node.register_handler("ring_successor_info", self._handle_successor_info)

    # ------------------------------------------------------------------ helpers
    @property
    def address(self) -> str:
        return self.node.address

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    def _record_metric(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.record(name, value)

    def _new_query_id(self) -> str:
        self._next_query += 1
        return f"{self.address}#{self._next_query}"

    # ------------------------------------------------------------------ public API
    def query(self, lb: float, ub: float, strategy: Optional[str] = None, timeout: float = 60.0):
        """Execute the range query ``(lb, ub]`` against the primary owners.

        ``strategy`` selects the mechanism: ``"scan"`` (the scanRange
        primitive), ``"naive"`` (the Section 6.2 baseline), or ``None`` to
        follow the deployment's ``use_scan_range`` flag.  Generator returning
        a result dict with the matching items, the query window, the number
        of ring hops and whether coverage completed.

        This is the serve layer's primary-routing backend; clients go through
        :class:`repro.serve.QueryClient` rather than calling it directly.
        """
        if strategy is None:
            strategy = "scan" if self.config.use_scan_range else "naive"
        if strategy == "scan":
            result = yield from self._query_scan(lb, ub, timeout=timeout)
        elif strategy == "naive":
            result = yield from self._query_naive(lb, ub, timeout=timeout)
        else:
            raise ValueError(f"unknown query strategy {strategy!r}")
        return result

    # ------------------------------------------------------------------ deprecated API
    # The three historical entry points survive as shims over :meth:`query`
    # so external callers keep working for one release; every in-tree caller
    # has been migrated to ``QueryClient``.
    def range_query(self, lb: float, ub: float, timeout: float = 60.0):
        """Deprecated: use :class:`repro.serve.QueryClient` instead."""
        warnings.warn(
            _DEPRECATION.format(name="range_query"), DeprecationWarning, stacklevel=2
        )
        result = yield from self.query(lb, ub, timeout=timeout)
        return result

    def range_query_scan(self, lb: float, ub: float, timeout: float = 60.0):
        """Deprecated: use :class:`repro.serve.QueryClient` instead."""
        warnings.warn(
            _DEPRECATION.format(name="range_query_scan"), DeprecationWarning, stacklevel=2
        )
        result = yield from self.query(lb, ub, strategy="scan", timeout=timeout)
        return result

    def range_query_naive(self, lb: float, ub: float, timeout: float = 60.0):
        """Deprecated: use :class:`repro.serve.QueryClient` instead."""
        warnings.warn(
            _DEPRECATION.format(name="range_query_naive"), DeprecationWarning, stacklevel=2
        )
        result = yield from self.query(lb, ub, strategy="naive", timeout=timeout)
        return result

    # ------------------------------------------------------------------ scanRange path
    def _query_scan(self, lb: float, ub: float, timeout: float = 60.0):
        """Range query via the scanRange primitive (Algorithms 3-7)."""
        query_id = self._new_query_id()
        started = self.node.sim.now
        self._record_op("query_start", query_id=query_id, lb=lb, ub=ub, strategy="scan")
        state = {
            "lb": lb,
            "ub": ub,
            "items": {},
            "segments": [],
            "hops": 0,
            "event": self.node.sim.event(),
        }
        self._pending[query_id] = state

        accepted = False
        scan_started = started
        for _attempt in range(10):
            start_address = yield from self.router.find_responsible(lb)
            if start_address is None:
                yield self.node.sim.timeout(0.25)
                continue
            scan_started = self.node.sim.now
            try:
                response = yield self.node.call(
                    start_address,
                    "scan_begin",
                    {
                        "query_id": query_id,
                        "lb": lb,
                        "ub": ub,
                        "reply_to": self.address,
                    },
                )
            except RpcError:
                continue
            if response.get("accepted"):
                accepted = True
                break
            yield self.node.sim.timeout(0.25)

        if accepted:
            wait = self.node.sim.timeout(timeout)
            yield self.node.sim.any_of([state["event"], wait])

        finished = self.node.sim.now
        complete = state["event"].triggered
        self._pending.pop(query_id, None)
        self._record_op(
            "query_end", query_id=query_id, complete=complete, hops=state["hops"]
        )
        scan_elapsed = finished - scan_started
        self._record_metric("range_query", finished - started)
        self._record_metric("scan_elapsed", scan_elapsed)
        items = sorted(state["items"].values(), key=lambda item: item.skv)
        return {
            "query_id": query_id,
            "lb": lb,
            "ub": ub,
            "items": items,
            "keys": [item.skv for item in items],
            "start_time": started,
            "end_time": finished,
            "scan_elapsed": scan_elapsed,
            "hops": state["hops"],
            "complete": complete,
            "strategy": "scan",
        }

    def _handle_scan_begin(self, payload, request):
        """RPC (Algorithm 3): start the scan at the first peer of the range."""
        yield self.store.range_lock.acquire_read()
        lb = payload["lb"]
        if (
            not self.store.active
            or self.store.range is None
            or not self.store.range.contains(lb)
        ):
            self.store.range_lock.release_read()
            return {"accepted": False}
        self._record_op(
            "scan_init", scan_id=payload["query_id"], lb=lb, ub=payload["ub"]
        )
        self.node.spawn(
            self._scan_step(payload, watermark=lb, hops=1), name="scanRange"
        )
        return {"accepted": True}

    def _handle_scan_continue(self, payload, request):
        """RPC (Algorithm 5): lock our range, then continue the scan asynchronously.

        Returning only after the read lock is acquired is the lock hand-off that
        lets the previous peer release its own lock (maximum concurrency while
        never exposing a torn range to the scan).
        """
        yield self.store.range_lock.acquire_read()
        self.node.spawn(
            self._scan_step(
                payload, watermark=payload["watermark"], hops=payload["hops"]
            ),
            name="scanRange",
        )
        return {"ok": True}

    def _scan_step(self, payload, watermark: float, hops: int):
        """Algorithm 4 at one peer.  The caller holds our range read lock."""
        lb, ub = payload["lb"], payload["ub"]
        query_id = payload["query_id"]
        reply_to = payload["reply_to"]
        try:
            segments = []
            if self.store.active and self.store.range is not None:
                segments = self.store.range.intersect_interval(watermark, ub)
            new_watermark = watermark
            covered: List[Tuple[float, float]] = []
            collected: List[Item] = []
            for lo, hi in sorted(segments):
                if lo > new_watermark + 1e-12:
                    # A gap before this segment belongs to peers further along
                    # the ring; they will cover it when the scan reaches them.
                    continue
                collected.extend(self.store.local_items_in(lo, hi))
                # Batch contiguous sub-ranges into one covered window per hop
                # (one delivery segment instead of one per store fragment).
                if covered and lo <= covered[-1][1] + 1e-12:
                    covered[-1] = (covered[-1][0], max(covered[-1][1], hi))
                else:
                    covered.append((lo, hi))
                self._record_op(
                    "scan_visit",
                    scan_id=query_id,
                    sub_low=lo,
                    sub_high=hi,
                    range=self.store.range.as_tuple(),
                )
                new_watermark = max(new_watermark, hi)

            if covered:
                try:
                    yield self.node.call(
                        reply_to,
                        "query_deliver",
                        {
                            "query_id": query_id,
                            "items": items_to_wire(collected),
                            "segments": covered,
                            "hops": hops,
                        },
                    )
                except RpcError:
                    pass

            if new_watermark >= ub - 1e-12:
                self._record_op("scan_done", scan_id=query_id, lb=lb, ub=ub)
                return

            # Forward to the successor (Algorithm 4 lines 4-8): wait until it
            # has locked its own range before we release ours.
            forwarded = False
            for _retry in range(6):
                successor = self._forward_target(new_watermark)
                if successor is None:
                    break
                try:
                    yield self.node.call(
                        successor,
                        "scan_continue",
                        {
                            "query_id": query_id,
                            "lb": lb,
                            "ub": ub,
                            "watermark": new_watermark,
                            "reply_to": reply_to,
                            "hops": hops + 1,
                        },
                        timeout=2.0,
                    )
                    forwarded = True
                    break
                except RpcError:
                    # Successor failed mid-scan: wait for the ring to repair
                    # itself and retry with the new successor.
                    yield self.node.sim.timeout(
                        self.config.failure_detection_timeout
                    )
            if not forwarded:
                self._record_op("scan_stalled", scan_id=query_id, watermark=new_watermark)
        finally:
            self.store.range_lock.release_read()

    def _forward_target(self, watermark: float) -> Optional[str]:
        """First successor whose range can still contribute past ``watermark``.

        Window pruning on the forward path: walking the successor list in
        ring order, each JOINED entry's arc runs from the previous entry's
        value up to its own.  A non-wrapping arc ending at or below the
        watermark covers only already-scanned keys, so the scan skips the
        entry instead of paying a hop (or, for a stale entry of a
        merged-away peer, a 2 s call timeout) to learn nothing.  Pruning is
        conservative: the walk stops at the first non-JOINED entry, where
        arc attribution is uncertain, and falls back to the plain first live
        successor.
        """
        pruned = 0
        previous = self.ring.value
        for entry in self.ring.successor_entries():
            if entry.address == self.address:
                continue
            if entry.state != JOINED:
                break
            if previous < entry.value <= watermark + 1e-12:
                pruned += 1
                previous = entry.value
                continue
            if pruned:
                self._record_metric("scan_window_pruned", pruned)
            return entry.address
        if pruned:
            self._record_metric("scan_window_pruned", pruned)
        return self.ring.first_live_successor()

    def _handle_query_deliver(self, payload, request):
        """RPC (Algorithm 7's delivery): collect one peer's contribution."""
        state = self._pending.get(payload["query_id"])
        if state is None:
            return {"ok": False}
        for item in items_from_wire(payload["items"]):
            state["items"][item.skv] = item
        state["segments"].extend(tuple(seg) for seg in payload["segments"])
        state["hops"] = max(state["hops"], payload.get("hops", 0))
        if segments_cover_interval(state["segments"], state["lb"], state["ub"]):
            if not state["event"].triggered:
                state["event"].succeed(True)
        return {"ok": True}

    # ------------------------------------------------------------------ naive path
    def _handle_successor_info(self, payload, request):
        """RPC: the naive scan's second message ("who is your successor?")."""
        return {
            "successor": self.ring.first_live_successor(),
            "value": self.ring.value,
            "range": self.store.range.as_tuple() if self.store.range is not None else None,
        }

    def _query_naive(self, lb: float, ub: float, timeout: float = 60.0):
        """The naive application-level scan (Section 6.2 baseline).

        Two unsynchronised messages per peer (items, then successor) and no
        locks, so ranges can change between the two -- reproducing the missed
        results of Sections 4.2.1 and 4.2.2.
        """
        query_id = self._new_query_id()
        started = self.node.sim.now
        self._record_op("query_start", query_id=query_id, lb=lb, ub=ub, strategy="naive")

        current: Optional[str] = None
        for _attempt in range(10):
            current = yield from self.router.find_responsible(lb)
            if current is not None:
                break
            yield self.node.sim.timeout(0.25)

        scan_started = self.node.sim.now
        collected: Dict[float, Item] = {}
        hops = 0
        deadline = started + timeout
        while current is not None and hops < 256 and self.node.sim.now < deadline:
            hops += 1
            # Message 1: fetch the peer's local items in the query range.
            try:
                items_response = yield self.node.call(
                    current, "ds_get_local_items", {"lb": lb, "ub": ub}
                )
            except RpcError:
                break
            for item in items_from_wire(items_response["items"]):
                collected[item.skv] = item
            # Message 2: ask for the successor (the ring may have changed, and
            # the peer's range may change between the two messages -- this is
            # exactly the naive baseline's weakness).
            try:
                successor_response = yield self.node.call(
                    current, "ring_successor_info", {}
                )
            except RpcError:
                break
            peer_range = successor_response.get("range")
            if peer_range is not None:
                crange = CircularRange.from_tuple(tuple(peer_range))
                if crange.full or crange.contains(ub):
                    break
            next_peer = successor_response.get("successor")
            if next_peer is None or next_peer == current:
                break
            current = next_peer

        finished = self.node.sim.now
        self._record_op("query_end", query_id=query_id, complete=True, hops=hops)
        scan_elapsed = finished - scan_started
        self._record_metric("range_query", finished - started)
        self._record_metric("scan_elapsed", scan_elapsed)
        items = sorted(collected.values(), key=lambda item: item.skv)
        return {
            "query_id": query_id,
            "lb": lb,
            "ub": ub,
            "items": items,
            "keys": [item.skv for item in items],
            "start_time": started,
            "end_time": finished,
            "scan_elapsed": scan_elapsed,
            "hops": hops,
            "complete": True,
            "strategy": "naive",
        }
