"""Checkers for the paper's correctness and availability definitions.

These functions evaluate, over a recorded :class:`~repro.core.histories.History`
or over a live cluster snapshot, the formal properties the paper proves about
its protocols:

* **Consistent successor pointers** (Definition 5, Theorem 1) --
  :func:`check_consistent_successor_pointers`.
* **scanRange correctness** (Definition 6, Theorem 2) --
  :func:`check_scan_range_correctness`.
* **Correct query results** (Definition 4, Theorem 3) --
  :func:`check_query_result` using per-item presence timelines.
* **Item availability** (Definition 7) -- :func:`check_item_availability`.
* **System availability** (ring connectivity, Section 5.1) --
  :func:`check_ring_connectivity`.

The ablation benchmarks run both the PEPPER protocols and the naive baselines
under identical workloads and count how often each checker reports violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.histories import History, Operation
from repro.datastore.ranges import segments_cover_interval, segments_overlap
from repro.ring.entries import JOINED


@dataclass
class CheckResult:
    """Outcome of a correctness check: a verdict plus human-readable violations."""

    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    @staticmethod
    def success() -> "CheckResult":
        return CheckResult(ok=True)

    @staticmethod
    def failure(violations: Iterable[str]) -> "CheckResult":
        messages = list(violations)
        return CheckResult(ok=not messages, violations=messages)

    def merge(self, other: "CheckResult") -> "CheckResult":
        """Combine two results (violations accumulate)."""
        return CheckResult(
            ok=self.ok and other.ok, violations=self.violations + other.violations
        )


# --------------------------------------------------------------------------- ring
def check_consistent_successor_pointers(peers: Sequence) -> CheckResult:
    """Definition 5: no JOINED peer has a "missing" pointer to another JOINED peer.

    ``peers`` is any sequence of objects exposing ``alive``, ``address`` and a
    ``ring`` attribute with ``state``, ``value`` and ``succ_list``.  For every
    live JOINED peer ``p`` we trim its successor list to live JOINED peers and
    require that consecutive trimmed entries are consecutive on the global
    ring, and that the first trimmed entry is ``p``'s true successor.
    """
    members = [
        peer
        for peer in peers
        if peer.alive and getattr(peer.ring, "state", None) == JOINED
    ]
    if len(members) <= 1:
        return CheckResult.success()

    by_address = {peer.address: peer for peer in members}
    ordering = sorted(members, key=lambda peer: (peer.ring.value, peer.address))
    successor_of: Dict[str, str] = {}
    for index, peer in enumerate(ordering):
        successor_of[peer.address] = ordering[(index + 1) % len(ordering)].address

    violations: List[str] = []
    for peer in members:
        trimmed = [
            entry.address
            for entry in peer.ring.succ_list
            if entry.address in by_address and entry.address != peer.address
        ]
        # Remove duplicates while preserving order.
        seen = set()
        trimmed = [addr for addr in trimmed if not (addr in seen or seen.add(addr))]
        if not trimmed:
            violations.append(f"{peer.address}: empty trimmed successor list")
            continue
        if successor_of[peer.address] != trimmed[0]:
            violations.append(
                f"{peer.address}: first trimmed pointer {trimmed[0]} is not its "
                f"successor {successor_of[peer.address]}"
            )
        for first, second in zip(trimmed, trimmed[1:]):
            if successor_of[first] != second:
                violations.append(
                    f"{peer.address}: pointer gap between {first} and {second} "
                    f"(missing {successor_of[first]})"
                )
    return CheckResult.failure(violations)


def check_ring_connectivity(peers: Sequence) -> CheckResult:
    """System availability: every live ring member can reach every other.

    Edges are the live entries of each peer's successor list.  A disconnected
    ring means some portion of the key space is unreachable by scans
    (Section 5.1's failure scenario for the naive leave).
    """
    members = [
        peer
        for peer in peers
        if peer.alive and getattr(peer.ring, "state", None) == JOINED
    ]
    if len(members) <= 1:
        return CheckResult.success()
    alive_addresses = {peer.address for peer in members}
    adjacency: Dict[str, List[str]] = {}
    for peer in members:
        adjacency[peer.address] = [
            entry.address
            for entry in peer.ring.succ_list
            if entry.address in alive_addresses and entry.address != peer.address
        ]

    violations: List[str] = []
    for start in alive_addresses:
        reached = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency.get(current, ()):
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        missing = alive_addresses - reached
        if missing:
            violations.append(
                f"{start} cannot reach {len(missing)} peer(s): {sorted(missing)[:5]}"
            )
    return CheckResult.failure(violations)


# --------------------------------------------------------------------------- item timelines
class ItemTimeline:
    """Per-item presence intervals derived from Data Store history operations.

    An item is *live* (Definition 3) at time ``t`` if some live peer holds it
    in its Data Store at ``t``.  The Data Store records ``item_stored`` /
    ``item_removed`` operations (and peer failures record ``peer_failed``), from
    which we reconstruct, for every search key value, the set of half-open time
    intervals during which it was live.
    """

    def __init__(self, history: History):
        self.intervals: Dict[float, List[Tuple[float, float]]] = {}
        self._build(history)

    def _build(self, history: History) -> None:
        open_intervals: Dict[Tuple[float, str], float] = {}
        failed_peers: Dict[str, float] = {}
        horizon = history.operations[-1].time if len(history) else 0.0

        for op in history:
            if op.kind == "item_stored":
                key = (op.get("skv"), op.peer)
                open_intervals.setdefault(key, op.time)
            elif op.kind == "item_removed":
                key = (op.get("skv"), op.peer)
                start = open_intervals.pop(key, None)
                if start is not None:
                    self._close(op.get("skv"), start, op.time)
            elif op.kind == "peer_failed":
                failed_peers[op.peer] = op.time
                for (skv, peer), start in list(open_intervals.items()):
                    if peer == op.peer:
                        open_intervals.pop((skv, peer))
                        self._close(skv, start, op.time)

        for (skv, _peer), start in open_intervals.items():
            self._close(skv, start, horizon + 1.0)
        self.horizon = horizon

    def _close(self, skv: float, start: float, end: float) -> None:
        if skv is None or end <= start:
            return
        self.intervals.setdefault(skv, []).append((start, end))

    def live_at(self, skv: float, time: float) -> bool:
        """Whether the item was live at instant ``time``."""
        return any(start <= time < end for start, end in self.intervals.get(skv, ()))

    def ever_live_between(self, skv: float, start: float, end: float) -> bool:
        """Whether the item was live at some instant in ``[start, end]``."""
        return any(s <= end and e > start for s, e in self.intervals.get(skv, ()))

    def live_throughout(self, skv: float, start: float, end: float) -> bool:
        """Whether the item was live at *every* instant in ``[start, end]``.

        The item may move between peers during the window; what matters is that
        the union of its presence intervals covers the window.
        """
        spans = sorted(self.intervals.get(skv, ()))
        position = start
        for s, e in spans:
            if s > position:
                return False
            position = max(position, e)
            if position >= end:
                return True
        return position >= end

    def live_keys_at(self, time: float) -> List[float]:
        """All search key values live at instant ``time``."""
        return [skv for skv in self.intervals if self.live_at(skv, time)]


# --------------------------------------------------------------------------- query correctness
@dataclass
class QueryRecord:
    """What the harness knows about one executed range query."""

    lb: float
    ub: float
    start_time: float
    end_time: float
    result_keys: List[float]


def check_query_result(
    timeline: ItemTimeline, query: QueryRecord, tolerance: float = 1e-9
) -> CheckResult:
    """Definition 4: the result contains all and only the relevant live items.

    Condition 1: every returned item satisfies the predicate and was live at
    some point during the query.  Condition 2: every item that satisfies the
    predicate and was live *throughout* the query appears in the result.
    """
    violations: List[str] = []
    returned = set(query.result_keys)

    for skv in returned:
        if not (query.lb < skv <= query.ub):
            violations.append(f"returned key {skv} outside query ({query.lb}, {query.ub}]")
        elif not timeline.ever_live_between(skv, query.start_time, query.end_time):
            violations.append(f"returned key {skv} was never live during the query")

    for skv, _spans in timeline.intervals.items():
        if not (query.lb < skv <= query.ub):
            continue
        if skv in returned:
            continue
        if timeline.live_throughout(
            skv, query.start_time + tolerance, query.end_time - tolerance
        ):
            violations.append(
                f"key {skv} satisfied the predicate and was live throughout "
                f"[{query.start_time:.3f}, {query.end_time:.3f}] but is missing"
            )
    return CheckResult.failure(violations)


# --------------------------------------------------------------------------- scanRange correctness
def check_scan_range_correctness(history: History) -> CheckResult:
    """Definition 6 over recorded ``scan_init`` / ``scan_visit`` / ``scan_done`` ops.

    For every completed scanRange invocation ``i`` we check that (1) it was
    initiated before it completed, (2) each handler invocation's sub-range was
    a subset of the visited peer's range at that time, (3) sub-ranges of
    distinct handler invocations do not overlap, and (4) the union of the
    sub-ranges equals the scanned interval.
    """
    inits = {op.get("scan_id"): op for op in history.of_kind("scan_init")}
    dones = {op.get("scan_id"): op for op in history.of_kind("scan_done")}
    visits: Dict[int, List[Operation]] = {}
    for op in history.of_kind("scan_visit"):
        visits.setdefault(op.get("scan_id"), []).append(op)

    violations: List[str] = []
    for scan_id, done in dones.items():
        init = inits.get(scan_id)
        if init is None:
            violations.append(f"scan {scan_id}: completed without an initiation")
            continue
        if not (init.time <= done.time):
            violations.append(f"scan {scan_id}: initiation after completion")
        lb, ub = init.get("lb"), init.get("ub")
        segments: List[Tuple[float, float]] = []
        for visit in visits.get(scan_id, []):
            if not (init.time <= visit.time <= done.time):
                violations.append(
                    f"scan {scan_id}: handler at {visit.peer} ran outside the scan window"
                )
            sub = (visit.get("sub_low"), visit.get("sub_high"))
            peer_low, peer_high, peer_full = visit.get("range")
            if not peer_full:
                inside = _segment_in_peer_range(sub, peer_low, peer_high)
                if not inside:
                    violations.append(
                        f"scan {scan_id}: sub-range {sub} not within {visit.peer}'s "
                        f"range ({peer_low}, {peer_high}]"
                    )
            for previous in segments:
                if segments_overlap(previous, sub):
                    violations.append(
                        f"scan {scan_id}: overlapping sub-ranges {previous} and {sub}"
                    )
            segments.append(sub)
        if not segments_cover_interval(segments, lb, ub):
            violations.append(
                f"scan {scan_id}: sub-ranges {segments} do not cover ({lb}, {ub}]"
            )
    return CheckResult.failure(violations)


def _segment_in_peer_range(
    segment: Tuple[float, float], low: float, high: float
) -> bool:
    """Whether the ``(lo, hi]`` segment lies inside the circular peer range ``(low, high]``."""
    lo, hi = segment
    if low < high:
        return low <= lo and hi <= high
    # Wrapping peer range: the segment must fit entirely in one of the arms.
    return lo >= low or hi <= high


# --------------------------------------------------------------------------- item availability
def check_item_availability(history: History) -> CheckResult:
    """Definition 7: every item inserted and never deleted is live at the end.

    Evaluated over the recorded history after the system has been given time to
    quiesce (failures detected, replicas revived).
    """
    inserted: Dict[float, Operation] = {}
    deleted: Dict[float, Operation] = {}
    for op in history.of_kind("index_insert_item"):
        inserted[op.get("skv")] = op
    for op in history.of_kind("index_delete_item"):
        deleted[op.get("skv")] = op

    timeline = ItemTimeline(history)
    end_time = timeline.horizon
    violations = []
    for skv in inserted:
        if skv in deleted:
            continue
        if not timeline.live_at(skv, end_time):
            violations.append(f"item {skv} was inserted, never deleted, but is not live")
    return CheckResult.failure(violations)


# --------------------------------------------------------------------------- reachability
@dataclass
class ReachabilityAudit:
    """Scan-vs-store audit: which stored copies a full scanRange would return.

    A copy is *reachable* when its search key value lies inside the holding
    peer's current range -- exactly the predicate ``scan_range`` applies when
    it visits the peer.  Copies outside the range (typically strays below the
    effective ring boundary after a half-completed split) are counted as
    *stranded*: ``total_stored_items()`` sees them, scans never do.
    """

    items_stored: int
    items_reachable: int
    stranded: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.items_reachable == self.items_stored

    @property
    def items_stranded(self) -> int:
        return self.items_stored - self.items_reachable


def audit_reachability(peers: Sequence) -> ReachabilityAudit:
    """Audit every live peer's Data Store for stranded (scan-invisible) copies.

    ``peers`` is any sequence of objects exposing ``alive``, ``address`` and a
    ``store`` with ``active``, ``range`` and ``items`` -- in practice the ring
    members of a :class:`~repro.index.pring.PRingIndex`.
    """
    stored = 0
    reachable = 0
    stranded: List[Tuple[str, float]] = []
    for peer in peers:
        if not peer.alive:
            continue
        store = peer.store
        if not store.active:
            continue
        for item in store.items.all_items():
            stored += 1
            if store.range is None or store.range.contains(item.skv):
                reachable += 1
            else:
                stranded.append((peer.address, item.skv))
    return ReachabilityAudit(stored, reachable, stranded)


def count_lost_items(history: History, peers: Sequence) -> List[float]:
    """Keys of items inserted, never deleted, and not present on any live peer.

    A stricter, snapshot-based version of :func:`check_item_availability` used
    by the availability ablation: it inspects the actual Data Store and replica
    contents of the live peers rather than the recorded timeline.
    """
    inserted = {op.get("skv") for op in history.of_kind("index_insert_item")}
    deleted = {op.get("skv") for op in history.of_kind("index_delete_item")}
    expected = inserted - deleted

    present: set = set()
    for peer in peers:
        if not peer.alive:
            continue
        store = getattr(peer, "store", None)
        if store is not None:
            present.update(store.items.keys())
        replication = getattr(peer, "replication", None)
        if replication is not None:
            present.update(replication.replica_keys())
    return sorted(expected - present)
