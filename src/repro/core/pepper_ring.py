"""PEPPER ring protocols: consistent ``insertSucc`` and availability-preserving ``leave``.

This module implements the paper's two ring-level contributions on top of the
Chord-style substrate in :mod:`repro.ring.chord`:

* **Consistent insertSucc** (Section 4.3.1, Algorithms 1-2).  A newly inserted
  peer starts in the JOINING state.  The pointer to it propagates backwards
  through predecessors' successor lists, piggybacked on ring stabilization;
  only once every predecessor that could otherwise end up with a "missing"
  pointer knows about the new peer does it transition to JOINED.  The
  proactive-predecessor optimisation (nudging predecessors to stabilize
  immediately) makes the latency a small multiple of the network round-trip
  instead of the stabilization period.

* **Availability-preserving leave** (Section 5.1).  A peer that wants to leave
  (because of a Data Store merge) first enters the LEAVING state.  Predecessors
  that point to it lengthen their successor lists by one (they keep the LEAVING
  pointer *in addition to* the usual number of JOINED pointers), again
  piggybacked on stabilization.  Only when the information has reached every
  predecessor that points at the leaver does the leaver receive a leave-ack and
  actually depart, so the ring's tolerance to subsequent failures is not
  reduced.

Small-ring adaptation: in rings with fewer JOINED peers than the successor-list
length the propagation wraps around; the inserter detects its own pending
JOINING pointer coming back and self-acks, and a leaver whose list shows that
every remaining peer already knows acks early.  This preserves the guarantees
(the set of peers that must learn is exactly the set of ring members) while
avoiding unbounded waits.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ring.chord import ChordRing
from repro.ring.entries import (
    FREE,
    INSERTING,
    JOINED,
    JOINING,
    LEAVING,
    SuccessorEntry,
    entries_to_wire,
)
from repro.transport import RpcError


class PepperRing(ChordRing):
    """Chord ring augmented with the paper's consistency/availability protocols."""

    def __init__(self, node, value, config, metrics=None, history=None):
        super().__init__(node, value, config, metrics=metrics, history=history)
        node.register_handler("ring_join_ack", self._handle_join_ack)
        node.register_handler("ring_leave_ack", self._handle_leave_ack)
        node.register_handler("ring_joining_notice", self._handle_joining_notice)
        node.register_handler("ring_leaving_notice", self._handle_leaving_notice)
        # Pending insertSucc bookkeeping (at most one at a time, as in Alg. 1).
        self._pending_insert: Optional[Dict] = None
        # Event the leave protocol waits on.
        self._leave_ack_event = None
        # First-seen timestamps for JOINING/LEAVING rider entries, used to prune
        # stale riders left behind by aborted protocols or failed peers.
        self._rider_seen: Dict[str, float] = {}

    # ------------------------------------------------------------------ insertSucc
    def _insert_protocol(self, new_address: str, new_value: float):
        """PEPPER insertSucc (Algorithm 1) run at the predecessor of the new peer."""
        if not self.config.consistent_insert:
            # Configuration selects the naive baseline (Section 6.2).
            yield from super()._insert_protocol(new_address, new_value)
            return
        started = self.sim.now
        yield self.succ_lock.acquire_write()
        if self.state != JOINED or self._pending_insert is not None:
            self.succ_lock.release_write()
            return
        self._set_state(INSERTING)
        entry = SuccessorEntry(new_address, new_value, JOINING, stabilized=False)
        self.succ_list.insert(0, entry)
        ack_event = self.sim.event()
        self._pending_insert = {
            "address": new_address,
            "value": new_value,
            "event": ack_event,
        }
        other_members = [
            e
            for e in self.succ_list
            if e.state == JOINED and e.address not in (self.address, new_address)
        ]
        self.succ_lock.release_write()
        self._record_op("init_insert_succ_pepper", new_peer=new_address)

        if not other_members:
            # We are the only JOINED member: no other peer's pointers can become
            # inconsistent, so the new peer may transition immediately.
            if not ack_event.triggered:
                ack_event.succeed("alone")
        else:
            # Section 4.3.1's optimisation, "proactively contact the
            # predecessor": actively walk the predecessor chain handing out the
            # JOINING pointer instead of waiting for periodic stabilization.
            # The stabilization-piggybacked propagation below remains the
            # fallback if the walk hits a failed or stale predecessor.
            if self.config.proactive_nudge:
                self.node.spawn(
                    self._push_rider_backwards(
                        "ring_joining_notice",
                        new_address,
                        new_value,
                        self.config.successor_list_length - 1,
                        ack_event,
                    ),
                    name="push-joining",
                )
            self._nudge_predecessor()

        # Wait for a join-ack from the farthest predecessor that needs to know
        # (Algorithm 1 line 6), re-nudging periodically so that lost nudges or
        # failed predecessors only delay, never wedge, the protocol.
        attempts = 0
        while not ack_event.triggered:
            attempts += 1
            wait = self.sim.timeout(self.config.join_ack_timeout)
            yield self.sim.any_of([ack_event, wait])
            if ack_event.triggered:
                break
            # The set of peers that must learn about the insert is the set of
            # current ring members pointing at us; peers that merged away or
            # failed since the protocol started (their zombie entries are
            # pruned by stabilization) shrink it -- possibly to nobody, in
            # which case the new peer may transition immediately.  Without
            # this re-check an insert whose only witnesses left the ring
            # wedges the inserter in INSERTING for the full retry budget.
            # Both views must agree that nobody else needs to learn: the
            # successor list (no other JOINED member) *and* the predecessor
            # pointer (cleared by the predecessor check once its peer is
            # confirmed gone) -- an empty successor list alone can be a
            # transient artifact of pruning on RPC timeouts while live
            # predecessors still await the pointer.
            remaining = [
                e
                for e in self.succ_list
                if e.state == JOINED and e.address not in (self.address, new_address)
            ]
            alone = self.pred_address in (None, self.address, new_address)
            if not remaining and alone:
                if not ack_event.triggered:
                    ack_event.succeed("witnesses-left")
                break
            self._nudge_predecessor()
            self.stabilize_now()
            if attempts > 200:  # safety net: never wedge the simulation
                break

        # Transition the new peer to JOINED (Algorithm 1 lines 7-12).
        yield self.succ_lock.acquire_write()
        try:
            # The new peer's initial successor list is our own view *including*
            # pointers to peers that are themselves still JOINING (a concurrent
            # insert a few positions further along): the new peer is one of
            # their relevant predecessors and must know about them, otherwise
            # Theorem 1 would be violated the moment both transitions complete.
            successor_view = [
                e.copy()
                for e in self.succ_list
                if e.address != new_address
            ][: self.config.successor_list_length]
        finally:
            self.succ_lock.release_write()
        try:
            yield self.node.call(
                new_address,
                "ring_join",
                {
                    "succ_list": entries_to_wire(successor_view),
                    "pred_address": self.address,
                    "pred_value": self.value,
                },
            )
        except RpcError:
            # The new peer died before completing its insertion: roll back.
            yield self.succ_lock.acquire_write()
            self.succ_list = [e for e in self.succ_list if e.address != new_address]
            self._set_state(JOINED)
            self._pending_insert = None
            self.succ_lock.release_write()
            self._record_op("insert_succ_aborted", new_peer=new_address)
            return

        yield self.succ_lock.acquire_write()
        try:
            for e in self.succ_list:
                if e.address == new_address:
                    e.state = JOINED
                    e.stabilized = True
            self._set_state(JOINED)
            self._pending_insert = None
            self._trim()
        finally:
            self.succ_lock.release_write()

        duration = self.sim.now - started
        self._record("insert_succ", duration)
        self._record_op("insert_succ", new_peer=new_address, duration=duration)
        self._cache_record(new_address, new_value)
        self._fire_successor_changed(new_address)

    def _nudge_predecessor(self) -> None:
        """Proactively ask the predecessor to stabilize (Section 4.3.1 optimisation)."""
        if not self.config.proactive_nudge:
            return
        if self.pred_address and self.pred_address != self.address:
            # Fire-and-forget: the reply (if any) is ignored.
            self.node.call(self.pred_address, "ring_nudge", {})

    # ------------------------------------------------------------------ proactive propagation
    def _push_rider_backwards(self, method, address, value, hops_needed, event):
        """Walk the predecessor chain handing out a JOINING/LEAVING pointer.

        Each contacted predecessor records the pointer immediately (the same
        state the stabilization-piggybacked propagation would eventually give
        it) and replies with *its* predecessor, so the walk follows the real
        ring even when individual pointers are slightly stale.  Once every peer
        that could end up with an inconsistent pointer has been informed --
        ``hops_needed`` predecessors, or the walk wrapped around a small ring --
        the waiting protocol is acknowledged.  Any failure simply ends the walk
        and leaves the acknowledgement to the stabilization path.
        """
        current = self.pred_address
        visited = {self.address, address}
        informed = 0
        while current and current not in visited and informed < hops_needed:
            visited.add(current)
            try:
                response = yield self.node.call(
                    current,
                    method,
                    {"address": address, "value": value, "origin": self.address},
                )
            except RpcError:
                return
            if not response.get("ok"):
                return
            informed += 1
            current = response.get("pred")
        wrapped = current in visited and informed > 0
        if (informed >= hops_needed or wrapped) and event is not None:
            if not event.triggered:
                event.succeed("pushed")

    def _record_rider(self, address, value, state) -> None:
        """Insert or upgrade a pointer learned through a proactive notice."""
        for entry in self.succ_list:
            if entry.address == address:
                if self._STATE_RANK.get(state, 1) > self._STATE_RANK.get(entry.state, 1):
                    entry.state = state
                break
        else:
            self.succ_list.append(SuccessorEntry(address, value, state, stabilized=False))
        self._rider_seen.setdefault(address, self.sim.now)
        self.succ_list.sort(key=lambda e: self._clockwise_distance(e.value))
        self._trim()

    def _handle_joining_notice(self, payload, request):
        """RPC: a successor proactively tells us about a peer being inserted."""
        if not self.is_joined:
            return {"ok": False}
        self._record_rider(payload["address"], payload["value"], JOINING)
        return {"ok": True, "pred": self.pred_address}

    def _handle_leaving_notice(self, payload, request):
        """RPC: a successor proactively tells us it is about to leave the ring."""
        if not self.is_joined:
            return {"ok": False}
        self._record_rider(payload["address"], payload["value"], LEAVING)
        return {"ok": True, "pred": self.pred_address}

    def _handle_join_ack(self, payload, request):
        """RPC: a predecessor reports that the pending JOINING peer is known widely enough."""
        pending = self._pending_insert
        if pending is not None and pending["address"] == payload.get("joining"):
            if not pending["event"].triggered:
                pending["event"].succeed(payload.get("sender"))
        return {"ok": True}

    # ------------------------------------------------------------------ leave
    def leave(self):
        """Availability-preserving leave (Section 5.1).

        Enters the LEAVING state, waits until predecessors pointing at this
        peer have lengthened their successor lists (signalled by a leave-ack
        piggybacked on stabilization), then departs.  Returns the elapsed time.
        """
        started = self.sim.now
        if not self.config.safe_leave or self.state != JOINED:
            duration = yield from super().leave()
            return duration

        self._set_state(LEAVING)
        self._leave_ack_event = self.sim.event()
        self._record_op("ring_init_leave", safe=True)

        joined_others = [
            e for e in self.succ_list if e.state == JOINED and e.address != self.address
        ]
        if not joined_others or self.pred_address in (None, self.address):
            # Nobody else points at us; leaving cannot reduce availability.
            if not self._leave_ack_event.triggered:
                self._leave_ack_event.succeed("alone")
        else:
            # Actively walk the predecessor chain so every peer that points at
            # us lengthens its list now, instead of a stabilization round later.
            if self.config.proactive_nudge:
                self.node.spawn(
                    self._push_rider_backwards(
                        "ring_leaving_notice",
                        self.address,
                        self.value,
                        self.config.successor_list_length,
                        self._leave_ack_event,
                    ),
                    name="push-leaving",
                )
            self._nudge_predecessor()

        deadline = self.sim.now + self.config.leave_ack_timeout
        renudge_interval = min(1.0, self.config.join_ack_timeout)
        while not self._leave_ack_event.triggered and self.sim.now < deadline:
            wait = self.sim.timeout(renudge_interval)
            yield self.sim.any_of([self._leave_ack_event, wait])
            if not self._leave_ack_event.triggered:
                # Re-nudge aggressively: our predecessor pointer may have been
                # stale (common when several adjacent peers merge away in a
                # cascade) and the information must still propagate.
                self._nudge_predecessor()
                self.stabilize_now()

        self._set_state(FREE)
        duration = self.sim.now - started
        self._record("leave", duration)
        self._record_op(
            "ring_leave",
            safe=True,
            acked=self._leave_ack_event.triggered,
            duration=duration,
        )
        return duration

    def _handle_leave_ack(self, payload, request):
        """RPC: a far-enough predecessor confirms it lengthened its successor list."""
        event = self._leave_ack_event
        if event is not None and not event.triggered:
            event.succeed(payload.get("sender"))
        return {"ok": True}

    # ------------------------------------------------------------------ list maintenance
    def _trim(self) -> None:
        """Bound the successor list, mirroring the paper's list-length discipline.

        * JOINED entries and JOINING pointers learned from elsewhere count
          towards the configured length -- exactly as in Algorithm 2, where the
          propagating JOINING pointer occupies a regular slot.  This matters
          for Theorem 1: a peer must never hold a pointer *beyond* a JOINING
          peer it is not required to know about.
        * The inserter's own pending JOINING pointer is the one extra entry the
          paper's ``push_front`` creates (length d+1 at the inserter).
        * LEAVING pointers ride along without counting: that is the
          "lengthen the successor list by one" behaviour of Section 5.1.
        """
        limit = self.config.successor_list_length
        pending_address = (
            self._pending_insert["address"] if self._pending_insert is not None else None
        )
        result = []
        counted = 0
        seen = set()
        for e in self.succ_list:
            if e.address in seen:
                continue
            seen.add(e.address)
            if e.state == LEAVING or (e.state == JOINING and e.address == pending_address):
                result.append(e)
                continue
            if counted >= limit:
                continue
            counted += 1
            result.append(e)
        del result[2 * limit + 2 :]
        self.succ_list = result

    def _post_adopt(self) -> None:
        """JOINING/LEAVING bookkeeping after adopting a successor list (Algorithm 2)."""
        limit = self.config.successor_list_length
        entries = self.succ_list
        joined_count = sum(1 for e in entries if e.state == JOINED)
        now = self.sim.now

        # Self-ack for small rings: the pending JOINING pointer has travelled
        # all the way around the ring and comes back to us in the list reported
        # by our own successor -- every existing member has seen it.
        if self._pending_insert is not None:
            pending_address = self._pending_insert["address"]
            reported = getattr(self, "_last_received_addresses", set())
            if pending_address in reported:
                event = self._pending_insert["event"]
                if not event.triggered:
                    event.succeed("wrapped")

        keep = []
        for index, e in enumerate(entries):
            if e.state == JOINED:
                # Not (or no longer) a rider: forget any first-seen timestamp a
                # previous JOINING/LEAVING episode left behind, otherwise a
                # later LEAVING announcement by the same peer would be pruned
                # as "stale" the moment it is first seen.
                self._rider_seen.pop(e.address, None)
                keep.append(e)
                continue
            if e.state == JOINING:
                if self._pending_insert is not None and (
                    e.address == self._pending_insert["address"] and index == 0
                ):
                    keep.append(e)
                    continue
                newly_seen = e.address not in self._rider_seen
                first_seen = self._rider_seen.setdefault(e.address, now)
                # The ack must come from the farthest predecessor that needs
                # the pointer (distance L-1).  Rings smaller than that are
                # covered by the inserter's wrap-around self-ack above, so the
                # threshold is *not* relaxed by the local list length -- doing
                # so would let a peer with a transiently short list ack before
                # all relevant predecessors know (breaking Theorem 1).
                threshold = limit - 1
                if index >= limit:
                    # Far enough from the insertion point: this peer does not
                    # need the pointer (Algorithm 2 lines 10-11).
                    self._rider_seen.pop(e.address, None)
                    continue
                if index >= threshold and index > 0:
                    # Every predecessor that needs the pointer now has it:
                    # ack the inserter (the entry immediately before the
                    # JOINING pointer, Algorithm 2 lines 12-13).
                    inserter = keep[-1] if keep else None
                    if inserter is not None:
                        self.node.call(
                            inserter.address,
                            "ring_join_ack",
                            {"joining": e.address, "sender": self.address},
                        )
                elif self.config.proactive_nudge and newly_seen:
                    # Keep the cascade moving: ask our own predecessor to
                    # stabilize so the pointer continues to propagate.  Only on
                    # first sight -- nudging on every adoption would let stale
                    # riders generate an endless nudge cycle around the ring.
                    self._nudge_predecessor()
                if now - first_seen > 3 * self.config.stabilization_period:
                    self._rider_seen.pop(e.address, None)
                    continue
                keep.append(e)
            elif e.state == LEAVING:
                newly_seen = e.address not in self._rider_seen
                first_seen = self._rider_seen.setdefault(e.address, now)
                threshold = min(limit - 1, joined_count)
                if index > limit:
                    # Further away than any peer that points at the leaver.
                    self._rider_seen.pop(e.address, None)
                    continue
                if index >= threshold:
                    # Every predecessor that points at the leaver has now
                    # lengthened its list: tell the leaver it is safe to go
                    # (Section 5.1).
                    self.node.call(
                        e.address, "ring_leave_ack", {"sender": self.address}
                    )
                elif self.config.proactive_nudge and newly_seen:
                    self._nudge_predecessor()
                if now - first_seen > 3 * self.config.stabilization_period:
                    # The leaver is long gone; drop the stale rider.
                    self._rider_seen.pop(e.address, None)
                    continue
                keep.append(e)
            else:
                keep.append(e)
        self.succ_list = keep
