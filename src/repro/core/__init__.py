"""The paper's primary contribution: correctness and availability protocols.

* :class:`~repro.core.pepper_ring.PepperRing` -- consistent ``insertSucc``
  (Algorithms 1-2) and availability-preserving ``leave`` (Section 5.1).
* :mod:`repro.core.scan_range` -- the ``scanRange`` Data Store primitive
  (Algorithms 3-5) and the range-query handler built on it (Algorithms 6-7),
  plus the naive application-level scan baseline.
* :mod:`repro.core.histories` -- histories of operations (Definitions 1-2).
* :mod:`repro.core.correctness` -- checkers for the paper's correctness and
  availability definitions (Definitions 3-7).

Layer contract: peers with the protocol stack (sim + ring + datastore +
index.config); the checkers additionally inspect live peers handed to them.
Neighbors import :class:`PepperRing` (selected by ``IndexPeer`` per the
protocol flags), the query engine, and the checker functions from here; the
history recorder travels through constructor injection, never globals.
"""

from repro.core.histories import History, HistoryRecorder, Operation
from repro.core.pepper_ring import PepperRing
from repro.core.correctness import (
    CheckResult,
    check_consistent_successor_pointers,
    check_item_availability,
    check_query_result,
    check_ring_connectivity,
    check_scan_range_correctness,
)

__all__ = [
    "CheckResult",
    "History",
    "HistoryRecorder",
    "Operation",
    "PepperRing",
    "check_consistent_successor_pointers",
    "check_item_availability",
    "check_query_result",
    "check_ring_connectivity",
    "check_scan_range_correctness",
]
