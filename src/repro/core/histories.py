"""Histories of operations (Definitions 1-2 of the paper).

The paper reasons about correctness via *histories*: a set of operations with a
happened-before partial order.  In the simulator every interesting protocol
step records an :class:`Operation` into a global :class:`HistoryRecorder`; the
checkers in :mod:`repro.core.correctness` evaluate the paper's definitions over
the resulting :class:`History`.

Because the simulator is sequential, simulation time (plus a tie-breaking
sequence number) yields a total order that is a legal linear extension of the
real happened-before partial order; evaluating the definitions over it is
therefore sound for the "all/only live items" style conditions we check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Operation:
    """One recorded operation.

    ``kind`` is a short string (e.g. ``"item_stored"``, ``"insert_succ"``,
    ``"scan_visit"``); ``attrs`` carries kind-specific data.
    """

    op_id: int
    kind: str
    time: float
    peer: Optional[str]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``attrs.get``."""
        return self.attrs.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation(#{self.op_id} {self.kind} t={self.time:.4f} peer={self.peer})"


class History:
    """An ordered collection of operations supporting the paper's queries."""

    def __init__(self, operations: Iterable[Operation]):
        self.operations: List[Operation] = sorted(
            operations, key=lambda op: (op.time, op.op_id)
        )

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def of_kind(self, *kinds: str) -> List[Operation]:
        """All operations whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [op for op in self.operations if op.kind in wanted]

    def filter(self, predicate: Callable[[Operation], bool]) -> "History":
        """A new history containing the operations satisfying ``predicate``."""
        return History(op for op in self.operations if predicate(op))

    def happened_before(self, first: Operation, second: Operation) -> bool:
        """Whether ``first`` happened before ``second`` in this history."""
        return (first.time, first.op_id) < (second.time, second.op_id)

    def truncate(self, operation: Operation) -> "History":
        """The truncated history H_o: operations up to and including ``operation``."""
        key = (operation.time, operation.op_id)
        return History(op for op in self.operations if (op.time, op.op_id) <= key)

    def between(self, start_time: float, end_time: float) -> "History":
        """Operations with ``start_time <= time <= end_time``."""
        return History(
            op for op in self.operations if start_time <= op.time <= end_time
        )

    def last_of_kind(self, kind: str) -> Optional[Operation]:
        """The latest operation of ``kind``, if any."""
        for op in reversed(self.operations):
            if op.kind == kind:
                return op
        return None


class HistoryRecorder:
    """Collects operations as the simulation runs.

    Components receive the recorder (or ``None``) and call :meth:`record`;
    the experiment harness turns the recorder into a :class:`History` for the
    correctness checkers and into per-item timelines for query-correctness
    checks.
    """

    def __init__(self, sim=None):
        self.sim = sim
        self.operations: List[Operation] = []
        self._next_id = 0
        self.enabled = True

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def record(self, kind: str, peer: Optional[str] = None, **attrs) -> Optional[Operation]:
        """Record one operation at the current simulation time."""
        if not self.enabled:
            return None
        self._next_id += 1
        op = Operation(self._next_id, kind, self.now, peer, dict(attrs))
        self.operations.append(op)
        return op

    def history(self) -> History:
        """A :class:`History` snapshot of everything recorded so far."""
        return History(self.operations)

    def clear(self) -> None:
        """Drop all recorded operations (used between experiment phases)."""
        self.operations.clear()

    def count(self, kind: str) -> int:
        """Number of recorded operations of ``kind``."""
        return sum(1 for op in self.operations if op.kind == kind)
