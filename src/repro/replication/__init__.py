"""Replication Manager: CFS-style successor replication plus the extra-hop protocol."""

from repro.replication.cfs import ReplicationManager
from repro.replication.extra_hop import push_items_one_extra_hop

__all__ = ["ReplicationManager", "push_items_one_extra_hop"]
