"""Replication Manager: CFS-style successor replication plus the extra-hop protocol.

Layer contract: builds on :mod:`repro.sim`, :mod:`repro.ring` (listens for
predecessor failures/changes to revive replicas) and :mod:`repro.datastore`
(reads the local store, promotes replicas into it).  The refresh loop's
cadence comes from the resolved maintenance policy on
:mod:`repro.index.config` (fixed period, or RTT-scaled under the adaptive
policy).  Only :class:`~repro.index.peer.IndexPeer` composes a
:class:`ReplicationManager`; other layers interact with replication solely
through the ring events and the store.
"""

from repro.replication.cfs import ReplicationManager
from repro.replication.extra_hop import push_items_one_extra_hop

__all__ = ["ReplicationManager", "push_items_one_extra_hop"]
