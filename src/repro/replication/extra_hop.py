"""Replicate-to-additional-hop (Section 5.2).

Before a peer merges away and leaves the ring, every item it holds (both the
items in its Data Store -- already transferred to the successor by the merge --
and the replicas it stores on behalf of predecessors) must exist on one more
peer than before, otherwise the departure reduces the replica count and a
single subsequent failure can lose items (the Figure 17 scenario).

The naive baseline simply skips this step, which is what the availability
ablation (`benchmarks/test_ablation_availability.py`) quantifies.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.datastore.items import Item, items_to_wire
from repro.transport import RpcError


def push_items_one_extra_hop(node, ring, items: Iterable[Item], hops: int):
    """Send ``items`` to up to ``hops`` JOINED successors of ``node``.

    Runs as a generator (a simulated process step).  Returns the number of
    successors that acknowledged the replicas.  Failures of individual
    successors are tolerated: the protocol only needs *one* additional holder
    to preserve the replica count, and the periodic refresh repairs the rest.
    """
    items = list(items)
    if not items:
        return 0
    acknowledged = 0
    targets: List[str] = ring.joined_successors(hops)
    payload = {"items": items_to_wire(items), "owner": node.address, "extra_hop": True}
    for target in targets:
        try:
            yield node.call(target, "rep_store_replicas", payload)
            acknowledged += 1
        except RpcError:
            continue
    return acknowledged
