"""CFS-style Replication Manager.

Every peer periodically pushes the items in its Data Store to its ``k`` ring
successors (the replication factor, Section 6.1 default 6).  When a peer fails,
its successor's range grows to cover the failed peer's range (detected through
the ring's predecessor-change events), and the successor *revives* the affected
items from the replicas it holds, so the items become live again (Definition 3).

The manager also implements the interactions the paper adds for merges: the
``push_extra_hop`` step of Section 5.2, and replica-deletion propagation so
deleted items are not resurrected from stale replicas.
"""

from __future__ import annotations

from typing import List

from repro.datastore.items import ItemStore, items_from_wire, items_to_wire
from repro.datastore.store import DataStore
from repro.index.config import IndexConfig
from repro.replication.extra_hop import push_items_one_extra_hop
from repro.ring.chord import ChordRing, RingListener
from repro.transport import Endpoint


class ReplicationManager(RingListener):
    """Replication component of one peer."""

    def __init__(
        self,
        node: Endpoint,
        ring: ChordRing,
        store: DataStore,
        config: IndexConfig,
        metrics=None,
        history=None,
    ):
        self.node = node
        self.ring = ring
        self.store = store
        self.config = config
        self.metrics = metrics
        self.history = history

        self.replicas = ItemStore()
        # Per-replica freshness (last refresh time) and tombstones of deleted
        # keys.  Both guard the revive path: a replica is only promoted into
        # the Data Store if it has been refreshed recently and has not been
        # deleted, so stale copies cannot resurrect deleted items.
        self._freshness: dict = {}
        self._tombstones: dict = {}
        # Fingerprint of the last fan-out (store version + target set) and how
        # many refresh rounds were skipped because nothing changed.  Skipping
        # is bounded so receiver-side freshness never leaves the promotable
        # window (see :meth:`_refresh_once`).
        self._last_push: tuple = ()
        self._pushes_skipped = 0
        # What each predecessor last pushed to us: owner address ->
        # (owner's ItemStore.version at push time, receive time, pushed keys).
        # The serve layer's replica reads consult this: a replica read is
        # valid only while the owner's live version still equals the recorded
        # push version -- any mutation since the push (insert, delete, split,
        # shed) bumps the version and sends readers back to the primary.
        self._push_state: dict = {}

        ring.add_listener(self)
        node.register_handler("rep_store_replicas", self._handle_store_replicas)
        node.register_handler("rep_remove_replica", self._handle_remove_replica)

        # The refresh cadence follows the maintenance policy: the fixed period
        # by default, or an interval seeded from the network's observed round
        # trip under ``cadence="rtt_scaled"`` (WAN deployments refresh more
        # often so revives keep up with the slower failure-repair pipeline).
        node.every(
            config.maintenance_policy.maintenance_interval(
                config.replication_refresh_period, node.network.observed_rtt
            ),
            self._refresh_once,
            jitter=config.stabilization_jitter,
            name="rep-refresh",
            initial_delay=config.replication_refresh_period / 2,
        )

    # ------------------------------------------------------------------ helpers
    @property
    def address(self) -> str:
        return self.node.address

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    def replica_keys(self) -> List[float]:
        """Keys of all items currently replicated at this peer."""
        return self.replicas.keys()

    def replica_count(self) -> int:
        return len(self.replicas)

    def clear(self) -> None:
        """Drop all replicas (a merged-away peer returning to the free pool)."""
        self.replicas.clear()
        self._freshness.clear()
        self._push_state.clear()

    def _tombstoned(self, skv: float) -> bool:
        """Whether ``skv`` was recently deleted (blocks replication/revival).

        Tombstones expire after a few refresh periods: by then any stale copy
        of the deleted item has also lost its freshness, and an expired
        tombstone no longer blocks replicas of a later re-insertion.
        """
        deleted_at = self._tombstones.get(skv)
        if deleted_at is None:
            return False
        window = 3 * self.config.replication_refresh_period
        if self.node.sim.now - deleted_at > window:
            self._tombstones.pop(skv, None)
            return False
        return True

    def _is_promotable(self, skv: float) -> bool:
        """Whether a held replica may be revived into the Data Store."""
        if self._tombstoned(skv):
            return False
        freshness = self._freshness.get(skv)
        if freshness is None:
            return False
        window = 4 * self.config.replication_refresh_period
        return self.node.sim.now - freshness <= window

    # ------------------------------------------------------------------ refresh
    def refresh_now(self) -> None:
        """Trigger an immediate replication round (e.g. right after a split)."""
        self.node.spawn(self._refresh_once(), name="rep-refresh-now")

    def _refresh_once(self):
        """Push the local Data Store contents to the k successors; then revive."""
        if not self.node.alive:
            return
        if self.store.active and self.config.replication_factor > 0:
            items = self.store.items.all_items()
            if items:
                targets = self.ring.joined_successors(self.config.replication_factor)
                if self._should_push(targets):
                    payload = {
                        "items": items_to_wire(items),
                        "owner": self.address,
                        # The store version this push snapshots; receivers
                        # record it so replica reads can detect staleness.
                        "version": self.store.items.version,
                    }
                    # Fire-and-forget fan-out: the pushes are independent and
                    # nobody reads the acknowledgements, so each costs one
                    # one-way message -- no reply event, no expiry timer, no
                    # reply traffic.  A failed receiver swallows the push
                    # silently, exactly as it did when the discarded reply
                    # event timed out unobserved.
                    for target in targets:
                        self.node.cast(target, "rep_store_replicas", payload)
        # Promote any replica we hold whose key now falls in our own range --
        # this both revives items after a predecessor failure and self-heals if
        # a range-change notification raced with a refresh.
        yield from self._promote_replicas()

    def _should_push(self, targets) -> bool:
        """Whether this round's fan-out would tell the successors anything new.

        A round is a no-op when neither the Data Store contents (tracked by the
        item store's mutation version) nor the target set changed since the
        last push.  At most one consecutive no-op round is skipped: receivers
        consider a replica promotable for ``4 *`` the refresh period
        (:meth:`_is_promotable`), so pushing at least every second round keeps
        two full periods of slack for failure detection plus range propagation
        before a revive -- enough even when ring-adjacent peers fail together
        (skipping two rounds is not: the revive after an adjacent double
        failure can then find its replicas just outside the window).

        That slack argument assumes pushes are delivered.  On a lossy network
        a recorded push may never have refreshed anyone (the fan-out is
        fire-and-forget), so skipping on top of an undetected loss could
        double the refresh gap -- in that regime every round pushes.
        """
        if self.node.network.config.drop_probability > 0:
            return True
        fingerprint = (self.store.items.version, tuple(targets))
        if fingerprint == self._last_push and self._pushes_skipped < 1:
            self._pushes_skipped += 1
            return False
        self._last_push = fingerprint
        self._pushes_skipped = 0
        return True

    def _promote_replicas(self):
        """Move replicas whose keys are now our responsibility into the Data Store."""
        if not self.store.active or self.store.range is None:
            return
        candidates = [
            item
            for item in self.replicas.all_items()
            if self.store.range.contains(item.skv)
            and item.skv not in self.store.items
            and self._is_promotable(item.skv)
        ]
        if not candidates:
            return
        yield self.store.range_lock.acquire_write()
        try:
            if not self.store.active or self.store.range is None:
                return
            for item in candidates:
                if self.store.range.contains(item.skv) and item.skv not in self.store.items:
                    self.store.store_local(item, reason="replica_revive")
                    self._record_op("replica_revived", skv=item.skv)
        finally:
            self.store.range_lock.release_write()

    # ------------------------------------------------------------------ ring events
    def on_predecessor_changed(self, ring, old_address, old_value, new_address, new_value):
        """Our range may have grown (predecessor failed): revive affected replicas."""
        if self.store.active:
            self.node.spawn(self._promote_replicas(), name="rep-revive")

    def on_predecessor_failed(self, ring, old_address, old_value):
        """Failure detected; the revive happens once the new predecessor appears.

        Nothing to do immediately -- the range boundary only moves when the new
        predecessor announces itself -- but we record the detection so that the
        availability analysis can correlate failures with revivals.
        """
        self._record_op("replication_noticed_failure", failed=old_address)

    # ------------------------------------------------------------------ merge support
    def push_extra_hop(self):
        """Section 5.2: replicate everything we hold one additional hop before leaving.

        Replicas we hold are forwarded only while they are still promotable
        (fresh and not tombstoned); forwarding a stale copy of a deleted item
        would resurrect it at the receivers.
        """
        held = [
            item
            for item in self.replicas.all_items()
            if self._is_promotable(item.skv)
        ] + list(self.store.items.all_items())
        count = yield from push_items_one_extra_hop(
            self.node, self.ring, held, max(self.config.replication_factor, 1)
        )
        self._record_op("extra_hop_replication", items=len(held), acknowledged=count)
        return count

    def propagate_delete(self, skv: float) -> None:
        """Forget a deleted item everywhere it is replicated (prevents resurrection).

        The owning peer drops its own replica and records a tombstone first --
        it may itself hold a replica from before it became responsible for the
        key -- and then notifies its successors.
        """
        self._tombstones[skv] = self.node.sim.now
        self._freshness.pop(skv, None)
        self.replicas.remove(skv)
        if self.config.replication_factor <= 0:
            return
        # One-way notifications: the deletion either lands or the stale
        # replica ages out of the promotable window on its own.
        for target in self.ring.joined_successors(self.config.replication_factor):
            self.node.cast(target, "rep_remove_replica", {"skv": skv})

    # ------------------------------------------------------------------ RPC handlers
    def _handle_store_replicas(self, payload, request):
        """RPC: store replicas on behalf of a predecessor."""
        stored = 0
        now = self.node.sim.now
        pushed: List[float] = []
        for item in items_from_wire(payload["items"]):
            pushed.append(item.skv)
            if self._tombstoned(item.skv):
                continue  # deleted; do not let a stale copy come back
            self._freshness[item.skv] = now
            if self.store.active and item.skv in self.store.items:
                continue  # we already hold the primary copy
            if self.replicas.add(item):
                stored += 1
        # Remember the push as the owner's claimed snapshot.  Tombstoned keys
        # stay in the recorded key set but were *not* stored, so a replica
        # read that needs one finds it missing and falls back to the primary
        # -- a tombstoned copy is never served.
        self._push_state[payload["owner"]] = (
            payload.get("version"),
            now,
            tuple(pushed),
        )
        return {"stored": stored}

    def _handle_remove_replica(self, payload, request):
        """RPC: a primary copy was deleted; drop our replica and remember the deletion."""
        skv = payload["skv"]
        self._tombstones[skv] = self.node.sim.now
        self._freshness.pop(skv, None)
        removed = self.replicas.remove(skv) is not None
        return {"removed": removed}
