"""Adaptive ring-maintenance subsystem: cadence controllers and redirect caching.

Layer contract
--------------
This package sits *below* the protocol layers: it depends only on the standard
library, so :mod:`repro.index.config` can carry a resolved
:class:`MaintenancePolicy` and :mod:`repro.ring` / :mod:`repro.replication`
can drive their periodic loops through the controllers without import cycles.
Neighbors may import everything exported here; nothing in this package may
import from any other ``repro`` package.

What lives here:

* :mod:`~repro.maintenance.cadence` -- :class:`FixedCadence`,
  :class:`AdaptiveCadence` (back-off/tighten validation cadence) and
  :class:`RttScaledCadence` (round-trip-seeded stabilization/replication
  periods).
* :mod:`~repro.maintenance.redirect_cache` -- the server-side join-redirect
  cache (:class:`RedirectCache`).
* :mod:`~repro.maintenance.policy` -- :class:`MaintenancePolicy`, the named
  presets, and :func:`maintenance_policy_from_params` (the scenario-facing
  factory, mirroring the latency-model factory).
"""

from repro.maintenance.cadence import (
    AdaptiveCadence,
    CadenceController,
    FixedCadence,
    RttScaledCadence,
    rtt_scaled_period,
)
from repro.maintenance.policy import (
    FIXED_MAINTENANCE,
    MAINTENANCE_POLICIES,
    MaintenancePolicy,
    maintenance_policy_from_params,
)
from repro.maintenance.redirect_cache import RedirectCache, backward_distance

__all__ = [
    "AdaptiveCadence",
    "CadenceController",
    "FIXED_MAINTENANCE",
    "FixedCadence",
    "MAINTENANCE_POLICIES",
    "MaintenancePolicy",
    "RedirectCache",
    "RttScaledCadence",
    "backward_distance",
    "maintenance_policy_from_params",
    "rtt_scaled_period",
]
