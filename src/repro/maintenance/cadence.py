"""Cadence controllers: how often a peer runs its periodic maintenance.

The ring and replication layers historically ran every periodic protocol --
stabilization, predecessor pings, successor validation, replica refresh -- on
fixed timers taken straight from :class:`~repro.index.config.IndexConfig`.
Past ~3000 peers the per-method RPC profiles show that the *validation* timers
(``ring_ping`` traffic) dominate maintenance cost, and under WAN latency the
fixed LAN-tuned periods let protocol propagation lag behind the workload.

This module provides the controllers that replace those constants:

* :class:`FixedCadence` -- the legacy behaviour, wrapped in the controller
  interface so fixed and adaptive cells run through one code path.
* :class:`AdaptiveCadence` -- multiplicative back-off while recent rounds all
  succeed, immediate reset to the base period after a failure or an observed
  membership change.  Used for the ``ring_ping`` validation loops.
* :class:`RttScaledCadence` -- a period scaled from the network's observed
  round trip (see :func:`rtt_scaled_period`).  Used for stabilization and
  replica refresh so WAN cells run them on round-trip-scaled periods instead
  of LAN constants.

Controllers are deterministic and side-effect free: they never read a clock or
an RNG, only the feedback fed to them (``note_success`` / ``note_failure`` /
``note_change``), which keeps simulations reproducible and the transitions
unit-testable.
"""

from __future__ import annotations

from typing import Callable, Optional


class CadenceController:
    """Interface every cadence source implements.

    ``interval()`` returns the delay before the *next* round; the ``note_*``
    feedback hooks let the owning protocol report what the last round saw.
    ``interval`` is deliberately a bound method (not a property) so it can be
    handed to :meth:`repro.sim.node.Node.every` as a callable period.
    """

    def interval(self) -> float:
        raise NotImplementedError

    def note_success(self) -> None:
        """The last round completed without detecting anything wrong."""

    def note_failure(self) -> None:
        """The last round detected a failure (timeout, stale pointer, ...)."""

    def note_change(self) -> None:
        """The local membership view changed (new predecessor/successor)."""


class FixedCadence(CadenceController):
    """The legacy fixed timer: every round is ``base`` seconds apart."""

    def __init__(self, base: float):
        if base <= 0:
            raise ValueError("cadence base period must be positive")
        self.base = base

    def interval(self) -> float:
        return self.base


class AdaptiveCadence(CadenceController):
    """Back off while validations succeed; tighten on failure or change.

    After ``success_threshold`` consecutive successful rounds the interval
    grows by ``growth`` (multiplicative), bounded by ``base * max_factor``.
    Any failure or membership change resets the interval to ``base`` -- the
    controller never probes *faster* than the configured period, so a fixed
    and an adaptive deployment are identical until the first back-off.
    """

    def __init__(
        self,
        base: float,
        growth: float = 2.0,
        max_factor: float = 4.0,
        success_threshold: int = 2,
    ):
        if base <= 0:
            raise ValueError("cadence base period must be positive")
        if growth <= 1.0:
            raise ValueError("back-off growth must be > 1")
        if max_factor < 1.0:
            raise ValueError("back-off max_factor must be >= 1")
        if success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")
        self.base = base
        self.growth = growth
        self.max_factor = max_factor
        self.success_threshold = success_threshold
        self._interval = base
        self._successes = 0

    def interval(self) -> float:
        return self._interval

    def note_success(self) -> None:
        self._successes += 1
        if self._successes >= self.success_threshold:
            self._successes = 0
            self._interval = min(self._interval * self.growth, self.base * self.max_factor)

    def note_failure(self) -> None:
        self._tighten()

    def note_change(self) -> None:
        self._tighten()

    def _tighten(self) -> None:
        self._successes = 0
        self._interval = self.base


def rtt_scaled_period(
    base: float,
    rtt: Optional[float],
    reference_rtt: float,
    floor: float,
) -> float:
    """Scale a LAN-tuned period for the observed network round trip.

    The maintenance constants were tuned for a LAN whose round trip is
    ``reference_rtt``.  When the observed round trip is *longer* (a WAN
    deployment), every protocol step -- join-ack propagation, successor
    repair, replica refresh -- advances once per maintenance round but each
    round's progress costs the same wall period, so deployments fall behind
    the workload (WAN scale cells finish with fewer members and items).  The
    remedy is to run maintenance proportionally more often, bounded by
    ``floor`` so the extra traffic stays within a known factor:

    ``period = base * clamp(reference_rtt / rtt, floor, 1.0)``

    On a LAN (``rtt <= reference_rtt``) the period is exactly ``base``; an
    unknown round trip (``rtt`` is ``None``) also keeps ``base``.
    """
    if rtt is None or rtt <= 0:
        return base
    return base * min(1.0, max(floor, reference_rtt / rtt))


class RttScaledCadence(CadenceController):
    """Stabilization/replication cadence seeded from the observed round trip.

    ``rtt_source`` is re-read before every round (e.g.
    :meth:`repro.sim.network.Network.observed_rtt`), so the cadence follows
    the network actually measured -- a deployment that starts before traffic
    flows is seeded from the latency model's nominal round trip and converges
    onto the observed one.
    """

    def __init__(
        self,
        base: float,
        rtt_source: Callable[[], Optional[float]],
        reference_rtt: float = 0.004,
        floor: float = 0.5,
    ):
        if base <= 0:
            raise ValueError("cadence base period must be positive")
        if reference_rtt <= 0:
            raise ValueError("reference_rtt must be positive")
        if not 0.0 < floor <= 1.0:
            raise ValueError("cadence floor must be in (0, 1]")
        self.base = base
        self.rtt_source = rtt_source
        self.reference_rtt = reference_rtt
        self.floor = floor

    def interval(self) -> float:
        return rtt_scaled_period(self.base, self.rtt_source(), self.reference_rtt, self.floor)
