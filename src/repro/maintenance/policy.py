"""Declarative maintenance policy: which controllers a deployment runs.

A :class:`MaintenancePolicy` is the resolved, validated object carried on
:class:`~repro.index.config.IndexConfig` (field ``maintenance``), exactly as a
resolved latency model is carried on the network config.  Scenario specs
describe the policy as a name plus flat JSON-able parameters
(:class:`~repro.harness.scenarios.MaintenanceSpec`) and resolve it through
:func:`maintenance_policy_from_params`, mirroring
:func:`repro.sim.network.latency_model_from_params`.

Four independent knobs:

* ``validation`` (``fixed`` | ``adaptive``) -- the cadence of the
  ``ring_ping`` validation loops (predecessor check, successor validation).
  ``adaptive`` backs off while validations succeed and tightens after a
  failure or membership change (:class:`~repro.maintenance.cadence.AdaptiveCadence`),
  and additionally enables per-entry validation *freshness*: a successor
  entry confirmed alive within ``freshness_factor`` stabilization periods
  (by a ping, a stabilization round, or the peer stabilizing with us) is
  skipped instead of re-pinged.
* ``router`` (``fixed`` | ``adaptive``) -- the content-router table refresh
  cadence.  ``adaptive`` backs off while consecutive refreshes reproduce the
  same pointer table without errors and tightens as soon as the table
  changes, a refresh RPC fails, or the ring observes a neighbourhood change.
* ``cadence`` (``fixed`` | ``rtt_scaled``) -- the stabilization and replica
  refresh periods.  ``rtt_scaled`` seeds them from the network's observed
  round trip (:class:`~repro.maintenance.cadence.RttScaledCadence`).
* ``redirect_cache_size`` -- entries in the server-side join-redirect cache
  (:class:`~repro.maintenance.redirect_cache.RedirectCache`); ``0`` disables
  it.

The default-constructed policy (:data:`FIXED_MAINTENANCE`) reproduces the
historical fixed-timer behaviour bit for bit, which is what makes
fixed-vs-adaptive a clean ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.maintenance.cadence import (
    AdaptiveCadence,
    CadenceController,
    FixedCadence,
    RttScaledCadence,
)
from repro.maintenance.redirect_cache import RedirectCache

VALIDATION_MODES = ("fixed", "adaptive")
ROUTER_MODES = ("fixed", "adaptive")
CADENCE_MODES = ("fixed", "rtt_scaled")


@dataclass(frozen=True)
class MaintenancePolicy:
    """All maintenance-adaptivity tunables of one deployment."""

    validation: str = "fixed"
    router: str = "fixed"
    cadence: str = "fixed"
    redirect_cache_size: int = 0

    # -- adaptive validation tuning (see AdaptiveCadence) -------------------
    backoff_growth: float = 2.0
    backoff_max: float = 4.0
    success_threshold: int = 2
    # Per-entry validation freshness: a successor confirmed alive within
    # ``freshness_factor * stabilization_period`` is not re-pinged.  0
    # disables the skip (every validation round pings every entry).
    freshness_factor: float = 0.0

    # -- adaptive router-refresh tuning --------------------------------------
    # Router tables go stale only when membership moves, so the refresh loop
    # may back off further than the liveness validations before staleness
    # shows up in route lengths (stale pointers already fall back gracefully).
    router_backoff_max: float = 6.0

    # -- rtt_scaled cadence tuning (see RttScaledCadence) -------------------
    reference_rtt: float = 0.004
    cadence_floor: float = 0.5

    # -- redirect cache tuning ----------------------------------------------
    redirect_cache_ttl: float = 30.0

    def validate(self) -> None:
        """Raise ``ValueError`` for meaningless settings."""
        if self.validation not in VALIDATION_MODES:
            raise ValueError(
                f"unknown validation mode {self.validation!r}; "
                f"known: {', '.join(VALIDATION_MODES)}"
            )
        if self.router not in ROUTER_MODES:
            raise ValueError(
                f"unknown router mode {self.router!r}; known: {', '.join(ROUTER_MODES)}"
            )
        if self.freshness_factor < 0:
            raise ValueError("freshness_factor must be >= 0")
        if self.router_backoff_max < 1.0:
            raise ValueError("router_backoff_max must be >= 1")
        if self.cadence not in CADENCE_MODES:
            raise ValueError(
                f"unknown cadence mode {self.cadence!r}; known: {', '.join(CADENCE_MODES)}"
            )
        if self.redirect_cache_size < 0:
            raise ValueError("redirect_cache_size must be >= 0")
        if self.backoff_growth <= 1.0:
            raise ValueError("backoff_growth must be > 1")
        if self.backoff_max < 1.0:
            raise ValueError("backoff_max must be >= 1")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")
        if self.reference_rtt <= 0:
            raise ValueError("reference_rtt must be positive")
        if not 0.0 < self.cadence_floor <= 1.0:
            raise ValueError("cadence_floor must be in (0, 1]")
        if self.redirect_cache_ttl <= 0:
            raise ValueError("redirect_cache_ttl must be positive")

    # ------------------------------------------------------------------ factories
    def validation_controller(self, base: float) -> CadenceController:
        """The controller driving a ``ring_ping`` validation loop."""
        if self.validation == "adaptive":
            return AdaptiveCadence(
                base,
                growth=self.backoff_growth,
                max_factor=self.backoff_max,
                success_threshold=self.success_threshold,
            )
        return FixedCadence(base)

    def router_controller(self, base: float) -> CadenceController:
        """The controller driving the content router's table refresh loop."""
        if self.router == "adaptive":
            return AdaptiveCadence(
                base,
                growth=self.backoff_growth,
                max_factor=self.router_backoff_max,
                success_threshold=self.success_threshold,
            )
        return FixedCadence(base)

    def validation_freshness(self, stabilization_period: float) -> float:
        """The per-entry confirmation window, in seconds (0 = no skipping)."""
        return self.freshness_factor * stabilization_period

    def maintenance_interval(
        self, base: float, rtt_source: Callable[[], Optional[float]]
    ) -> Union[float, Callable[[], float]]:
        """The period source for a stabilization/replication loop.

        Returns the plain ``base`` float under the fixed cadence (zero
        overhead, byte-identical to the legacy timers) or a callable interval
        under ``rtt_scaled`` -- both shapes are accepted by
        :meth:`repro.sim.node.Node.every`.
        """
        if self.cadence == "rtt_scaled":
            return RttScaledCadence(
                base, rtt_source, reference_rtt=self.reference_rtt, floor=self.cadence_floor
            ).interval
        return base

    def build_redirect_cache(self) -> Optional[RedirectCache]:
        """The per-peer join-redirect cache, or ``None`` when disabled."""
        if self.redirect_cache_size <= 0:
            return None
        return RedirectCache(self.redirect_cache_size, ttl=self.redirect_cache_ttl)


#: The legacy behaviour: fixed timers, no redirect cache.
FIXED_MAINTENANCE = MaintenancePolicy()

# Named presets resolvable from scenario specs.  ``adaptive`` turns on every
# mechanism; individual parameters can still be overridden, e.g.
# ``maintenance_policy_from_params("adaptive", redirect_cache_size=0)``.
MAINTENANCE_POLICIES = {
    "fixed": {},
    "adaptive": {
        "validation": "adaptive",
        "router": "adaptive",
        "cadence": "rtt_scaled",
        "redirect_cache_size": 16,
        "freshness_factor": 1.5,
    },
}


def maintenance_policy_from_params(name: str, **params) -> MaintenancePolicy:
    """Instantiate a named maintenance policy from flat keyword parameters.

    Scenario specs describe the policy as JSON-able mappings; this factory
    merges the named preset with the overrides and validates the result,
    mirroring :func:`repro.sim.network.latency_model_from_params`.
    """
    if name not in MAINTENANCE_POLICIES:
        raise ValueError(
            f"unknown maintenance policy {name!r}; "
            f"known: {', '.join(sorted(MAINTENANCE_POLICIES))}"
        )
    merged = {**MAINTENANCE_POLICIES[name], **params}
    try:
        policy = MaintenancePolicy(**merged)
    except TypeError:
        fields = set(MaintenancePolicy.__dataclass_fields__)
        unknown = sorted(set(merged) - fields)
        raise ValueError(f"unknown maintenance parameters: {', '.join(unknown)}") from None
    policy.validate()
    return policy
