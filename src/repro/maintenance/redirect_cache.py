"""Server-side join-redirect cache: answer stale-pointer joins from memory.

A Data Store split addresses the ring insert through the splitter's
(possibly stale) predecessor pointer.  When the contacted peer is not the
right insertion point it *redirects* the joiner one pointer at a time --
towards its own predecessor or first successor -- so a chain of stale
pointers is walked hop by hop at network speed (the PR 3 flash-crowd
``ring_insert_successor`` storm capped that walk on the *joiner* side).

This cache closes the server side: every peer remembers the ring members it
recently heard about first-hand (stabilization partners, adopted successor
entries, peers it inserted itself) and, when it must reject a join, redirects
straight to the cached member closest *before* the joining value instead of
taking a single step.  Entries carry a timestamp and are only trusted for
``ttl`` simulated seconds -- stale entries must age out quickly because a
cached peer may since have merged away or moved its ring value.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


def backward_distance(target: float, value: float, key_space: float) -> float:
    """Counter-clockwise distance from ``target`` back to ``value`` on the ring.

    The best redirect target for a joining value is the member that minimises
    this distance: the closest predecessor in ring order.  A zero distance
    (``value == target``) is reported as a full circle so a peer can never be
    chosen as its own predecessor.
    """
    distance = (target - value) % key_space
    return distance if distance > 0 else key_space


class RedirectCache:
    """A bounded, TTL'd map of recently observed ring members.

    ``record`` is O(1) and called from the stabilization hot path; ``lookup``
    is O(size) and only runs on the (rare) join-reject path.  ``size`` bounds
    memory per peer; insertion order doubles as the eviction order (oldest
    observation evicted first -- re-recording an address refreshes it).
    """

    def __init__(self, size: int, ttl: float):
        if size < 1:
            raise ValueError("redirect cache size must be >= 1")
        if ttl <= 0:
            raise ValueError("redirect cache ttl must be positive")
        self.size = size
        self.ttl = ttl
        self._entries: "OrderedDict[str, Tuple[float, float]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, address: str, value: float, now: float) -> None:
        """Remember that ``address`` was a ring member at ``value`` at time ``now``."""
        entries = self._entries
        if address in entries:
            del entries[address]
        entries[address] = (value, now)
        while len(entries) > self.size:
            entries.popitem(last=False)

    def forget(self, address: str) -> None:
        """Drop an entry observed to be wrong (failed or merged-away peer)."""
        self._entries.pop(address, None)

    def lookup(
        self,
        target_value: float,
        key_space: float,
        now: float,
        exclude: Tuple[str, ...] = (),
    ) -> Optional[Tuple[str, float]]:
        """The freshest-known member closest before ``target_value`` in ring order.

        Returns ``(address, value)`` or ``None``.  Entries older than ``ttl``
        are pruned as they are passed over; ``exclude`` removes peers that are
        not useful redirect targets (the rejecting peer itself, the joiner).
        """
        best: Optional[Tuple[str, float]] = None
        best_distance = key_space + 1.0
        stale = []
        for address, (value, stamp) in self._entries.items():
            if now - stamp > self.ttl:
                stale.append(address)
                continue
            if address in exclude:
                continue
            distance = backward_distance(target_value, value, key_space)
            if distance < best_distance:
                best_distance = distance
                best = (address, value)
        for address in stale:
            del self._entries[address]
        return best
