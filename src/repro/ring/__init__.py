"""Fault Tolerant Ring substrate (Chord-style) with naive baseline protocols.

Layer contract: sits directly on :mod:`repro.sim`, and may additionally
import :mod:`repro.maintenance` (cadence controllers, redirect cache) and
:mod:`repro.index.config` (the shared tunables; config deliberately imports
nothing from this package).  Higher layers (datastore, replication, router,
index) attach to a ring through :class:`RingListener` callbacks and the
public query/bootstrap methods of :class:`ChordRing` -- they must never
mutate ``ring.state`` / ``ring.value`` directly (the membership index is
notified through ``_set_state`` / ``_set_value``; see
``docs/ARCHITECTURE.md``).  The PEPPER protocol variants subclass
:class:`ChordRing` from :mod:`repro.core.pepper_ring`.
"""

from repro.ring.entries import (
    FREE,
    INSERTING,
    JOINED,
    JOINING,
    LEAVING,
    SuccessorEntry,
)
from repro.ring.chord import ChordRing, RingListener

__all__ = [
    "ChordRing",
    "FREE",
    "INSERTING",
    "JOINED",
    "JOINING",
    "LEAVING",
    "RingListener",
    "SuccessorEntry",
]
