"""Fault Tolerant Ring substrate (Chord-style) with naive baseline protocols."""

from repro.ring.entries import (
    FREE,
    INSERTING,
    JOINED,
    JOINING,
    LEAVING,
    SuccessorEntry,
)
from repro.ring.chord import ChordRing, RingListener

__all__ = [
    "ChordRing",
    "FREE",
    "INSERTING",
    "JOINED",
    "JOINING",
    "LEAVING",
    "RingListener",
    "SuccessorEntry",
]
