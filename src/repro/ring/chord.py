"""Chord-style Fault Tolerant Ring with the *naive* insert/leave baselines.

This module provides the ring substrate the paper builds on (Section 2.3):
successor lists of configurable length, periodic stabilization with the first
live successor, ping-based predecessor failure detection, and the naive
``insertSucc`` / ``leave`` used as baselines in Section 6.2.

The consistency-preserving PEPPER variants (Algorithms 1-2 and Section 5.1)
live in :mod:`repro.core.pepper_ring` and subclass :class:`ChordRing`.

A :class:`ChordRing` is a *component* attached to a :class:`~repro.transport.endpoint.Endpoint`;
it registers its message handlers on the node and exposes ring events to higher
layers (the Data Store and Replication Manager) through :class:`RingListener`
callbacks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.index.config import IndexConfig
from repro.maintenance.redirect_cache import backward_distance
from repro.ring.entries import (
    FREE,
    INSERTING,
    JOINED,
    JOINING,
    LEAVING,
    SuccessorEntry,
    entries_from_wire,
    entries_to_wire,
)
from repro.sim.engine import Interrupt
from repro.sim.locks import RWLock
from repro.transport import Endpoint, RpcError


def in_open_interval(value: float, low: float, high: float) -> bool:
    """Whether ``value`` lies in the circular open interval ``(low, high)``.

    The peer-value domain wraps around (Section 2.2): if ``low >= high`` the
    interval crosses the wrap point.  A degenerate interval (``low == high``)
    is treated as the whole ring minus the endpoint, which is the correct
    behaviour for a single-peer ring adopting its first real predecessor.
    """
    if low == high:
        return value != low
    if low < high:
        return low < value < high
    return value > low or value < high


class RingListener:
    """Callbacks through which higher layers observe ring events.

    The Data Store listens for predecessor changes (its range is
    ``(pred.value, own.value]``), the Replication Manager listens for
    predecessor failures (to revive replicas), and the index facade listens
    for join completion.
    """

    def on_joined(self, ring: "ChordRing") -> None:
        """This peer completed its insertion into the ring."""

    def on_predecessor_changed(
        self,
        ring: "ChordRing",
        old_address: Optional[str],
        old_value: Optional[float],
        new_address: str,
        new_value: float,
    ) -> None:
        """The peer's predecessor (hence its range lower bound) changed."""

    def on_predecessor_failed(
        self, ring: "ChordRing", old_address: str, old_value: float
    ) -> None:
        """The peer's predecessor stopped responding to pings."""

    def on_successor_changed(self, ring: "ChordRing", new_address: str) -> None:
        """The peer's first live successor changed."""


class ChordRing:
    """The Fault Tolerant Ring component of one peer."""

    def __init__(
        self,
        node: Endpoint,
        value: float,
        config: IndexConfig,
        metrics=None,
        history=None,
    ):
        self.node = node
        self.config = config
        self.metrics = metrics
        self.history = history

        # Optional membership observer (a
        # :class:`~repro.index.membership.MembershipIndex`).  ``state`` and
        # ``value`` are plain attributes because they are read on nearly every
        # protocol step; every *mutation* must go through :meth:`_set_state` /
        # :meth:`_set_value` so the observer sees each transition and
        # cluster-level membership queries never have to rescan the deployment
        # (``tests/test_membership_invariants.py`` enforces this).
        self.membership = None
        self.value = value
        self.state = FREE
        self.succ_list: List[SuccessorEntry] = []
        self.pred_address: Optional[str] = None
        self.pred_value: Optional[float] = None
        self.succ_lock = RWLock(node.sim, name=f"{node.address}.succList")

        self.listeners: List[RingListener] = []
        self._joined_event = node.sim.event()
        self._maintenance_started = False
        self._stabilizing = False
        self._stabilize_pending = False

        # Maintenance adaptivity (``config.maintenance``; the default policy
        # reproduces the historical fixed timers).  The successor-validation
        # controller paces that ``ring_ping`` loop -- backing off while
        # validations succeed, tightening after a failure or membership
        # change -- and the redirect cache answers stale-pointer joins from
        # recently observed members instead of walking the ring one pointer
        # at a time.  The predecessor check deliberately keeps its fixed
        # cadence (its detection latency feeds replica revival); its traffic
        # is cut by the *passive* suppression below instead: a predecessor
        # that recently stabilized with us has proven itself alive, so the
        # next ping within the window is redundant and skipped.
        policy = config.maintenance_policy
        self._succ_cadence = policy.validation_controller(config.stabilization_period)
        self._redirect_cache = policy.build_redirect_cache()
        self._passive_window = (
            1.5 * config.predecessor_check_period if policy.validation == "adaptive" else None
        )
        # Last time each peer stabilized with us, newest last (adaptive
        # policy only; bounded -- see _note_heard_from).
        self._heard_from: dict = {}
        # Per-entry validation freshness: when each peer was last confirmed
        # alive first-hand (a ping reply, a stabilization round with it, or it
        # stabilizing with us).  Successor validation skips re-pinging entries
        # confirmed within the window instead of burning a ``ring_ping`` on a
        # peer that just proved itself.  0 disables the skip entirely (the
        # fixed policy's behaviour).
        self._freshness_window = (
            policy.validation_freshness(config.stabilization_period) or None
        )
        self._confirmed_at: dict = {}

        node.register_handler("ring_stabilize", self._handle_stabilize)
        node.register_handler("ring_ping", self._handle_ping)
        node.register_handler("ring_insert_successor", self._handle_insert_successor)
        node.register_handler("ring_join", self._handle_join)
        node.register_handler("ring_nudge", self._handle_nudge)

    # ------------------------------------------------------------------ helpers
    def _set_state(self, new_state: str) -> None:
        """Transition the lifecycle state, notifying the membership observer."""
        old_state = self.state
        if new_state == old_state:
            return
        self.state = new_state
        if self.membership is not None:
            self.membership.ring_state_changed(self.node, old_state, new_state)

    def _set_value(self, new_value: float) -> None:
        """Change the ring value, notifying the membership observer."""
        old_value = self.value
        if new_value == old_value:
            return
        self.value = new_value
        if self.membership is not None:
            self.membership.ring_value_changed(self.node, old_value, new_value)

    @property
    def sim(self):
        return self.node.sim

    @property
    def address(self) -> str:
        return self.node.address

    @property
    def is_joined(self) -> bool:
        """Whether the peer is a full ring member (JOINED or mid-insert)."""
        return self.state in (JOINED, INSERTING, LEAVING)

    def add_listener(self, listener: RingListener) -> None:
        """Subscribe ``listener`` to ring events."""
        self.listeners.append(listener)

    def _record(self, metric: str, duration: float) -> None:
        if self.metrics is not None:
            self.metrics.record(metric, duration)

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    # How many distinct recent stabilizers to remember for passive liveness;
    # in a healthy ring only the current predecessor stabilizes with us, so a
    # handful of slots covers churn transients without unbounded growth.
    _HEARD_FROM_LIMIT = 8

    def _note_heard_from(self, address: str) -> None:
        """Record that ``address`` just stabilized with us (adaptive policy only)."""
        self._note_confirmed(address)
        if self._passive_window is None:
            return
        heard = self._heard_from
        heard.pop(address, None)
        heard[address] = self.sim.now
        while len(heard) > self._HEARD_FROM_LIMIT:
            heard.pop(next(iter(heard)))

    # Confirmation records only matter for peers near us on the ring (the
    # successor list is a handful of entries); a few dozen slots absorb churn
    # transients without growing with deployment size.
    _CONFIRMED_LIMIT = 32

    def _note_confirmed(self, address: str) -> None:
        """Record a first-hand liveness confirmation of ``address``."""
        if self._freshness_window is None or address == self.address:
            return
        confirmed = self._confirmed_at
        confirmed.pop(address, None)
        confirmed[address] = self.sim.now
        while len(confirmed) > self._CONFIRMED_LIMIT:
            confirmed.pop(next(iter(confirmed)))

    def _confirmed_recently(self, address: str) -> bool:
        """Whether ``address`` proved itself alive within the freshness window."""
        if self._freshness_window is None:
            return False
        confirmed = self._confirmed_at.get(address)
        return confirmed is not None and self.sim.now - confirmed <= self._freshness_window

    # ------------------------------------------------------------------ redirect cache
    def _cache_record(self, address: Optional[str], value: Optional[float]) -> None:
        """Remember a first-hand observation of a ring member (for join redirects)."""
        cache = self._redirect_cache
        if cache is not None and address is not None and address != self.address:
            cache.record(address, value, self.sim.now)

    def _cache_forget(self, address: str) -> None:
        """Drop a cached member observed to be failed or merged away."""
        if self._redirect_cache is not None:
            self._redirect_cache.forget(address)

    def _best_known_predecessor(
        self, target_value: float, exclude: tuple
    ) -> Optional[tuple]:
        """The known member closest *before* ``target_value`` in ring order.

        Candidates are the JOINED entries of our successor list (first-hand,
        never stale by more than a stabilization round) plus the redirect
        cache (older observations from further around the ring).  Returns
        ``(address, value)`` or ``None``.  Only meaningful when the policy
        enables the redirect cache.
        """
        if self._redirect_cache is None:
            return None
        span = self.config.key_space
        best = self._redirect_cache.lookup(
            target_value, span, self.sim.now, exclude=exclude
        )
        best_distance = (
            backward_distance(target_value, best[1], span) if best is not None else span + 1.0
        )
        for entry in self.succ_list:
            if entry.state != JOINED or entry.address in exclude:
                continue
            distance = backward_distance(target_value, entry.value, span)
            if distance < best_distance:
                best_distance = distance
                best = (entry.address, entry.value)
        return best

    def _cached_redirect(
        self,
        new_address: str,
        new_value: float,
        default_address: str,
        default_value: float,
        bad_redirects: tuple = (),
    ) -> str:
        """The best redirect target for a rejected join.

        The default target (our predecessor or first successor) takes one step
        along the ring; if the successor list or the cache knows a member
        strictly closer *before* the joining value, redirect straight there --
        the walk strides over whole successor lists instead of single
        pointers, which is what keeps flash-crowd joins inside the attempt cap
        and turns repeat joins through the same stale pointer into O(1).
        """
        if self._redirect_cache is None:
            return default_address
        best = self._best_known_predecessor(
            new_value, exclude=(self.address, new_address, default_address, *bad_redirects)
        )
        if best is None:
            return default_address
        span = self.config.key_space
        if backward_distance(new_value, best[1], span) < backward_distance(
            new_value, default_value, span
        ):
            self._record("join_redirect_cached", 1.0)
            return best[0]
        return default_address

    def adopt_inserted_predecessor(self, address: str, value: float) -> None:
        """First-hand predecessor adoption: ``address`` inserted right behind us.

        A Data Store split learns its partner joined the ring the instant the
        partner's confirmation RPC arrives -- waiting for stabilization to
        discover the same fact leaves a window in which a *stale*
        ``predecessor_changed`` (the previous predecessor announcing itself
        late) re-widens the store range below the split key, letting replica
        revival resurrect just-shed copies that the boundary then strands.
        Adoption goes through the normal closer-predecessor rule, so a stale
        later announcement from further back is simply rejected.
        """
        self._consider_predecessor(address, value)

    def join_contact_for(self, value: float) -> str:
        """Best known contact through which a peer at ``value`` should join.

        Data Store splits address the ring insert through this: the
        predecessor pointer by default, upgraded to the closest known
        predecessor of ``value`` when the maintenance policy's redirect cache
        is enabled (the bootstrap peer's self-pointer otherwise sends early
        flash-crowd joiners on a walk around the entire ring).
        """
        default = self.pred_address or self.address
        best = self._best_known_predecessor(value, exclude=(self.address,))
        if best is None:
            return default
        span = self.config.key_space
        default_value = (
            self.pred_value
            if self.pred_address not in (None, self.address) and self.pred_value is not None
            else self.value
        )
        if backward_distance(value, best[1], span) < backward_distance(
            value, default_value, span
        ):
            return best[0]
        return default

    # ------------------------------------------------------------------ queries
    def successor_entries(self) -> List[SuccessorEntry]:
        """A snapshot copy of the successor list."""
        return [entry.copy() for entry in self.succ_list]

    def first_live_successor(self) -> Optional[str]:
        """Address of the first JOINED successor, or ``None`` if alone."""
        entry = self._first_joined_entry()
        if entry is None or entry.address == self.address:
            return None
        return entry.address

    def joined_successors(self, count: int) -> List[str]:
        """Addresses of up to ``count`` JOINED successors (excluding self)."""
        result: List[str] = []
        for entry in self.succ_list:
            if entry.state != JOINED or entry.address == self.address:
                continue
            if entry.address not in result:
                result.append(entry.address)
            if len(result) >= count:
                break
        return result

    def _first_joined_entry(self) -> Optional[SuccessorEntry]:
        for entry in self.succ_list:
            if entry.state == JOINED:
                return entry
        return None

    def _first_joined_address(self) -> Optional[str]:
        entry = self._first_joined_entry()
        return entry.address if entry is not None else None

    def _stabilization_target(self) -> Optional[SuccessorEntry]:
        """First successor to stabilize with (skip JOINING/LEAVING pointers)."""
        for entry in self.succ_list:
            if entry.state == JOINED and entry.address != self.address:
                return entry
        return None

    # ------------------------------------------------------------------ bootstrap
    def create(self) -> None:
        """Initialise this peer as the first (and only) member of the ring."""
        self._set_state(JOINED)
        self.succ_list = [SuccessorEntry(self.address, self.value, JOINED, True)]
        self.pred_address = self.address
        self.pred_value = self.value
        self._record_op("ring_create", value=self.value)
        self._start_maintenance()
        self._fire_joined()
        if not self._joined_event.triggered:
            self._joined_event.succeed(self.address)

    def join(self, predecessor_address: str):
        """Join the ring as the successor of ``predecessor_address``.

        Runs as a generator; completes once this peer is JOINED (i.e. once the
        predecessor's ``insertSucc`` finished and sent us our ring state).
        Returns the elapsed time.
        """
        started = self.sim.now
        self._set_state(JOINING)
        if self._joined_event.triggered:
            # Re-joining after a previous membership (a merged-away free peer
            # being reused for a later split): arm a fresh completion event.
            self._joined_event = self.sim.event()
        self._record_op("ring_init_join", predecessor=predecessor_address)
        attempts = 0
        previous_contact: Optional[str] = None  # redirect memory (breaks 2-cycles)
        dead_redirects: List[str] = []  # redirect targets observed FREE (reported back)
        while not self._joined_event.triggered:
            attempts += 1
            if attempts > 20:
                # Every iteration -- including pure redirects -- counts against
                # the cap, so a cyclic chain of stale pointers (the
                # ``ring_insert_successor`` redirect storm under flash crowds)
                # aborts instead of spinning forever.
                self._set_state(FREE)
                raise RuntimeError(f"{self.address}: could not join the ring")
            try:
                response = yield self.node.call(
                    predecessor_address,
                    "ring_insert_successor",
                    {
                        "address": self.address,
                        "value": self.value,
                        "bad_redirects": dead_redirects,
                    },
                )
            except RpcError:
                response = None
            if response is not None and not response.get("accepted", False):
                redirect = response.get("redirect")
                if redirect and redirect != self.address:
                    # Our value does not fit right after the contacted peer
                    # (its predecessor pointer was stale when the split chose
                    # it); walk towards the correct insertion point.
                    if redirect == previous_contact:
                        # A -> B -> A: both pointers are stale.  Give the ring
                        # a stabilization breather before following the cycle
                        # again instead of ping-ponging at network speed.
                        yield self.sim.timeout(self.config.stabilization_period / 4)
                    previous_contact = predecessor_address
                    predecessor_address = redirect
                    continue
                if response.get("state") == FREE:
                    if previous_contact is not None:
                        # A redirect (possibly served from a peer's stale
                        # redirect cache) pointed at a member that has since
                        # merged away.  Remember the dead target -- the next
                        # contact purges it from its cache and picks another
                        # route -- and fall back to the redirecting peer after
                        # a breather instead of giving up.
                        if predecessor_address not in dead_redirects:
                            dead_redirects.append(predecessor_address)
                        predecessor_address, previous_contact = previous_contact, None
                        yield self.sim.timeout(self.config.stabilization_period / 4)
                        continue
                    # The original contact peer is no longer a ring member;
                    # there is no point retrying through it.
                    self._set_state(FREE)
                    raise RuntimeError(
                        f"{self.address}: join contact {predecessor_address} left the ring"
                    )
                # The predecessor is busy (mid-insert or leaving): back off.
                yield self.sim.timeout(self.config.stabilization_period / 4)
                continue
            # Wait for the predecessor to finish the insert protocol and call
            # ``ring_join`` on us; re-try if it takes implausibly long (the
            # predecessor may have failed mid-protocol).
            wait = self.sim.timeout(self.config.join_ack_timeout * 2)
            yield self.sim.any_of([self._joined_event, wait])
        duration = self.sim.now - started
        self._record_op("ring_joined", value=self.value, duration=duration)
        return duration

    # ------------------------------------------------------------------ insertSucc
    def _handle_insert_successor(self, payload, request):
        """RPC: a new peer asks to be inserted as this peer's successor.

        Replies immediately with acceptance; the insert protocol itself runs as
        a background process so its latency (what Figures 19/20/23 measure) is
        not bounded by the RPC timeout.

        The request is accepted only if the new peer's value actually falls
        between this peer and its current first successor; otherwise the caller
        is redirected towards the correct position.  This matters because the
        Data Store split addresses the insert through a possibly stale
        predecessor pointer.
        """
        if self.state != JOINED:
            return {"accepted": False, "state": self.state}
        new_address = payload["address"]
        new_value = payload["value"]
        # The joiner reports redirect targets it found FREE: purge them so a
        # stale cache entry cannot send the next (or the same) joiner back to
        # a merged-away peer.
        bad_redirects = tuple(payload.get("bad_redirects") or ())
        for address in bad_redirects:
            self._cache_forget(address)
        successor = self._first_joined_entry()
        if (
            successor is not None
            and successor.address not in (self.address, new_address)
            and not in_open_interval(new_value, self.value, successor.value)
        ):
            if self.pred_address not in (None, self.address) and in_open_interval(
                new_value, self.pred_value, self.value
            ):
                redirect, redirect_value = self.pred_address, self.pred_value
            else:
                redirect, redirect_value = successor.address, successor.value
            self._record("join_redirect", 1.0)
            redirect = self._cached_redirect(
                new_address, new_value, redirect, redirect_value, bad_redirects
            )
            return {"accepted": False, "state": self.state, "redirect": redirect}
        self._record_op("init_insert_succ", new_peer=new_address, value=new_value)
        self.node.spawn(
            self._insert_protocol(new_address, new_value),
            name=f"insertSucc:{new_address}",
        )
        return {"accepted": True}

    def _insert_protocol(self, new_address: str, new_value: float):
        """Naive insertSucc: update the local list and hand off ring state.

        The joining peer becomes the first successor immediately; no other peer
        is told about it until normal stabilization propagates the information,
        which is exactly the window in which Section 4.2.1's anomaly occurs.
        """
        started = self.sim.now
        yield self.succ_lock.acquire_write()
        try:
            successor_view = [entry.copy() for entry in self.succ_list]
            entry = SuccessorEntry(new_address, new_value, JOINED, stabilized=True)
            self.succ_list.insert(0, entry)
            self._trim()
        finally:
            self.succ_lock.release_write()
        try:
            yield self.node.call(
                new_address,
                "ring_join",
                {
                    "succ_list": entries_to_wire(
                        successor_view[: self.config.successor_list_length]
                    ),
                    "pred_address": self.address,
                    "pred_value": self.value,
                },
            )
        except RpcError:
            # The new peer failed before joining; drop it from our list.
            yield self.succ_lock.acquire_write()
            self.succ_list = [e for e in self.succ_list if e.address != new_address]
            self.succ_lock.release_write()
            return
        duration = self.sim.now - started
        self._record("insert_succ", duration)
        self._record_op("insert_succ", new_peer=new_address, duration=duration)
        self._cache_record(new_address, new_value)
        self._fire_successor_changed(new_address)

    def _handle_join(self, payload, request):
        """RPC: the predecessor hands us our initial ring state; we are JOINED."""
        if self.state == JOINED:
            return {"ok": True, "duplicate": True}
        entries = entries_from_wire(payload["succ_list"])
        entries = [e for e in entries if e.address != self.address]
        if not entries:
            entries = [
                SuccessorEntry(payload["pred_address"], payload["pred_value"], JOINED, True)
            ]
        self.succ_list = entries[: self.config.successor_list_length]
        old_pred_addr, old_pred_val = self.pred_address, self.pred_value
        self.pred_address = payload["pred_address"]
        self.pred_value = payload["pred_value"]
        self._set_state(JOINED)
        self._record_op("ring_join", pred=self.pred_address, value=self.value)
        self._start_maintenance()
        self._fire_joined()
        self._fire_predecessor_changed(
            old_pred_addr, old_pred_val, self.pred_address, self.pred_value
        )
        if not self._joined_event.triggered:
            self._joined_event.succeed(self.address)
        return {"ok": True}

    # ------------------------------------------------------------------ leave
    def leave(self):
        """Naive leave (baseline): simply stop participating in the ring.

        No other peer is informed, so pointers to this peer dangle until the
        next stabilization round -- the availability reduction analysed in
        Section 5.1.  Returns the elapsed time (essentially zero).
        """
        started = self.sim.now
        self._set_state(FREE)
        self._record_op("ring_leave", naive=True)
        duration = self.sim.now - started
        self._record("leave", duration)
        return duration
        yield  # pragma: no cover - keeps this a generator like the PEPPER variant

    # ------------------------------------------------------------------ maintenance
    def _start_maintenance(self) -> None:
        if self._maintenance_started:
            return
        self._maintenance_started = True
        jitter = self.config.stabilization_jitter
        policy = self.config.maintenance_policy
        # Stabilization runs on the policy's maintenance cadence (a plain
        # period, or RTT-scaled under ``cadence="rtt_scaled"``); the two
        # ``ring_ping`` validation loops are paced by their controllers.
        self.node.every(
            policy.maintenance_interval(
                self.config.stabilization_period, self.node.network.observed_rtt
            ),
            self._stabilize_once,
            jitter=jitter,
            name="ring-stabilize",
        )
        self.node.every(
            self.config.predecessor_check_period,
            self._check_predecessor_once,
            jitter=jitter,
            name="ring-pred-check",
        )
        self.node.every(
            self._succ_cadence.interval,
            self._validate_successors_once,
            jitter=jitter,
            initial_delay=self.config.stabilization_period * 1.5,
            name="ring-succ-validate",
        )

    def stabilize_now(self) -> None:
        """Trigger an immediate, one-off stabilization round.

        If a round is already in progress, one more round is queued to run
        right after it (nudges must not be silently dropped -- the PEPPER
        protocols' latency depends on them).
        """
        if not self.is_joined:
            return
        if self._stabilizing:
            self._stabilize_pending = True
            return
        self.node.spawn(self._stabilize_once(), name="ring-stabilize-now")

    def _handle_nudge(self, payload, request):
        """RPC: a successor asks us to stabilize immediately.

        Used by the PEPPER protocols' proactive-predecessor optimisation
        (Section 4.3.1); harmless for the naive ring.
        """
        self.stabilize_now()
        return {"ok": True}

    def _stabilize_once(self):
        """One stabilization round: contact the first live successor, adopt its list."""
        if not self.is_joined or self._stabilizing:
            return
        self._stabilizing = True
        try:
            yield from self._stabilize_round()
            while self._stabilize_pending and self.is_joined:
                self._stabilize_pending = False
                yield from self._stabilize_round()
        finally:
            self._stabilizing = False
            self._stabilize_pending = False

    def _stabilize_round(self):
        while True:
            target = self._stabilization_target()
            if target is None:
                return
            try:
                response = yield self.node.call(
                    target.address,
                    "ring_stabilize",
                    {
                        "pred_address": self.address,
                        "pred_value": self.value,
                        "pred_state": self.state,
                    },
                    timeout=self.config.failure_detection_timeout,
                )
            except RpcError:
                # The successor is unreachable: drop it and try the next one.
                yield self.succ_lock.acquire_write()
                try:
                    self.succ_list = [
                        e for e in self.succ_list if e.address != target.address
                    ]
                finally:
                    self.succ_lock.release_write()
                self._cache_forget(target.address)
                self._confirmed_at.pop(target.address, None)
                self._succ_cadence.note_failure()
                self._record_op("successor_failure_detected", failed=target.address)
                continue
            except Interrupt:
                raise
            self._note_confirmed(target.address)
            yield from self._adopt(target, response)
            return

    def _handle_stabilize(self, payload, request):
        """RPC: a predecessor stabilizes with us; maybe adopt it, return our list."""
        if not self.is_joined:
            # A free (merged-away) or still-joining peer must not hand out ring
            # state; the caller treats the error as a failed successor and
            # drops the stale pointer.
            raise RuntimeError(f"{self.address} is not a ring member ({self.state})")
        self._note_heard_from(payload["pred_address"])
        if payload.get("pred_state") == JOINED:
            self._cache_record(payload["pred_address"], payload["pred_value"])
        self._consider_predecessor(payload["pred_address"], payload["pred_value"])
        reported_state = LEAVING if self.state == LEAVING else JOINED
        return {
            "value": self.value,
            "state": reported_state,
            "succ_list": entries_to_wire(self.succ_list),
        }

    def _handle_ping(self, payload, request):
        return {"value": self.value, "state": self.state}

    def _consider_predecessor(self, address: str, value: float) -> None:
        """Adopt ``address`` as predecessor if it is closer than the current one."""
        if address == self.address:
            return
        if self.pred_address == address:
            if value != self.pred_value:
                old_value = self.pred_value
                self.pred_value = value
                self._fire_predecessor_changed(address, old_value, address, value)
            return
        no_pred = self.pred_address is None or self.pred_address == self.address
        if no_pred or in_open_interval(value, self.pred_value, self.value):
            old_address, old_value = self.pred_address, self.pred_value
            self.pred_address = address
            self.pred_value = value
            if old_address is not None and old_address != address:
                # The displaced predecessor's liveness record is no longer
                # load-bearing (only the current pred's ping can be skipped).
                self._heard_from.pop(old_address, None)
            self._record_op("predecessor_changed", pred=address, pred_value=value)
            self._fire_predecessor_changed(old_address, old_value, address, value)

    def _check_predecessor_once(self):
        """Ping the predecessor; clear it if it stopped responding."""
        if not self.is_joined:
            return
        if self.pred_address in (None, self.address):
            return
        pred_address, pred_value = self.pred_address, self.pred_value
        if self._passive_window is not None:
            heard = self._heard_from.get(pred_address)
            if heard is not None and self.sim.now - heard <= self._passive_window:
                # The predecessor stabilized with us within the window: it is
                # alive, no ping needed.
                return
        gone = False
        try:
            response = yield self.node.call(
                pred_address,
                "ring_ping",
                {},
                timeout=self.config.failure_detection_timeout,
            )
            # A predecessor that merged away (FREE) or never finished joining
            # is no longer a ring member even though its process is alive.
            gone = response.get("state") in (FREE, JOINING)
        except RpcError:
            gone = True
        if not gone:
            self._note_confirmed(pred_address)
        if gone:
            self._cache_forget(pred_address)
            self._heard_from.pop(pred_address, None)
            self._confirmed_at.pop(pred_address, None)
            if self.pred_address != pred_address:
                return
            self.pred_address = None
            # Keep ``pred_value`` so the Data Store range stays put until a new
            # predecessor announces itself (at which point the range grows and
            # the Replication Manager revives the lost peer's items).
            self._record_op("predecessor_failure_detected", failed=pred_address)
            for listener in self.listeners:
                listener.on_predecessor_failed(self, pred_address, pred_value)

    def _validate_successors_once(self):
        """Drop successor-list entries that point at peers no longer in the ring.

        Stabilization only exercises the *first* live successor, so in small
        rings a pointer to a peer that merged away (state FREE) can keep
        circulating through adopted lists indefinitely.  Such zombie entries
        inflate the apparent ring size, steer replicas at non-members and delay
        the leave protocol's acknowledgements, so they are periodically pinged
        and removed.
        """
        if not self.is_joined:
            return
        targets = [
            entry.copy()
            for entry in self.succ_list
            if entry.state in (JOINED, LEAVING) and entry.address != self.address
        ]
        if targets and targets[0].state == JOINED:
            # The first live successor is exercised by stabilization anyway.
            targets = targets[1:]
        stale = []
        for entry in targets:
            if self._confirmed_recently(entry.address):
                # The entry proved itself alive within the freshness window
                # (a ping, a stabilization round, or it stabilized with us):
                # re-pinging it now would be pure redundant traffic.
                self._record("ring_ping_fresh_skip", 1.0)
                continue
            try:
                response = yield self.node.call(
                    entry.address,
                    "ring_ping",
                    {},
                    timeout=self.config.failure_detection_timeout,
                )
            except RpcError:
                stale.append(entry.address)
                continue
            if response.get("state") in (FREE, JOINING):
                stale.append(entry.address)
            else:
                self._note_confirmed(entry.address)
        if not stale:
            # An all-clear round (or nothing to check): the controller may
            # back off the next validation.
            self._succ_cadence.note_success()
            return
        self._succ_cadence.note_failure()
        for address in stale:
            self._cache_forget(address)
            self._confirmed_at.pop(address, None)
        yield self.succ_lock.acquire_write()
        try:
            self.succ_list = [e for e in self.succ_list if e.address not in stale]
        finally:
            self.succ_lock.release_write()
        self._record_op("successor_entries_pruned", pruned=stale)

    # ------------------------------------------------------------------ adoption
    def _adopt(self, contacted: SuccessorEntry, response) -> None:
        """Adopt the successor list returned by a stabilization round."""
        yield self.succ_lock.acquire_write()
        try:
            old_first = self._first_joined_address()
            head = SuccessorEntry(
                contacted.address,
                response["value"],
                response.get("state", JOINED),
                stabilized=True,
            )
            received = entries_from_wire(response["succ_list"])
            received = [e for e in received if e.address != self.address]
            received = [e for e in received if e.address != head.address]
            self._install_list(head, received)
            self._post_adopt()
            new_first = self._first_joined_address()
        finally:
            self.succ_lock.release_write()
        if self._redirect_cache is not None:
            # Members learned during stabilization are exactly the pointers a
            # stale-chain join needs: remember them for redirect answers --
            # and forget peers announced as LEAVING, so the cache never steers
            # a join at a peer about to merge away.
            for entry in (head, *received):
                if entry.state == JOINED:
                    self._cache_record(entry.address, entry.value)
                elif entry.state == LEAVING:
                    self._cache_forget(entry.address)
        if new_first is not None and new_first != old_first:
            self._fire_successor_changed(new_first)

    _STATE_RANK = {JOINING: 0, JOINED: 1, LEAVING: 2}

    def _install_list(self, head: SuccessorEntry, received: List[SuccessorEntry]) -> None:
        """Merge the successor's reported list into our own.

        * Entries are merged per address, keeping the most *advanced* state a
          peer's lifecycle allows (JOINING -> JOINED -> LEAVING), so a stale
          report from further along the ring can never downgrade knowledge the
          inserter or a direct predecessor obtained first-hand.
        * The merged list is kept sorted by clockwise distance from this peer,
          which is the ring-order invariant the paper's successor lists have by
          construction; it makes "position in the list" equal to "distance
          along the ring", which the PEPPER acknowledgement rules rely on.
        * Entries only we remember (e.g. a peer that our successor has already
          trimmed away) are retained; the periodic successor validation prunes
          them once they actually leave the ring.
        """
        self._last_received_addresses = {e.address for e in received}
        self._last_received_addresses.add(head.address)
        candidates = [head] + list(received) + [e.copy() for e in self.succ_list]
        best: dict[str, SuccessorEntry] = {}
        for entry in candidates:
            if entry.address == self.address:
                continue
            current = best.get(entry.address)
            if current is None:
                best[entry.address] = entry
                continue
            if self._STATE_RANK.get(entry.state, 1) > self._STATE_RANK.get(current.state, 1):
                best[entry.address] = SuccessorEntry(
                    entry.address, current.value, entry.state, current.stabilized
                )
        merged = sorted(best.values(), key=lambda e: self._clockwise_distance(e.value))
        self.succ_list = merged
        self._trim()

    def _clockwise_distance(self, value: float) -> float:
        """Clockwise distance from this peer's value to ``value`` on the ring."""
        span = self.config.key_space
        distance = (value - self.value) % span
        return distance if distance > 0 else span

    def _post_adopt(self) -> None:
        """Hook for the PEPPER ring's JOINING/LEAVING bookkeeping (no-op here)."""

    def _trim(self) -> None:
        """Bound the successor list to the configured length."""
        del self.succ_list[self.config.successor_list_length :]

    # ------------------------------------------------------------------ value updates
    def update_value(self, new_value: float) -> None:
        """Change this peer's ring value (used by Data Store redistribution).

        The new value propagates to neighbours through subsequent stabilization
        rounds.
        """
        self._record_op("value_changed", old=self.value, new=new_value)
        self._set_value(new_value)

    # ------------------------------------------------------------------ event firing
    def _fire_joined(self) -> None:
        for listener in self.listeners:
            listener.on_joined(self)

    def _fire_predecessor_changed(self, old_addr, old_val, new_addr, new_val) -> None:
        for listener in self.listeners:
            listener.on_predecessor_changed(self, old_addr, old_val, new_addr, new_val)

    def _fire_successor_changed(self, new_address: str) -> None:
        # Membership moved right next to us: validate at the base cadence
        # again until the neighbourhood proves stable.
        self._succ_cadence.note_change()
        for listener in self.listeners:
            listener.on_successor_changed(self, new_address)
