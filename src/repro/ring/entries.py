"""Successor-list entries and peer states.

The paper's ring maintains, at every peer, a ``succList`` of pointers to the
next peers clockwise around the ring, and (for the PEPPER protocols) a parallel
``stateList`` recording whether each pointed-to peer is JOINING, JOINED or
LEAVING, plus a per-pointer *stabilized* flag.  We fold the two lists into a
single list of :class:`SuccessorEntry` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

# Peer / pointer states (Section 4.3.1 and 5.1 of the paper).
JOINING = "JOINING"  # being inserted; pointers to it may be inconsistent
JOINED = "JOINED"  # fully part of the ring
LEAVING = "LEAVING"  # announced departure (merge); predecessors lengthen lists
INSERTING = "INSERTING"  # a peer currently running insertSucc for a new successor
FREE = "FREE"  # not part of the ring (free peers of the P-Ring Data Store)


@dataclass
class SuccessorEntry:
    """One pointer in a peer's successor list."""

    address: str
    value: float
    state: str = JOINED
    stabilized: bool = False

    def copy(self) -> "SuccessorEntry":
        """Return an independent copy of this entry."""
        return SuccessorEntry(self.address, self.value, self.state, self.stabilized)

    def to_wire(self) -> Dict[str, Any]:
        """Serialise for inclusion in an RPC payload."""
        return {
            "address": self.address,
            "value": self.value,
            "state": self.state,
        }

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "SuccessorEntry":
        """Reconstruct an entry received over the network (never stabilized)."""
        return SuccessorEntry(
            address=data["address"],
            value=data["value"],
            state=data.get("state", JOINED),
            stabilized=False,
        )


def entries_to_wire(entries: Iterable[SuccessorEntry]) -> List[Dict[str, Any]]:
    """Serialise a successor list for an RPC payload."""
    return [entry.to_wire() for entry in entries]


def entries_from_wire(data: Iterable[Dict[str, Any]]) -> List[SuccessorEntry]:
    """Deserialise a successor list received over the network."""
    return [SuccessorEntry.from_wire(item) for item in data]
