"""Cluster-level facade: a whole simulated P-Ring deployment.

:class:`PRingIndex` owns the simulator, network, free-peer pool, metrics and
history recorder, and exposes the P2P Index API of Figure 1 at cluster level:

* ``insert_item`` / ``delete_item`` -- routed to the responsible peer;
* ``range_query`` -- issued through a serve-layer
  :class:`~repro.serve.client.QueryClient` under a ``routing=`` policy
  (``primary`` | ``replica_lb`` | ``cached``);
* ``add_peer`` (arrives as a free peer), ``fail_peer``, and time control.

Everything inside the cluster still happens through simulated messages between
peers; the facade only provides convenient entry points for examples, tests and
the experiment harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.correctness import QueryRecord, ReachabilityAudit, audit_reachability
from repro.core.histories import HistoryRecorder
from repro.datastore.maintenance import FreePeerPool
from repro.datastore.rebalance import GlobalRebalancer
from repro.harness.metrics import Metrics
from repro.index.config import IndexConfig, default_config
from repro.index.membership import MembershipIndex
from repro.index.peer import IndexPeer
from repro.serve.client import QueryClient
from repro.serve.tracker import InFlightTracker
from repro.sim.engine import SimulationError
from repro.transport import RpcError, make_transport


class PRingIndex:
    """A deployment of the index with the configured protocols.

    The execution substrate -- clock, message plane, RNG streams -- comes
    from the configured transport (``config.transport``): the seeded
    discrete-event simulator by default, or real asyncio sockets on
    localhost.  Everything above this composition root is substrate-blind.
    """

    def __init__(self, config: Optional[IndexConfig] = None):
        self.config = config or default_config()
        self.config.validate()
        self.metrics = Metrics()
        # The network observes intra- vs cross-site latency into the shared
        # collector when the configured latency model is site-aware.
        self.transport = make_transport(self.config, metrics=self.metrics)
        self.sim = self.transport.clock
        self.rngs = self.transport.rngs
        self.network = self.transport.network
        self.history = HistoryRecorder(self.sim)
        # Per-peer in-flight RPC accounting, fed by the transport's observer
        # hooks; the serve layer's replica_lb routing balances on it and the
        # harness reports its read-load variance.  Always on: the hooks cost
        # two dict operations per RPC.
        self.serve_tracker = InFlightTracker()
        self.network.observer = self.serve_tracker
        self.pool = FreePeerPool(self.sim, self.network, address="pool")
        self.peers: Dict[str, IndexPeer] = {}
        # Incrementally maintained live/free/ring-member sets: updated by ring
        # state transitions and failure hooks, never by rescanning ``peers``.
        self.membership = MembershipIndex()
        self.query_records: List[QueryRecord] = []
        # QueryClients by (entry address, routing, consistency): the cached
        # policy's result cache lives on the client, so reuse matters.
        self._clients: Dict[tuple, QueryClient] = {}
        self._next_peer = 0
        self._bootstrapped = False
        # Optional background coordinator harvesting FREE peers (off unless
        # the configuration enables it; see docs/ARCHITECTURE.md).
        self.rebalancer: Optional[GlobalRebalancer] = None
        if self.config.rebalance_enabled:
            self.rebalancer = GlobalRebalancer(
                sim=self.sim,
                network=self.network,
                membership=self.membership,
                pool_address=self.pool.address,
                config=self.config,
                metrics=self.metrics,
                history=self.history,
            )

    # ------------------------------------------------------------------ peers
    def _new_address(self) -> str:
        self._next_peer += 1
        return f"peer{self._next_peer:03d}"

    def _make_peer(self, value: float) -> IndexPeer:
        address = self._new_address()
        peer = IndexPeer(
            sim=self.sim,
            network=self.network,
            address=address,
            value=value,
            config=self.config,
            rng=self.rngs.stream(f"peer:{address}"),
            pool_address=self.pool.address,
            metrics=self.metrics,
            history=self.history,
        )
        self.peers[address] = peer
        self.membership.track(peer)
        return peer

    @property
    def bootstrapped(self) -> bool:
        """Whether the first peer has been created."""
        return self._bootstrapped

    def bootstrap(self) -> IndexPeer:
        """Create the first peer (owning the whole key space)."""
        if self._bootstrapped:
            raise SimulationError("the index is already bootstrapped")
        peer = self._make_peer(value=self.config.key_space)
        peer.bootstrap_first()
        self._bootstrapped = True
        return peer

    def add_peer(self) -> IndexPeer:
        """Add a new peer to the system as a *free* peer.

        Free peers enter the ring when a Data Store split needs them, exactly
        as in P-Ring; the experiments add peers at the paper's rate of one
        every three seconds.
        """
        if not self._bootstrapped:
            return self.bootstrap()
        peer = self._make_peer(value=0.0)
        self.pool.add(peer.address)
        return peer

    def fail_peer(self, address: str) -> None:
        """Fail-stop the peer at ``address``."""
        peer = self.peers[address]
        peer.fail()

    def live_peers(self) -> List[IndexPeer]:
        """All peers that have not failed."""
        return self.membership.live_peers()

    def ring_members(self) -> List[IndexPeer]:
        """All live peers currently part of the ring, in ring-value order."""
        return self.membership.ring_members()

    def free_peers(self) -> List[IndexPeer]:
        """All live peers currently outside the ring."""
        return self.membership.free_peers()

    def peer_for_key(self, key: float) -> Optional[IndexPeer]:
        """The ring member currently responsible for ``key`` (by direct inspection)."""
        candidate = self.membership.member_for_key(key)
        if candidate is not None and candidate.store.owns_key(key):
            return candidate
        # Data Store ranges trail ring values while splits/failures propagate;
        # fall back to inspecting every member during those windows.
        for peer in self.ring_members():
            if peer.store.owns_key(key):
                return peer
        return None

    def total_stored_items(self) -> int:
        """Total number of items across all live Data Stores."""
        return sum(peer.store.item_count() for peer in self.ring_members())

    def reachability(self) -> ReachabilityAudit:
        """Scan-vs-store audit: which stored copies a full scan would return.

        ``items_reachable == items_stored`` is the deployment's first-class
        correctness gate: any gap means some copy is stranded outside its
        holder's range (usually by a half-completed split) and no range query
        can ever return it.
        """
        return audit_reachability(self.ring_members())

    def split_pressure(self) -> bool:
        """Whether more ring growth is still pending.

        True while some member's Data Store is overflowed with a *feasible*
        split (see :meth:`StorageBalancer.split_feasible`) and a free peer is
        available to absorb it -- i.e. the split cascade has not finished, it
        is merely between protocol rounds.  The phase executor's quiescence
        condition uses this so a lull between split bursts (splits are paced
        by periodic balancer checks) is not mistaken for a settled
        deployment.  An overflow made of ring-stranded items (a boundary
        moved since they arrived) is deliberately *not* pressure: no split
        can ever service it.
        """
        if not self.membership.free_peers():
            return False
        threshold = self.config.overflow_threshold
        return any(
            peer.store.item_count() > threshold and peer.balancer.split_feasible()
            for peer in self.membership.ring_members()
        )

    # ------------------------------------------------------------------ time control
    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def run_process(self, generator, timeout: float = 600.0):
        """Run a simulated process to completion and return its value."""
        return self.sim.run_process(generator, timeout=timeout)

    def shutdown(self) -> None:
        """Release transport resources (sockets, loops).  Idempotent.

        A no-op for the simulated transport; required after asyncio runs so
        repeated deployments in one process don't leak file descriptors.
        """
        self.transport.shutdown()

    # ------------------------------------------------------------------ index API
    def _entry_peer(self, via: Optional[str] = None) -> IndexPeer:
        if via is not None:
            peer = self.peers[via]
            if peer.alive:
                return peer
        peer = self.membership.first_member()
        if peer is None:
            raise SimulationError("no live ring members to route through")
        return peer

    def insert_item(self, skv: float, payload=None, via: Optional[str] = None):
        """Generator: insert ``(skv, payload)`` through peer ``via`` (or any member)."""
        peer = self._entry_peer(via)
        self.history.record("index_insert_item", peer=peer.address, skv=skv)
        stored = False
        for _attempt in range(8):
            target = yield from peer.router.find_responsible(skv)
            if target is None:
                yield self.sim.timeout(0.25)
                continue
            try:
                response = yield peer.call(
                    target, "ds_store_item", {"item": {"skv": skv, "payload": payload}}
                )
            except RpcError:
                yield self.sim.timeout(0.1)
                continue
            if response.get("stored"):
                stored = True
                break
            yield self.sim.timeout(0.1)
        self.history.record(
            "index_insert_done", peer=peer.address, skv=skv, stored=stored
        )
        return stored

    def delete_item(self, skv: float, via: Optional[str] = None):
        """Generator: delete the item with key ``skv``."""
        peer = self._entry_peer(via)
        self.history.record("index_delete_item", peer=peer.address, skv=skv)
        removed = False
        responsible = None
        for _attempt in range(8):
            responsible = yield from peer.router.find_responsible(skv)
            if responsible is None:
                yield self.sim.timeout(0.25)
                continue
            try:
                response = yield peer.call(responsible, "ds_remove_item", {"skv": skv})
            except RpcError:
                yield self.sim.timeout(0.1)
                continue
            if response.get("removed") or response.get("reason") == "not_responsible":
                removed = response.get("removed", False)
                if removed:
                    break
            yield self.sim.timeout(0.1)
        if removed and responsible is not None:
            owner = self.peers.get(responsible)
            if owner is not None and owner.alive:
                owner.replication.propagate_delete(skv)
        self.history.record("index_delete_done", peer=peer.address, skv=skv, removed=removed)
        return removed

    def query_client(
        self,
        routing: str = "primary",
        consistency: str = "strong",
        via: Optional[str] = None,
    ) -> QueryClient:
        """The :class:`QueryClient` for an entry peer and routing policy.

        Clients are cached per ``(entry peer, routing, consistency)`` so the
        ``cached`` policy's result cache survives across queries issued
        through the same entry point.
        """
        peer = self._entry_peer(via)
        key = (peer.address, routing, consistency)
        client = self._clients.get(key)
        if client is None or not client.peer.alive:
            client = QueryClient(
                peer,
                routing=routing,
                consistency=consistency,
                tracker=self.serve_tracker,
                metrics=self.metrics,
            )
            self._clients[key] = client
        return client

    def range_query(
        self,
        lb: float,
        ub: float,
        via: Optional[str] = None,
        timeout: float = 60.0,
        routing: str = "primary",
        consistency: str = "strong",
    ):
        """Generator: evaluate ``(lb, ub]`` under ``routing`` and record it for checking."""
        client = self.query_client(routing=routing, consistency=consistency, via=via)
        result = yield from client.query(lb, ub, timeout=timeout)
        self.query_records.append(
            QueryRecord(
                lb=lb,
                ub=ub,
                start_time=result["start_time"],
                end_time=result["end_time"],
                result_keys=result["keys"],
            )
        )
        return result

    # ------------------------------------------------------------------ convenience (blocking wrappers)
    def insert_item_now(self, skv: float, payload=None, via: Optional[str] = None) -> bool:
        """Insert an item and advance the simulation until it completes."""
        return self.run_process(self.insert_item(skv, payload, via=via))

    def delete_item_now(self, skv: float, via: Optional[str] = None) -> bool:
        """Delete an item and advance the simulation until it completes."""
        return self.run_process(self.delete_item(skv, via=via))

    def range_query_now(
        self,
        lb: float,
        ub: float,
        via: Optional[str] = None,
        timeout: float = 60.0,
        routing: str = "primary",
        consistency: str = "strong",
    ):
        """Run a range query and advance the simulation until it completes."""
        return self.run_process(
            self.range_query(
                lb, ub, via=via, timeout=timeout, routing=routing, consistency=consistency
            )
        )
