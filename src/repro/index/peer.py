"""One peer of the P2P index: the composition of all framework components.

An :class:`IndexPeer` is a simulated node (Section 2.1's peer) carrying the
full indexing framework stack of Section 2.2:

* a Fault Tolerant Ring (:class:`~repro.core.pepper_ring.PepperRing`, which
  degrades to the naive Chord protocols when the corresponding configuration
  flags are off);
* a Data Store with the storage balancer (split / merge / redistribute);
* a CFS-style Replication Manager with the extra-hop protocol;
* a Content Router;
* the range-query engine (scanRange and the naive application-level scan);
* the serve handlers (``serve_meta`` / ``serve_read``), the peer side of the
  serve layer's :class:`~repro.serve.client.QueryClient`.

Peers are created as *free peers* (not in the ring, no range); they are pulled
into the ring either by bootstrapping (the first peer) or by Data Store splits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pepper_ring import PepperRing
from repro.core.scan_range import RangeQueryEngine
from repro.datastore.maintenance import StorageBalancer
from repro.datastore.store import DataStore
from repro.index.config import IndexConfig
from repro.replication.cfs import ReplicationManager
from repro.ring.chord import ChordRing
from repro.router import make_router
from repro.serve.handlers import ServeHandler
from repro.transport import Endpoint


class IndexPeer(Endpoint):
    """A full index peer (ring + data store + replication + router + queries)."""

    def __init__(
        self,
        sim,
        network,
        address: str,
        value: float,
        config: IndexConfig,
        rng,
        pool_address: Optional[str] = None,
        metrics=None,
        history=None,
    ):
        super().__init__(sim, network, address, rng=rng)
        self.config = config
        self.metrics = metrics
        self.history = history

        ring_class = PepperRing if (config.consistent_insert or config.safe_leave) else ChordRing
        self.ring = ring_class(self, value, config, metrics=metrics, history=history)
        self.store = DataStore(self, self.ring, config, metrics=metrics, history=history)
        self.replication = ReplicationManager(
            self, self.ring, self.store, config, metrics=metrics, history=history
        )
        self.router = make_router(
            self, self.ring, self.store, config, metrics=metrics, history=history
        )
        self.balancer = StorageBalancer(
            self,
            self.ring,
            self.store,
            self.replication,
            config,
            pool_address,
            router=self.router,
            metrics=metrics,
            history=history,
        )
        self.queries = RangeQueryEngine(
            self, self.ring, self.store, self.router, config, metrics=metrics, history=history
        )
        self.serve = ServeHandler(
            self, self.ring, self.store, self.replication, config, metrics=metrics
        )
        # Keep the balancer informed of deletions racing with in-flight splits.
        self._original_remove_local = self.store.remove_local
        self.store.remove_local = self._remove_local_with_split_tracking

    # ------------------------------------------------------------------ helpers
    def _remove_local_with_split_tracking(self, skv, reason: str = "delete"):
        item = self._original_remove_local(skv, reason=reason)
        if item is not None and reason == "delete":
            # Only genuine client deletions need forwarding to the new peer of
            # an in-flight split; internal movements (shed/merge/redistribute)
            # must not be mistaken for deletions.
            self.balancer.note_local_delete(skv)
        return item

    @property
    def value(self) -> float:
        """The peer's current ring value (upper bound of its range)."""
        return self.ring.value

    @property
    def in_ring(self) -> bool:
        """Whether this peer is currently a ring member."""
        return self.alive and self.ring.is_joined

    @property
    def is_free(self) -> bool:
        """Whether this peer is currently a free peer (alive but not in the ring)."""
        return self.alive and not self.ring.is_joined

    def item_keys(self):
        """Keys of the items currently in this peer's Data Store."""
        return self.store.items.keys()

    # ------------------------------------------------------------------ bootstrap
    def bootstrap_first(self) -> None:
        """Make this peer the first (and only) member of the system."""
        self.ring.create()
        self.store.activate_first(self.ring.value)

    # ------------------------------------------------------------------ failure hooks
    def on_failed(self) -> None:
        if self.ring.membership is not None:
            self.ring.membership.peer_gone(self)
        if self.history is not None:
            self.history.record("peer_failed", peer=self.address)

    def on_departed(self) -> None:
        if self.ring.membership is not None:
            self.ring.membership.peer_gone(self)
        if self.history is not None:
            self.history.record("peer_departed", peer=self.address)
