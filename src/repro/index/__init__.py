"""P2P Index layer: configuration, per-peer composition and the cluster facade.

Attribute access is lazy so that low-level packages (ring, data store,
replication) can import :mod:`repro.index.config` without dragging in the
peer/cluster modules that depend on them.

Layer contract: :mod:`repro.index.config` is the *shared tunables* module --
it imports only :mod:`repro.sim` and :mod:`repro.maintenance` and may be
imported by every protocol layer.  The rest of the package composes the full
stack: :class:`IndexPeer` wires ring + datastore + replication + router +
queries into one node, :class:`~repro.index.membership.MembershipIndex`
maintains the incremental live/free/ring-member sets (fed exclusively by the
ring's ``_set_state``/``_set_value`` hooks and the peer failure hooks -- see
``docs/ARCHITECTURE.md``), and :class:`PRingIndex` is the cluster facade the
harness, examples and tests drive.  Nothing below the harness may import
``peer``/``pring``.
"""

from typing import TYPE_CHECKING

__all__ = ["IndexConfig", "IndexPeer", "PRingIndex", "default_config"]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.index.config import IndexConfig, default_config
    from repro.index.peer import IndexPeer
    from repro.index.pring import PRingIndex


def __getattr__(name):
    if name in ("IndexConfig", "default_config"):
        from repro.index import config

        return getattr(config, name)
    if name == "IndexPeer":
        from repro.index.peer import IndexPeer

        return IndexPeer
    if name == "PRingIndex":
        from repro.index.pring import PRingIndex

        return PRingIndex
    raise AttributeError(f"module 'repro.index' has no attribute {name!r}")
