"""P2P Index layer: configuration, per-peer composition and the cluster facade.

Attribute access is lazy so that low-level packages (ring, data store,
replication) can import :mod:`repro.index.config` without dragging in the
peer/cluster modules that depend on them.
"""

from typing import TYPE_CHECKING

__all__ = ["IndexConfig", "IndexPeer", "PRingIndex", "default_config"]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.index.config import IndexConfig, default_config
    from repro.index.peer import IndexPeer
    from repro.index.pring import PRingIndex


def __getattr__(name):
    if name in ("IndexConfig", "default_config"):
        from repro.index import config

        return getattr(config, name)
    if name == "IndexPeer":
        from repro.index.peer import IndexPeer

        return IndexPeer
    if name == "PRingIndex":
        from repro.index.pring import PRingIndex

        return PRingIndex
    raise AttributeError(f"module 'repro.index' has no attribute {name!r}")
