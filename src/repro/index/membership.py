"""Incrementally maintained membership index for a simulated deployment.

The cluster facade used to answer ``ring_members()`` / ``free_peers()`` /
``peer_for_key()`` by rescanning every peer ever created -- O(peers) per call,
invoked from the churn scheduler, the figure sweeps and every metrics
snapshot.  Past ~1000 peers those scans dominate the harness.

:class:`MembershipIndex` replaces the scans with sets that are updated *at the
moment membership changes*:

* the ring layer notifies it on every ring **state transition**
  (FREE/JOINING/JOINED/INSERTING/LEAVING, see :mod:`repro.ring.entries`) and
  every ring **value change** (Data Store redistribution) through the
  ``membership`` hook on :class:`~repro.ring.chord.ChordRing`;
* the peer notifies it on failure / graceful departure
  (:meth:`IndexPeer.on_failed` / :meth:`IndexPeer.on_departed`).

Ring members are additionally kept in a list sorted by ``(ring value,
address)`` via :mod:`bisect`, so "members in ring order" and "the member
responsible for a key" are O(1) / O(log n) instead of a scan plus a sort.

Invariant (enforced by ``tests/test_membership_invariants.py`` after every
step of a randomized churn schedule): the incremental sets equal a
from-scratch rescan of all peers, the sorted view is strictly ordered, and no
failed peer is ever reported as a ring member.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.ring.entries import INSERTING, JOINED, JOINING, LEAVING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.peer import IndexPeer

# Ring states that make a live peer a ring member (mirrors ``ChordRing.is_joined``).
_MEMBER_STATES = frozenset((JOINED, INSERTING, LEAVING))

# Ring states of a peer mid-way through entering the ring (a join or a split's
# insert still in flight) -- what the phase executor's quiescence condition
# watches (:meth:`MembershipIndex.in_flight_count`).
_IN_FLIGHT_STATES = frozenset((JOINING, INSERTING))


class MembershipIndex:
    """Live/free/ring-member sets updated on join, split, leave and failure."""

    def __init__(self):
        # All three map address -> peer and preserve insertion order; a peer is
        # in exactly one of ``_free`` / ``_members`` while it is in ``_live``.
        self._live: Dict[str, "IndexPeer"] = {}
        self._free: Dict[str, "IndexPeer"] = {}
        self._members: Dict[str, "IndexPeer"] = {}
        # Ring members sorted by (ring value, address); ``_member_value``
        # remembers the value each sorted entry was filed under so a member can
        # be removed in O(log n) even while its value is being updated.
        self._sorted: List[tuple] = []
        self._member_value: Dict[str, float] = {}
        # Quiescence bookkeeping: peers currently JOINING/INSERTING, plus a
        # monotonic stamp bumped on *every* membership change so "nothing
        # happened for T seconds" is one integer comparison per poll.
        self._in_flight: Dict[str, "IndexPeer"] = {}
        self.transition_count: int = 0

    # ------------------------------------------------------------------ update hooks
    def track(self, peer: "IndexPeer") -> None:
        """Start tracking a newly created peer and hook into its ring."""
        peer.ring.membership = self
        self.transition_count += 1
        if peer.ring.state in _IN_FLIGHT_STATES:
            self._in_flight[peer.address] = peer
        self._live[peer.address] = peer
        if peer.ring.state in _MEMBER_STATES:
            self._enter_ring(peer)
        else:
            self._free[peer.address] = peer

    def ring_state_changed(self, peer: "IndexPeer", old_state: str, new_state: str) -> None:
        """Ring layer hook: the peer's lifecycle state transitioned."""
        if peer.address not in self._live:
            return  # a failed peer's ring can no longer change its membership
        self.transition_count += 1
        if new_state in _IN_FLIGHT_STATES:
            self._in_flight[peer.address] = peer
        else:
            self._in_flight.pop(peer.address, None)
        was_member = old_state in _MEMBER_STATES
        is_member = new_state in _MEMBER_STATES
        if was_member == is_member:
            return
        if is_member:
            self._free.pop(peer.address, None)
            self._enter_ring(peer)
        else:
            self._leave_ring(peer.address)
            self._free[peer.address] = peer

    def ring_value_changed(self, peer: "IndexPeer", old_value: float, new_value: float) -> None:
        """Ring layer hook: the peer's ring value moved (redistribution)."""
        if peer.address not in self._members:
            return
        self._remove_sorted(peer.address)
        self._insert_sorted(peer.address, new_value)

    def peer_gone(self, peer: "IndexPeer") -> None:
        """The peer failed or departed: drop it from every set."""
        self.transition_count += 1
        self._live.pop(peer.address, None)
        self._free.pop(peer.address, None)
        self._in_flight.pop(peer.address, None)
        self._leave_ring(peer.address)

    def in_flight_count(self) -> int:
        """Live peers currently mid-way into the ring (JOINING/INSERTING).

        Together with :attr:`transition_count` this is the quiescence signal:
        a deployment is quiescent over a window when no peer was in flight and
        the stamp did not move for its whole length.
        """
        return len(self._in_flight)

    # ------------------------------------------------------------------ internals
    def _enter_ring(self, peer: "IndexPeer") -> None:
        self._members[peer.address] = peer
        self._insert_sorted(peer.address, peer.ring.value)

    def _leave_ring(self, address: str) -> None:
        if self._members.pop(address, None) is not None:
            self._remove_sorted(address)

    def _insert_sorted(self, address: str, value: float) -> None:
        bisect.insort(self._sorted, (value, address))
        self._member_value[address] = value

    def _remove_sorted(self, address: str) -> None:
        value = self._member_value.pop(address)
        index = bisect.bisect_left(self._sorted, (value, address))
        del self._sorted[index]

    # ------------------------------------------------------------------ queries
    def live_peers(self) -> List["IndexPeer"]:
        """All peers that have not failed (creation order)."""
        return list(self._live.values())

    def free_peers(self) -> List["IndexPeer"]:
        """All live peers currently outside the ring (creation order)."""
        return list(self._free.values())

    def ring_members(self) -> List["IndexPeer"]:
        """All live ring members, sorted by (ring value, address)."""
        members = self._members
        return [members[address] for _value, address in self._sorted]

    def first_member(self) -> Optional["IndexPeer"]:
        """The longest-standing current ring member, or ``None``.

        Used as the default entry point for routed operations: the oldest
        member has the most-refreshed routing table (a freshly split-in peer
        has an empty one until its first refresh period elapses), so routing
        through it keeps hop counts at their steady-state level.
        """
        for peer in self._members.values():
            return peer
        return None

    def member_for_key(self, key: float) -> Optional["IndexPeer"]:
        """The member whose range ``(pred.value, own.value]`` should hold ``key``.

        Ranges follow ring values: a member owns the keys up to and including
        its own value, starting after its predecessor's, and the member with
        the smallest value also covers the wrap-around arm (keys above the
        largest value and at or below the smallest).
        """
        if not self._sorted:
            return None
        index = bisect.bisect_left(self._sorted, (key, ""))
        if index == len(self._sorted):
            index = 0  # wrapped: the smallest-value member owns the top arm
        return self._members[self._sorted[index][1]]
