"""Configuration of a simulated P-Ring deployment.

One :class:`IndexConfig` instance describes both the *system parameters* the
paper sweeps in its evaluation (successor-list length, ring stabilization
period, storage factor, replication factor) and the *protocol selection flags*
that switch between the paper's PEPPER protocols and the naive baselines of
Section 6.2.  Every experiment runs both configurations on the same substrate
by flipping the flags only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.maintenance.policy import FIXED_MAINTENANCE, MaintenancePolicy
from repro.sim.engine import ENGINE_NAMES
from repro.sim.network import NetworkConfig
from repro.transport.api import TRANSPORT_NAMES


@dataclass
class IndexConfig:
    """All tunables of a simulated deployment.

    Defaults follow Section 6.1 of the paper: successor list length 4,
    stabilization period 4 s, storage factor 5 (peers hold 5--10 items),
    replication factor 6.
    """

    # --- Fault Tolerant Ring ------------------------------------------------
    successor_list_length: int = 4
    stabilization_period: float = 4.0
    stabilization_jitter: float = 0.5
    predecessor_check_period: float = 4.0
    failure_detection_timeout: float = 0.5

    # --- Data Store -----------------------------------------------------------
    storage_factor: int = 5
    key_space: float = 10_000.0
    # Stranded-item shed: the balancer's periodic check routes copies that sit
    # below the peer's effective ring boundary (left behind by half-completed
    # splits, invisible to scanRange) back to their responsible owner, and only
    # drops the local copy after a version-checked store ack.  On by default --
    # it is what keeps ``items_reachable == items_stored``.
    shed_stranded: bool = True

    # --- Global rebalancer ------------------------------------------------------
    # A background coordinator that harvests FREE peers by bulk-moving key
    # ranges off loaded ring members (move-then-delete; see
    # docs/ARCHITECTURE.md "Shed and rebalance").  Off by default: only the
    # saturation-scale cells enable it.
    rebalance_enabled: bool = False
    rebalance_period: float = 8.0  # base cadence between rebalancer rounds
    rebalance_backoff_max: float = 8.0  # idle rounds back off up to base*this
    rebalance_batch: int = 16  # max range moves attempted per round

    # --- Replication Manager ---------------------------------------------------
    replication_factor: int = 6
    replication_refresh_period: float = 4.0

    # --- Content Router ----------------------------------------------------------
    router: str = "hierarchical"  # "hierarchical" or "linear"
    router_refresh_period: float = 4.0
    router_table_size: int = 16

    # --- Protocol selection (paper vs. naive baselines, Section 6.2) -------------
    consistent_insert: bool = True  # PEPPER insertSucc vs. naive insertSucc
    use_scan_range: bool = True  # scanRange vs. application-level naive scan
    safe_leave: bool = True  # availability-preserving leave vs. naive leave
    extra_hop_replication: bool = True  # replicate-to-additional-hop vs. nothing
    proactive_nudge: bool = True  # Section 4.3.1 optimization: poke predecessors

    # --- Maintenance adaptivity ---------------------------------------------------
    # ``None`` keeps the historical fixed-timer behaviour; scenario specs
    # resolve a MaintenanceSpec into a validated policy here (exactly as a
    # LatencySpec resolves into ``network.latency_model``).
    maintenance: Optional[MaintenancePolicy] = None

    # --- Simulation substrate ---------------------------------------------------
    network: NetworkConfig = field(default_factory=NetworkConfig)
    seed: int = 0
    # Event-engine selection: "heap" (binary heap, the default) or "wheel"
    # (hierarchical timer wheel with record recycling).  Both honor the same
    # determinism contract; the REPRO_ENGINE environment variable overrides
    # this field for every deployment in the process (the CI parity knob).
    engine: str = "heap"
    # Transport selection: "sim" (the discrete-event substrate above, the
    # default) or "asyncio" (real UDP sockets on localhost with wall-clock
    # periods).  The REPRO_TRANSPORT environment variable overrides this
    # field, mirroring REPRO_ENGINE.  ``engine`` only applies under "sim".
    transport: str = "sim"

    # --- derived / helpers -------------------------------------------------------
    @property
    def overflow_threshold(self) -> int:
        """A Data Store overflows when it holds more than ``2 * sf`` items."""
        return 2 * self.storage_factor

    @property
    def underflow_threshold(self) -> int:
        """A Data Store underflows when it holds fewer than ``sf`` items."""
        return self.storage_factor

    @property
    def maintenance_policy(self) -> MaintenancePolicy:
        """The effective maintenance policy (the fixed one unless configured)."""
        return self.maintenance if self.maintenance is not None else FIXED_MAINTENANCE

    @property
    def join_ack_timeout(self) -> float:
        """How long an inserting peer waits before re-nudging predecessors."""
        return max(2 * self.stabilization_period, 1.0)

    @property
    def leave_ack_timeout(self) -> float:
        """Safety net for the availability-preserving leave in tiny rings."""
        return self.stabilization_period * (self.successor_list_length + 2)

    def validate(self) -> None:
        """Raise ``ValueError`` for nonsensical parameter combinations."""
        if self.successor_list_length < 1:
            raise ValueError("successor_list_length must be >= 1")
        if self.stabilization_period <= 0:
            raise ValueError("stabilization_period must be positive")
        if self.storage_factor < 1:
            raise ValueError("storage_factor must be >= 1")
        if self.replication_factor < 0:
            raise ValueError("replication_factor must be >= 0")
        if self.key_space <= 0:
            raise ValueError("key_space must be positive")
        if self.rebalance_period <= 0:
            raise ValueError("rebalance_period must be positive")
        if self.rebalance_backoff_max < 1.0:
            raise ValueError("rebalance_backoff_max must be >= 1")
        if self.rebalance_batch < 1:
            raise ValueError("rebalance_batch must be >= 1")
        if self.router not in ("hierarchical", "linear"):
            raise ValueError(f"unknown router {self.router!r}")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINE_NAMES)}"
            )
        if self.transport not in TRANSPORT_NAMES:
            raise ValueError(
                f"unknown transport {self.transport!r}; known: {', '.join(TRANSPORT_NAMES)}"
            )
        if self.maintenance is not None:
            self.maintenance.validate()
        self.network.validate()

    def with_naive_protocols(self) -> "IndexConfig":
        """Return a copy using every naive baseline from Section 6.2."""
        return replace(
            self,
            consistent_insert=False,
            use_scan_range=False,
            safe_leave=False,
            extra_hop_replication=False,
            proactive_nudge=False,
        )

    def with_pepper_protocols(self) -> "IndexConfig":
        """Return a copy with all of the paper's protocols enabled."""
        return replace(
            self,
            consistent_insert=True,
            use_scan_range=True,
            safe_leave=True,
            extra_hop_replication=True,
            proactive_nudge=True,
        )

    def copy(self, **overrides) -> "IndexConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


def default_config(seed: int = 0, **overrides) -> IndexConfig:
    """Convenience factory mirroring the paper's Section 6.1 defaults."""
    config = IndexConfig(seed=seed)
    if overrides:
        config = config.copy(**overrides)
    config.validate()
    return config
