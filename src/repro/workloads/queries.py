"""Range-query workload generation.

Figure 21 buckets range searches by the number of ring hops they take, so the
generator here can aim a query at a desired hop count by sizing the queried
interval relative to the average per-peer range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


def range_for_hops(
    hops: int,
    peer_values: Sequence[float],
    key_space: float,
    rng: random.Random,
) -> Tuple[float, float]:
    """A query interval ``(lb, ub]`` expected to span roughly ``hops`` peers.

    ``peer_values`` are the current ring values (range upper bounds) of the
    live peers; the interval is anchored at a random peer boundary and extended
    across ``hops`` consecutive ranges.
    """
    if not peer_values:
        raise ValueError("need at least one peer value")
    ordered = sorted(peer_values)
    count = len(ordered)
    start_index = rng.randrange(count)
    end_index = (start_index + hops) % count
    lb = ordered[start_index]
    ub = ordered[end_index]
    if hops >= count:
        # The whole ring: fall back to (almost) the full key space.
        return (0.0, key_space)
    if ub <= lb:
        # The interval would wrap; shift the anchor so it stays linear.
        lb = ordered[0]
        ub = ordered[min(hops, count - 1)]
    return (lb, ub)


@dataclass
class QueryWorkload:
    """A batch of range queries with a given selectivity over the key space.

    Randomness comes from the supplied ``rng`` (normally a named stream from
    :class:`~repro.sim.randomness.RngStreams`); the ``seed`` field is only the
    fallback when no stream is passed, so standalone use stays reproducible.
    """

    count: int
    selectivity: float
    key_space: float
    seed: int = 0
    rng: Optional[random.Random] = None

    def queries(self) -> Iterator[Tuple[float, float]]:
        """Yield ``(lb, ub]`` pairs covering ``selectivity`` of the key space each."""
        rng = self.rng if self.rng is not None else random.Random(self.seed)
        width = self.key_space * self.selectivity
        for _ in range(self.count):
            lb = rng.uniform(0.0, self.key_space - width)
            yield (lb, lb + width)

    def as_list(self) -> List[Tuple[float, float]]:
        """All queries as a list."""
        return list(self.queries())
