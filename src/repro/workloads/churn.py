"""Churn schedules: peer arrivals, graceful departures and failures.

The paper's evaluation (Section 6.1) adds one peer every three seconds in the
fail-free mode and additionally kills peers at a configurable rate in the
failure mode (Figure 23 sweeps up to 12 failures per 100 seconds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

JOIN = "join"
FAIL = "fail"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change."""

    time: float
    kind: str  # JOIN or FAIL

    def __post_init__(self):
        if self.kind not in (JOIN, FAIL):
            raise ValueError(f"unknown churn event kind {self.kind!r}")


@dataclass
class ChurnSchedule:
    """A time-ordered list of churn events.

    ``events`` is sorted once at construction (stably, so equal-time events
    keep their given order) rather than on every iteration -- the membership
    driver iterates schedules with thousands of events at scale.  The list is
    owned by the schedule after construction; build a new schedule instead of
    mutating it.
    """

    events: List[ChurnEvent]

    def __post_init__(self):
        self.events = sorted(self.events, key=lambda event: event.time)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration(self) -> float:
        """Time of the last scheduled event."""
        return self.events[-1].time if self.events else 0.0

    def merged_with(self, other: "ChurnSchedule") -> "ChurnSchedule":
        """Combine two schedules, keeping the merged events time-ordered.

        Both inputs are already sorted, so the constructor's stable sort is a
        linear merge pass; at equal times ``self``'s events come first.
        """
        return ChurnSchedule(self.events + other.events)


def join_schedule(count: int, period: float = 3.0, start: float = 0.0) -> ChurnSchedule:
    """``count`` peer arrivals, one every ``period`` seconds (paper default 3 s)."""
    return ChurnSchedule(
        [ChurnEvent(start + index * period, JOIN) for index in range(count)]
    )


def flash_crowd_schedule(
    count: int, at: float, spacing: float = 0.05
) -> ChurnSchedule:
    """``count`` peers arriving in a tight burst starting at ``at``.

    Models a flash crowd: instead of the paper's leisurely one-peer-per-3s
    arrival, the whole cohort shows up within ``count * spacing`` seconds and
    the ring must absorb the join storm.  ``spacing`` stays configurable so
    the burst can be made arbitrarily brutal (0 = all at one instant).
    """
    if spacing < 0:
        raise ValueError("spacing must be >= 0")
    return ChurnSchedule(
        [ChurnEvent(at + index * spacing, JOIN) for index in range(count)]
    )


def correlated_failure_schedule(
    count: int, at: float, spacing: float = 0.0
) -> ChurnSchedule:
    """``count`` peers failing (near-)simultaneously at time ``at``.

    Models a rack/site outage: failures land together instead of being spread
    over a window, which is the worst case for successor-list repair and the
    scenario where replica placement actually gets tested.
    """
    if spacing < 0:
        raise ValueError("spacing must be >= 0")
    return ChurnSchedule(
        [ChurnEvent(at + index * spacing, FAIL) for index in range(count)]
    )


def failure_schedule(
    rate_per_100s: float,
    duration: float,
    rng: random.Random,
    start: float = 0.0,
) -> ChurnSchedule:
    """Peer failures at ``rate_per_100s`` failures per 100 seconds over ``duration``.

    Failure instants are spread uniformly at random over the window, matching
    the paper's "failure mode" (Figure 23's x-axis is failures per 100 s).
    """
    if rate_per_100s <= 0 or duration <= 0:
        return ChurnSchedule([])
    count = max(0, int(round(rate_per_100s * duration / 100.0)))
    times = sorted(rng.uniform(start, start + duration) for _ in range(count))
    return ChurnSchedule([ChurnEvent(time, FAIL) for time in times])
