"""Workload generation: item streams, churn schedules and query mixes.

Layer contract: pure generators -- no simulation state, no network, no
protocol imports; every function takes an injected rng stream and returns
plain schedules/keys.  The harness (and examples/tests) are the consumers;
generators must stay deterministic for a given rng so scenario cells rerun
bit-identically.
"""

from repro.workloads.items import (
    ItemWorkload,
    KEY_DISTRIBUTIONS,
    generate_keys,
    skewed_keys,
    uniform_keys,
    zipf_keys,
)
from repro.workloads.churn import (
    ChurnEvent,
    ChurnSchedule,
    correlated_failure_schedule,
    failure_schedule,
    flash_crowd_schedule,
    join_schedule,
)
from repro.workloads.queries import QueryWorkload, range_for_hops

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ItemWorkload",
    "KEY_DISTRIBUTIONS",
    "QueryWorkload",
    "correlated_failure_schedule",
    "failure_schedule",
    "flash_crowd_schedule",
    "generate_keys",
    "join_schedule",
    "range_for_hops",
    "skewed_keys",
    "uniform_keys",
    "zipf_keys",
]
