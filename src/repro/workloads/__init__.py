"""Workload generation: item streams, churn schedules and query mixes."""

from repro.workloads.items import ItemWorkload, skewed_keys, uniform_keys
from repro.workloads.churn import ChurnEvent, ChurnSchedule, failure_schedule, join_schedule
from repro.workloads.queries import QueryWorkload, range_for_hops

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ItemWorkload",
    "QueryWorkload",
    "failure_schedule",
    "join_schedule",
    "range_for_hops",
    "skewed_keys",
    "uniform_keys",
]
