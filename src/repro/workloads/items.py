"""Item workload generation.

The paper's range indices exist precisely because item keys are *not*
hash-distributed: applications insert skewed, ordered keys (dates, coordinates,
identifiers) and still expect balanced storage.  The generators here produce
unique search key values either uniformly over the key space or concentrated in
a hot region (a simple parameterisable skew), plus timed insert/delete streams
at the paper's default rate of two items per second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence


def uniform_keys(count: int, key_space: float, rng: random.Random) -> List[float]:
    """``count`` unique keys drawn uniformly from ``(0, key_space)``."""
    keys: set = set()
    while len(keys) < count:
        key = round(rng.uniform(1.0, key_space - 1.0), 6)
        keys.add(key)
    return sorted(keys)


def skewed_keys(
    count: int,
    key_space: float,
    rng: random.Random,
    hot_fraction: float = 0.8,
    hot_region: float = 0.1,
) -> List[float]:
    """Keys where ``hot_fraction`` of them fall into the first ``hot_region`` of the space.

    This is the kind of distribution that forces repeated splits in one part of
    the ring (the situation hashing would avoid but order-preserving placement
    must balance via splits/merges).
    """
    if not 0.0 < hot_region <= 1.0:
        raise ValueError("hot_region must be in (0, 1]")
    keys: set = set()
    hot_limit = key_space * hot_region
    while len(keys) < count:
        if rng.random() < hot_fraction:
            key = round(rng.uniform(1.0, hot_limit), 6)
        else:
            key = round(rng.uniform(hot_limit, key_space - 1.0), 6)
        keys.add(key)
    return sorted(keys)


def zipf_keys(
    count: int,
    key_space: float,
    rng: random.Random,
    alpha: float = 1.1,
    bins: int = 1024,
) -> List[float]:
    """Zipf-skewed unique keys: bin ``k`` of the key space has weight ``1/k^alpha``.

    The key space is split into ``bins`` equal slices ordered by popularity;
    a key first draws its slice from the Zipf distribution and then a uniform
    offset inside it.  With ``alpha`` around 1 this reproduces the classic
    web/file-sharing popularity skew and concentrates inserts on a few slices,
    stressing the split/rebalance machinery far harder than the simple
    hot-region skew of :func:`skewed_keys`.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    weights = [1.0 / (rank ** alpha) for rank in range(1, bins + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    slice_width = key_space / bins
    keys: set = set()
    while len(keys) < count:
        point = rng.random()
        # Binary search the cumulative popularity table for the chosen bin.
        lo, hi = 0, bins - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        base = lo * slice_width
        key = round(base + rng.uniform(0.0, slice_width), 6)
        if 0.0 < key < key_space:
            keys.add(key)
    return sorted(keys)


KEY_DISTRIBUTIONS = {
    "uniform": uniform_keys,
    "skewed": skewed_keys,
    "zipf": zipf_keys,
}


def generate_keys(
    distribution: str,
    count: int,
    key_space: float,
    rng: random.Random,
    **params,
) -> List[float]:
    """Dispatch to a named key generator (used by the scenario registry)."""
    try:
        generator = KEY_DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown key distribution {distribution!r}; "
            f"choose from {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    return generator(count, key_space, rng, **params)


@dataclass
class ItemWorkload:
    """A timed stream of item insertions (and optional later deletions).

    ``insert_rate`` follows the paper's Section 6.1 default of two items per
    second unless overridden.
    """

    keys: Sequence[float]
    insert_rate: float = 2.0
    start_time: float = 0.0
    payload_prefix: str = "item"
    delete_keys: Sequence[float] = field(default_factory=list)
    delete_rate: float = 2.0

    def insert_events(self) -> Iterator[tuple[float, float, str]]:
        """Yield ``(time, key, payload)`` for every insertion."""
        interval = 1.0 / self.insert_rate if self.insert_rate > 0 else 0.0
        for index, key in enumerate(self.keys):
            yield (self.start_time + index * interval, key, f"{self.payload_prefix}-{key}")

    def delete_events(self, after: Optional[float] = None) -> Iterator[tuple[float, float]]:
        """Yield ``(time, key)`` for every deletion, starting at ``after``."""
        if not self.delete_keys:
            return
        interval = 1.0 / self.delete_rate if self.delete_rate > 0 else 0.0
        start = after if after is not None else self.start_time
        for index, key in enumerate(self.delete_keys):
            yield (start + index * interval, key)

    @property
    def duration(self) -> float:
        """Time needed to play the insert stream."""
        if not self.keys or self.insert_rate <= 0:
            return 0.0
        return len(self.keys) / self.insert_rate
