"""Item workload generation.

The paper's range indices exist precisely because item keys are *not*
hash-distributed: applications insert skewed, ordered keys (dates, coordinates,
identifiers) and still expect balanced storage.  The generators here produce
unique search key values either uniformly over the key space or concentrated in
a hot region (a simple parameterisable skew), plus timed insert/delete streams
at the paper's default rate of two items per second.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence


def uniform_keys(count: int, key_space: float, rng: random.Random) -> List[float]:
    """``count`` unique keys drawn uniformly from ``(0, key_space)``."""
    keys: set = set()
    while len(keys) < count:
        key = round(rng.uniform(1.0, key_space - 1.0), 6)
        keys.add(key)
    return sorted(keys)


def skewed_keys(
    count: int,
    key_space: float,
    rng: random.Random,
    hot_fraction: float = 0.8,
    hot_region: float = 0.1,
) -> List[float]:
    """Keys where ``hot_fraction`` of them fall into the first ``hot_region`` of the space.

    This is the kind of distribution that forces repeated splits in one part of
    the ring (the situation hashing would avoid but order-preserving placement
    must balance via splits/merges).
    """
    if not 0.0 < hot_region <= 1.0:
        raise ValueError("hot_region must be in (0, 1]")
    keys: set = set()
    hot_limit = key_space * hot_region
    while len(keys) < count:
        if rng.random() < hot_fraction:
            key = round(rng.uniform(1.0, hot_limit), 6)
        else:
            key = round(rng.uniform(hot_limit, key_space - 1.0), 6)
        keys.add(key)
    return sorted(keys)


@dataclass
class ItemWorkload:
    """A timed stream of item insertions (and optional later deletions).

    ``insert_rate`` follows the paper's Section 6.1 default of two items per
    second unless overridden.
    """

    keys: Sequence[float]
    insert_rate: float = 2.0
    start_time: float = 0.0
    payload_prefix: str = "item"
    delete_keys: Sequence[float] = field(default_factory=list)
    delete_rate: float = 2.0

    def insert_events(self) -> Iterator[tuple[float, float, str]]:
        """Yield ``(time, key, payload)`` for every insertion."""
        interval = 1.0 / self.insert_rate if self.insert_rate > 0 else 0.0
        for index, key in enumerate(self.keys):
            yield (self.start_time + index * interval, key, f"{self.payload_prefix}-{key}")

    def delete_events(self, after: Optional[float] = None) -> Iterator[tuple[float, float]]:
        """Yield ``(time, key)`` for every deletion, starting at ``after``."""
        if not self.delete_keys:
            return
        interval = 1.0 / self.delete_rate if self.delete_rate > 0 else 0.0
        start = after if after is not None else self.start_time
        for index, key in enumerate(self.delete_keys):
            yield (start + index * interval, key)

    @property
    def duration(self) -> float:
        """Time needed to play the insert stream."""
        if not self.keys or self.insert_rate <= 0:
            return 0.0
        return len(self.keys) / self.insert_rate
