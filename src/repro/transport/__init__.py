"""Pluggable execution substrates for the P-Ring protocol layers.

The protocols (ring membership, data-store splits/merges, replication,
routing, range queries) are written against the transport contract in
:mod:`repro.transport.api` -- ``call``/``cast`` messaging, periodic loops,
clock and RNG access, peer addressing -- never against a concrete substrate.
Two implementations exist:

* :class:`~repro.transport.sim_transport.SimTransport` -- the seeded
  discrete-event simulator (heap or wheel engine).  Deterministic; the
  default; event-trace bit-identical to the pre-transport stack.
* :class:`~repro.transport.asyncio_transport.AsyncioTransport` -- real UDP
  sockets on localhost with wall-clock periods, on an asyncio loop.  The
  same generators, in real time; used by the ``localhost_*`` fidelity cells.

Layer contract: protocol layers import messaging names (``Endpoint``,
``RpcError`` & friends) from *here*; only this package and the composition
root (:mod:`repro.index.pring`) may touch ``repro.sim.network`` /
``repro.sim.node`` internals.  ``tests/test_import_boundary.py`` enforces
that.  The engine primitives (:class:`~repro.sim.engine.Event`,
``Interrupt``, :class:`~repro.sim.locks.RWLock`) remain importable from
``repro.sim`` by every layer: they are substrate-independent.
"""

from repro.transport.api import (
    TRANSPORT_ENV_VAR,
    TRANSPORT_NAMES,
    NetworkStats,
    RpcError,
    RpcRemoteError,
    RpcRequest,
    RpcTimeout,
    RpcUnreachable,
    Transport,
    make_transport,
)
from repro.transport.endpoint import Endpoint, Node

__all__ = [
    "AsyncioTransport",
    "Endpoint",
    "NetworkStats",
    "Node",
    "RpcError",
    "RpcRemoteError",
    "RpcRequest",
    "RpcTimeout",
    "RpcUnreachable",
    "SimTransport",
    "TRANSPORT_ENV_VAR",
    "TRANSPORT_NAMES",
    "Transport",
    "make_transport",
]


def __getattr__(name):
    # The concrete transports import the sim package; loading them lazily
    # keeps `import repro.transport` cheap and cycle-free from any direction.
    if name == "SimTransport":
        from repro.transport.sim_transport import SimTransport

        return SimTransport
    if name == "AsyncioTransport":
        from repro.transport.asyncio_transport import AsyncioTransport

        return AsyncioTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
