"""Wire codec for the asyncio transport: JSON with tagged tuples.

RPC payloads in this codebase are JSON-friendly by construction -- the wire
helpers (``items_to_wire``, ``entries_to_wire``) emit lists of plain dicts --
with one exception: tuples (key ranges, ``(address, value)`` pairs) appear
inside payloads and must round-trip as tuples, because receivers use them as
dict keys and unpack them positionally.  Plain JSON would flatten them into
lists.  The codec therefore tags tuples as ``{"__tuple__": [...]}`` on encode
and restores them on decode; every other JSON type passes through untouched.

Dict keys must be strings (JSON's own rule).  ``json.dumps`` silently
stringifies numeric keys, which would corrupt a payload on the way through a
socket while the in-sim transport passed it by reference unchanged -- so the
encoder rejects non-string keys loudly instead.
"""

from __future__ import annotations

import json
from typing import Any

_TUPLE_TAG = "__tuple__"


def _pack(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return {_TUPLE_TAG: [_pack(value) for value in obj]}
    if isinstance(obj, list):
        return [_pack(value) for value in obj]
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(
                    f"wire payloads require string dict keys, got {key!r}"
                )
        return {key: _pack(value) for key, value in obj.items()}
    return obj


def _unpack(obj: Any) -> Any:
    if isinstance(obj, dict):
        if len(obj) == 1 and _TUPLE_TAG in obj:
            return tuple(_unpack(value) for value in obj[_TUPLE_TAG])
        return {key: _unpack(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_unpack(value) for value in obj]
    return obj


def encode_message(message: dict) -> bytes:
    """Encode one wire message (a flat dict of JSON-able fields) to bytes."""
    return json.dumps(_pack(message), separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> dict:
    """Decode bytes produced by :func:`encode_message`."""
    return _unpack(json.loads(data.decode("utf-8")))
