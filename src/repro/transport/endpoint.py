"""Base class for protocol peers, independent of the execution substrate.

An :class:`Endpoint` owns:

* an address on the transport's message plane;
* a set of running :class:`~repro.sim.engine.Process` objects (RPC handlers,
  periodic maintenance loops) that are interrupted when the peer fails;
* the RPC dispatch machinery: a request for method ``m`` is dispatched to the
  instance method ``rpc_m(payload, request)``, which may either return a value
  directly or be a generator (in which case it runs as a process and the reply
  is sent when it finishes).

The ring, data store, replication and index layers all subclass or compose
endpoints; peer failure (`fail`), graceful departure (`depart`) and the
fail-stop model from Section 2.1 are implemented here.

This class is substrate-agnostic: ``sim`` is any clock satisfying the engine
contract (a discrete-event :class:`~repro.sim.engine.Simulator` or the
real-time :class:`~repro.transport.asyncio_transport.AsyncioClock`) and
``network`` is any message plane satisfying the contract in
:mod:`repro.transport.api`.  Before the transport split this class lived at
``repro.sim.node.Node``; that name remains importable as an alias.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from typing import Any, Callable, List, Optional, Set, Tuple

from repro.sim.engine import Event, Process, ProcessKilled
from repro.transport.api import RpcRemoteError, RpcRequest


class PeriodicLoop:
    """Bookkeeping record for one :meth:`Endpoint.every` maintenance loop.

    The record is what makes loops *snapshotable*: ``next_fire``/``arm_seq``
    identify the pending sleep timer exactly (the engine's ``(time, seq)``
    ordering key), ``in_round`` says whether the loop is currently executing
    its action rather than sleeping, and the snapshot restore re-arms a
    deferred loop so its first wakeup reproduces the captured timer.
    """

    __slots__ = (
        "name",
        "period",
        "action",
        "jitter",
        "initial_delay",
        "next_fire",
        "arm_seq",
        "in_round",
        "process",
    )

    def __init__(self, name, period, action, jitter, initial_delay):
        self.name = name
        self.period = period
        self.action = action
        self.jitter = jitter
        self.initial_delay = initial_delay
        self.next_fire: Optional[float] = None
        self.arm_seq: int = 0
        self.in_round = False
        self.process: Optional[Process] = None


#: When a :func:`defer_periodic_loops` block is active, :meth:`Endpoint.every`
#: records ``(endpoint, record)`` here instead of arming the loop.  A module
#: global (not an Endpoint attribute) because loops are armed from deep inside
#: constructors (e.g. the global rebalancer arms during ``PRingIndex.__init__``)
#: where no restore code can intervene; restore is single-threaded per process.
_DEFERRED_ARMS: Optional[List[Tuple["Endpoint", PeriodicLoop]]] = None


@contextmanager
def defer_periodic_loops():
    """Collect loop armings instead of starting them (snapshot restore).

    Yields the list of ``(endpoint, record)`` pairs registered inside the
    block; the caller re-arms them via :meth:`Endpoint.arm_loop`, normally in
    the snapshot's ``(next_fire, arm_seq)`` order so same-instant wakeups keep
    their captured tie-break.
    """
    global _DEFERRED_ARMS
    previous = _DEFERRED_ARMS
    _DEFERRED_ARMS = deferred = []
    try:
        yield deferred
    finally:
        _DEFERRED_ARMS = previous


class Endpoint:
    """A peer process attached to a transport's message plane."""

    def __init__(self, sim, network, address: str, rng=None):
        self.sim = sim
        self.network = network
        self.address = address
        self.rng = rng
        self.alive = True
        self._processes: Set[Process] = set()
        self._handlers: dict[str, Callable[..., Any]] = {}
        self._loops: List[PeriodicLoop] = []
        network.register(self)

    # -- handler registration ---------------------------------------------------
    def register_handler(self, method: str, handler: Callable[..., Any]) -> None:
        """Register ``handler`` for RPC ``method``.

        Components composed into a peer (ring, data store, replication manager,
        router) use this to expose their message handlers without subclassing
        the endpoint.  A registered handler takes precedence over an
        ``rpc_<method>`` instance method.
        """
        self._handlers[method] = handler

    # -- identity ------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else "dead"
        return f"<{type(self).__name__} {self.address} {status}>"

    # -- process management ---------------------------------------------------
    def spawn(self, generator, name: str = "") -> Process:
        """Run ``generator`` as a process owned by this endpoint.

        Owned processes are interrupted when the peer fails, which models the
        fail-stop semantics of Section 2.1: a failed peer performs no further
        steps of any protocol.
        """
        label = f"{self.address}:{name or getattr(generator, '__name__', 'proc')}"
        process = self.sim.process(generator, name=label)
        self._processes.add(process)
        process._add_callback(lambda _event: self._processes.discard(process))
        return process

    def every(
        self,
        period,
        action: Callable[[], Any],
        jitter: float = 0.0,
        initial_delay: Optional[float] = None,
        name: str = "",
    ) -> Process:
        """Run ``action`` every ``period`` seconds (plus uniform jitter).

        ``period`` is either a float (fixed cadence) or a zero-argument
        callable returning the delay before the *next* round -- that is how the
        adaptive maintenance controllers (:mod:`repro.maintenance.cadence`)
        drive the ring and replication loops without a second scheduling path.
        The callable is consulted after every round, so a controller that
        backs off or tightens takes effect on the very next sleep.

        ``action`` may be a plain callable or return a generator, in which case
        the periodic loop waits for it to complete before sleeping again --
        matching the paper's sequential stabilization rounds.

        Inside a :func:`defer_periodic_loops` block the loop is registered but
        not started (returns ``None``); the snapshot restore arms it later via
        :meth:`arm_loop`.
        """
        period_source = period if callable(period) else None
        label = name or (f"every-{period}s" if period_source is None else "every-adaptive")
        record = PeriodicLoop(label, period, action, jitter, initial_delay)
        self._loops.append(record)
        if _DEFERRED_ARMS is not None:
            _DEFERRED_ARMS.append((self, record))
            return None
        return self.arm_loop(record)

    def arm_loop(self, record: PeriodicLoop, resume_at: Optional[float] = None) -> Process:
        """Start the process behind a registered loop record.

        ``resume_at`` is the snapshot-restore path: the first sleep targets
        that absolute instant (the captured ``next_fire``) with no period/
        jitter draw -- those random numbers were consumed before the snapshot
        and live in the restored RNG state.  Subsequent rounds follow the
        normal cadence path.
        """
        record.process = self.spawn(self._loop_body(record, resume_at), name=record.name)
        return record.process

    def _loop_body(self, record: PeriodicLoop, resume_at: Optional[float]):
        period = record.period
        period_source = period if callable(period) else None
        action = record.action
        jitter = record.jitter

        def _next_period() -> float:
            return period_source() if period_source is not None else period

        if resume_at is None:
            delay = _next_period() if record.initial_delay is None else record.initial_delay
            if self.rng is not None and jitter > 0:
                delay += self.rng.uniform(0, jitter)
        while True:
            if resume_at is not None:
                sleep = self.sim.timeout_at(resume_at)
                record.next_fire = resume_at
                resume_at = None
            else:
                sleep = self.sim.timeout(delay)
                record.next_fire = self.sim.now + delay
            # The engine bumps its sequence exactly once per timeout, so this
            # reads the sleep timer's own (time, seq) key.  The asyncio clock
            # has no sequence counter (and no snapshots either).
            record.arm_seq = getattr(self.sim, "_sequence", 0)
            yield sleep
            if not self.alive:
                return
            record.in_round = True
            result = action()
            if inspect.isgenerator(result):
                yield from result
            record.in_round = False
            delay = _next_period()
            if self.rng is not None and jitter > 0:
                delay += self.rng.uniform(0, jitter)

    # -- RPC ------------------------------------------------------------------
    def call(
        self,
        destination: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Issue an RPC to ``destination``; yield the returned event."""
        return self.network.call(self.address, destination, method, payload, timeout)

    def cast(self, destination: str, method: str, payload: Any = None) -> None:
        """Send a one-way message to ``destination`` (no reply event, no timer).

        Use for fan-outs whose replies nobody reads; see
        :meth:`repro.sim.network.Network.cast`.
        """
        self.network.cast(self.address, destination, method, payload)

    def _handle_cast(self, request: RpcRequest) -> bool:
        """Dispatch a one-way message; the handler's result is discarded.

        Returns whether handling completed synchronously, in which case the
        network may recycle the request record immediately.  Handler errors
        are swallowed: with :meth:`call` they would travel back to the caller
        as an :class:`RpcRemoteError`, and a cast has no caller to tell.
        """
        handler = self._handlers.get(request.method)
        if handler is None:
            handler = getattr(self, f"rpc_{request.method}", None)
        if handler is None:
            return True
        try:
            outcome = handler(request.payload, request)
        except Exception:
            return True
        if not inspect.isgenerator(outcome):
            return True
        self.spawn(outcome, name=f"cast:{request.method}")
        return False

    def _handle_rpc(
        self,
        request: RpcRequest,
        reply: Callable[[Any, Optional[BaseException]], None],
    ) -> None:
        """Dispatch an incoming request to its handler and send the reply."""
        handler = self._handlers.get(request.method)
        if handler is None:
            handler = getattr(self, f"rpc_{request.method}", None)
        if handler is None:
            reply(None, RpcRemoteError(f"{self.address} has no handler for {request.method!r}"))
            return
        try:
            outcome = handler(request.payload, request)
        except Exception as error:  # handler bug or protocol rejection
            reply(None, RpcRemoteError(repr(error)))
            return
        if not inspect.isgenerator(outcome):
            reply(outcome, None)
            return

        def _run_handler():
            value = yield from outcome
            return value

        process = self.spawn(_run_handler(), name=f"rpc:{request.method}")

        def _on_done(event: Event) -> None:
            if not self.alive:
                return  # a failed peer never answers
            if event.ok:
                reply(event.value, None)
            else:
                reply(None, RpcRemoteError(repr(event.value)))

        process._add_callback(_on_done)

    # -- failure / departure ----------------------------------------------------
    def fail(self) -> None:
        """Fail-stop the peer: all of its running protocol steps cease."""
        if not self.alive:
            return
        self.alive = False
        for process in list(self._processes):
            process.interrupt(ProcessKilled(f"{self.address} failed"))
        self._processes.clear()
        self.on_failed()

    def depart(self) -> None:
        """Remove the peer after a *graceful* departure (protocols already ran)."""
        if not self.alive:
            return
        self.alive = False
        for process in list(self._processes):
            process.interrupt(ProcessKilled(f"{self.address} departed"))
        self._processes.clear()
        self.on_departed()

    # Subclass hooks -----------------------------------------------------------
    def on_failed(self) -> None:
        """Hook invoked after :meth:`fail`; subclasses may release resources."""

    def on_departed(self) -> None:
        """Hook invoked after :meth:`depart`."""


#: Historical name: before the transport split this class was ``sim.node.Node``.
Node = Endpoint
