"""The discrete-event transport: the seeded simulator behind the contract.

A *thin* adapter by design: it composes the existing engine
(:func:`~repro.sim.engine.make_simulator` -- heap or timer-wheel) with the
existing :class:`~repro.sim.network.Network` in exactly the order the
pre-transport composition root did, consuming the same RNG streams in the
same sequence.  That makes a ``SimTransport`` deployment event-trace
bit-identical to the pre-refactor stack, which the frozen-seed parity suite
(``tests/test_transport_parity.py``) pins the same way PR 6 pinned the wheel
engine.
"""

from __future__ import annotations

from repro.sim.engine import make_simulator
from repro.sim.network import Network
from repro.sim.randomness import RngStreams
from repro.transport.api import Transport


class SimTransport(Transport):
    """Clock = discrete-event engine; message plane = simulated network."""

    name = "sim"

    def __init__(self, config, metrics=None):
        # Construction order matters for parity: the engine first, then the
        # seeded streams, then the network pulling its "network" stream --
        # the exact sequence the pre-transport PRingIndex used.
        self.clock = make_simulator(config.engine)
        self.rngs = RngStreams(config.seed)
        self.network = Network(
            self.clock, self.rngs.stream("network"), config.network, metrics=metrics
        )

    def shutdown(self) -> None:
        """Nothing to release: the simulator holds no external resources."""
