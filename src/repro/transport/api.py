"""The transport contract: what protocol layers may assume about messaging.

The P-Ring protocol layers (``ring/``, ``core/``, ``datastore/``,
``replication/``, ``router/``) are written against *this* contract, never
against a concrete substrate.  A transport supplies three cooperating
objects:

``clock``
    The scheduler/clock the protocol coroutines run on.  Its surface is the
    engine contract of :mod:`repro.sim.engine`: ``now``, ``event()``,
    ``timeout(delay)``, ``process(generator)``, ``any_of``/``all_of``,
    ``schedule_timer``/``cancel_timer``, ``run(until)``,
    ``run_until(event, timeout)``, ``run_process(generator)`` and the
    ``events_processed`` counter.  The discrete-event engines (``heap``,
    ``wheel``) implement it in simulated time; the asyncio transport
    implements it in real wall-clock time on an asyncio loop.  Protocol code
    cannot tell the difference: it yields the same events either way.

``network``
    The message plane.  The surface protocol layers use:

    * ``call(source, destination, method, payload, timeout)`` -- request/
      reply RPC returning an event that succeeds with the handler's return
      value or fails with an :class:`RpcError` subclass (a dead, missing or
      silent destination surfaces as :class:`RpcTimeout`);
    * ``cast(source, destination, method, payload)`` -- fire-and-forget
      one-way message (no reply, no timer; a dead destination swallows it);
    * ``register(endpoint)`` / ``unregister(address)`` -- peer addressing:
      endpoints are addressable by an opaque string address;
    * ``stats`` -- a :class:`NetworkStats` with per-method call counters;
    * ``config`` -- the :class:`~repro.sim.network.NetworkConfig` in force
      (``rpc_timeout`` is honoured by every transport; latency/loss fields
      are simulation-only and ignored where the real network provides them);
    * ``observed_rtt()`` -- mean observed round trip, seeded with a nominal
      value until enough samples exist (consulted by the RTT-scaled
      maintenance cadences).

``rngs``
    The seeded :class:`~repro.sim.randomness.RngStreams` of the deployment.
    All protocol randomness (jitter, shuffles) flows through named streams,
    which is what makes sim runs reproducible; the asyncio transport reuses
    the same streams so protocol-level decisions stay seeded even when
    message timing is real.

Determinism guarantees per transport:

* ``sim`` -- fully deterministic: one seed, one event trace.  The frozen-seed
  parity suite (``tests/test_transport_parity.py``) pins the end-state
  matrix of representative cells, so the adapter is provably a no-op.
* ``asyncio`` -- protocol decisions are seeded but message timing is real;
  only *converged end states* (membership, stored items, reachability) are
  comparable across runs, which is exactly what the ``localhost_*`` fidelity
  cells assert.

This module is dependency-free (stdlib only): it also hosts the RPC
exception hierarchy, the request record and the stats counters that both
substrates share, so protocol layers import them from here (or from
:mod:`repro.transport`) instead of from ``repro.sim.network``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class RpcError(Exception):
    """Base class for RPC failures observed by callers."""


class RpcTimeout(RpcError):
    """The callee did not answer within the RPC timeout.

    Seen when the callee has failed, left the system, or the request/reply was
    dropped by the network.
    """


class RpcUnreachable(RpcError):
    """The destination address was never registered with the network."""


class RpcRemoteError(RpcError):
    """The remote handler raised an exception; its repr is carried along."""


@dataclass(slots=True)
class RpcRequest:
    """A request in flight.  Exposed to handlers for tracing/diagnostics.

    Request records may be recycled once the reply has been transmitted (or
    the destination turned out to be dead), so handlers must not retain one
    past their own execution.
    """

    source: str
    destination: str
    method: str
    payload: Any
    request_id: int


@dataclass
class NetworkStats:
    """Counters kept by every transport's message plane."""

    messages_sent: int = 0
    messages_dropped: int = 0
    rpc_calls: int = 0
    rpc_timeouts: int = 0
    delivery_batches: int = 0
    per_method: Dict[str, int] = field(default_factory=dict)
    # RPCs per originating site (only populated under a LanWanLatency model).
    per_site_rpcs: Dict[str, int] = field(default_factory=dict)
    # Running sum/count of sampled one-way latencies (not populated under the
    # constant-latency fast path, where the latency is known without sampling).
    latency_sum: float = 0.0
    latency_samples: int = 0

    def record_call(self, method: str) -> None:
        self.rpc_calls += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1

    def mean_latency(self) -> Optional[float]:
        """Mean sampled one-way latency, or ``None`` before any sample."""
        if self.latency_samples == 0:
            return None
        return self.latency_sum / self.latency_samples


class Transport:
    """One execution substrate for a deployment: clock + message plane + RNG.

    Concrete transports populate ``clock``, ``network`` and ``rngs`` in their
    constructor (see the module docstring for the surface each must provide)
    and identify themselves through ``name``.  The composition root
    (:class:`~repro.index.pring.PRingIndex`) builds exactly one transport per
    deployment via :func:`make_transport` and wires every endpoint to it.
    """

    #: Registry name of the transport implementation ("sim" or "asyncio").
    name = "abstract"

    clock: Any
    network: Any
    rngs: Any

    def shutdown(self) -> None:
        """Release substrate resources (sockets, loops).  Idempotent."""


# --------------------------------------------------------------------------- selection
#: Environment knob forcing a transport for every deployment built through
#: :func:`make_transport` (e.g. ``REPRO_TRANSPORT=sim`` runs a ``localhost_*``
#: cell in-sim without touching the spec).
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"

#: The selectable transport implementations.  ``sim`` adapts the existing
#: discrete-event :class:`~repro.sim.network.Network`/engine pair (bit-
#: identical to the pre-transport stack); ``asyncio`` runs the same protocol
#: code over real UDP sockets on localhost with wall-clock periods.
TRANSPORT_NAMES = ("sim", "asyncio")


def make_transport(config, metrics=None) -> Transport:
    """Build the transport selected by ``config.transport``.

    The :data:`TRANSPORT_ENV_VAR` environment variable, when set, overrides
    the config field -- mirroring how ``REPRO_ENGINE`` overrides the engine.
    Unknown names raise :class:`ValueError`.
    """
    name = os.environ.get(TRANSPORT_ENV_VAR) or getattr(config, "transport", "sim")
    if name == "sim":
        from repro.transport.sim_transport import SimTransport  # deferred: imports sim

        return SimTransport(config, metrics=metrics)
    if name == "asyncio":
        from repro.transport.asyncio_transport import AsyncioTransport

        return AsyncioTransport(config, metrics=metrics)
    raise ValueError(
        f"unknown transport {name!r}; known: {', '.join(TRANSPORT_NAMES)}"
    )
