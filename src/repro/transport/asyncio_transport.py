"""The real-network transport: wall-clock time and UDP sockets on localhost.

The protocol layers are generators yielding :class:`~repro.sim.engine.Event`
objects, and nothing about that machinery is inherently simulated: an event
is just a one-shot callback registry, and a :class:`~repro.sim.engine.Process`
only ever touches its clock through ``sim._ready.append`` (to get resumed)
and factory methods.  :class:`AsyncioClock` exploits that: it presents the
engine surface (``now``/``event``/``timeout``/``process``/``any_of``/
``schedule_timer``/``run``/``run_until``) backed by a real asyncio loop --
``now`` is wall-clock seconds since construction, ``timeout`` arms
``loop.call_later``, and the ready queue is a deque that wakes a pump
callback whenever protocol work is appended.  The exact same generator code
that runs in simulated time therefore runs in real time, unmodified.

:class:`AsyncioNetwork` replaces the simulated message plane with per-peer
UDP sockets bound to ``127.0.0.1:<ephemeral>``.  Messages are JSON datagrams
framed by :mod:`repro.transport.codec`; requests carry a send timestamp that
replies echo, so ``observed_rtt`` reports *measured* round trips.  Failure
semantics mirror the simulator exactly: a dead or unknown destination never
answers and the caller observes an :class:`~repro.transport.api.RpcTimeout`;
a handler exception travels back as an
:class:`~repro.transport.api.RpcRemoteError`; casts are fire-and-forget.
Latency comes from the real loopback path (the config's latency model only
supplies the nominal RTT seed); ``drop_probability`` is still honoured so
loss experiments remain runnable against real sockets.

Sockets are registered with ``loop.add_reader`` rather than
``create_datagram_endpoint`` deliberately: peers join *mid-run* from inside
protocol callbacks (a split recruits a free peer while the loop is running),
and ``add_reader`` is a plain synchronous call that works from any context.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessGenerator,
    SimulationError,
)
from repro.sim.network import NetworkConfig
from repro.sim.randomness import RngStreams
from repro.transport.api import (
    NetworkStats,
    RpcRemoteError,
    RpcRequest,
    RpcTimeout,
    Transport,
)
from repro.transport.codec import decode_message, encode_message

# Payloads ride single UDP datagrams; localhost accepts up to ~64 KiB.  The
# protocols' largest messages (split item transfers) are far below this, but
# fail loudly rather than truncate if an experiment ever exceeds it.
_MAX_DATAGRAM = 60000


class _WakingReady:
    """The clock's ready queue: a FIFO that wakes the pump on ``append``.

    :class:`~repro.sim.engine.Event` and :class:`~repro.sim.engine.Process`
    push resume work via ``sim._ready.append``; under the discrete-event
    engines the run loop polls the deque, but an asyncio loop must be *told*
    there is work.  Appending schedules the clock's pump with
    ``loop.call_soon`` (coalesced while one is already pending).
    """

    __slots__ = ("_items", "_wake")

    def __init__(self, wake: Callable[[], None]):
        from collections import deque

        self._items = deque()
        self._wake = wake

    def append(self, item) -> None:
        self._items.append(item)
        self._wake()

    def popleft(self):
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class AsyncioClock:
    """The engine surface in real time, over an asyncio event loop.

    ``now`` is wall-clock seconds since the clock was built (``loop.time``
    rebased to zero, so scenario durations read the same as simulated ones).
    ``events_processed`` counts protocol actions pumped through the ready
    queue plus fired timers -- the same notion the simulated engines report.
    """

    engine_name = "asyncio"

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        self._start = self.loop.time()
        self._ready = _WakingReady(self._wake)
        self._pump_pending = False
        self.events_processed = 0

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the clock was created."""
        return self.loop.time() - self._start

    # -- ready-queue pump --------------------------------------------------
    def _wake(self) -> None:
        if not self._pump_pending:
            self._pump_pending = True
            self.loop.call_soon(self._pump)

    def _pump(self) -> None:
        self._pump_pending = False
        ready = self._ready
        processed = 0
        while ready:
            func, arg = ready.popleft()
            processed += 1
            func(arg)
        self.events_processed += processed

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this clock."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event firing ``delay`` *wall-clock* seconds from now.

        Returns a plain :class:`Event` completed by ``loop.call_later``
        (:class:`~repro.sim.engine.Timeout` is heap-engine-specific: its
        constructor pushes directly into the simulator's time queue).
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        result = Event(self)

        def _fire() -> None:
            self.events_processed += 1
            result.succeed(value)

        self.loop.call_later(delay, _fire)
        return result

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a :class:`Process` driven by this clock."""
        return Process(self, generator, name=name)

    def any_of(self, events) -> AnyOf:
        """Condition firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        """Condition firing when all ``events`` have fired."""
        return AllOf(self, events)

    # -- timers ------------------------------------------------------------
    # Same contract as the engines' schedule_timer/cancel_timer: the returned
    # handle is valid until the timer fires or is cancelled, whichever comes
    # first; cancelling returns the argument (or None if already fired).
    def schedule_timer(self, delay: float, func: Callable[[Any], None], arg: Any = None) -> list:
        """Run ``func(arg)`` after ``delay`` wall-clock seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        record = [None, func, arg]

        def _fire() -> None:
            fn, argument = record[1], record[2]
            record[0] = record[1] = record[2] = None
            if fn is not None:
                self.events_processed += 1
                fn(argument)

        record[0] = self.loop.call_later(delay, _fire)
        return record

    def cancel_timer(self, record: Optional[list]) -> Any:
        """Cancel a pending timer; returns its argument, or ``None`` if fired."""
        if record is None or record[1] is None:
            return None
        handle, arg = record[0], record[2]
        record[0] = record[1] = record[2] = None
        if handle is not None:
            handle.cancel()
        return arg

    # ``schedule``/``schedule_at`` complete the engine surface for callers
    # that schedule plain actions (the simulated network's batching does; no
    # protocol layer does, but the surface stays uniform).
    def schedule(self, delay: float, func: Callable[[Any], None], arg: Any = None) -> list:
        return self.schedule_timer(delay, func, arg)

    def schedule_at(self, time: float, func: Callable[[Any], None], arg: Any = None) -> list:
        return self.schedule_timer(max(0.0, time - self.now), func, arg)

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the loop until wall-clock ``now`` reaches ``until``.

        Unlike the simulated engines there is no "queue exhausted" stop: real
        time always advances, so ``until`` is required.
        """
        if until is None:
            raise SimulationError("AsyncioClock.run requires an explicit 'until' time")
        remaining = until - self.now
        self.loop.run_until_complete(asyncio.sleep(max(0.0, remaining)))
        return self.now

    def run_until(self, event: Event, timeout: float = 1e9) -> bool:
        """Run the loop until ``event`` triggers or ``timeout`` real seconds pass."""
        if event.triggered:
            return True
        future = self.loop.create_future()

        def _on_trigger(_event: Event) -> None:
            if not future.done():
                future.set_result(True)

        event._add_callback(_on_trigger)

        async def _wait() -> None:
            try:
                await asyncio.wait_for(asyncio.shield(future), timeout=timeout)
            except asyncio.TimeoutError:
                pass

        self.loop.run_until_complete(_wait())
        return event.triggered

    def run_process(self, generator: ProcessGenerator, timeout: float = 1e9) -> Any:
        """Run ``generator`` to completion in real time and return its value."""
        proc = self.process(generator)
        self.run_until(proc, timeout=timeout)
        if not proc.triggered:
            raise SimulationError("process did not finish within the timeout")
        if not proc.ok:
            raise proc.value
        return proc.value

    def close(self) -> None:
        """Close the underlying event loop.  Idempotent."""
        if not self.loop.is_closed():
            self.loop.close()


class AsyncioNetwork:
    """Message plane over per-peer UDP sockets on the loopback interface.

    Implements the contract of :mod:`repro.transport.api`: ``call``/``cast``
    with the simulator's failure semantics, ``register``/``unregister``
    addressing, shared :class:`NetworkStats`, live-read ``drop_probability``
    and measured ``observed_rtt``.  Logical peer addresses (``peer017``) map
    to UDP ports through an in-process registry -- the deployments this
    transport targets are single-host cells, so no external name service is
    needed.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        rng,
        config: Optional[NetworkConfig] = None,
        metrics=None,
    ):
        self.sim = clock
        self.clock = clock
        self.rng = rng
        self.metrics = metrics
        self.config = config or NetworkConfig()
        self.config.validate()
        self.latency_model = self.config.resolved_latency_model()
        self.stats = NetworkStats()
        self._nodes: Dict[str, Any] = {}
        self._socks: Dict[str, socket.socket] = {}
        self._ports: Dict[str, int] = {}
        self._next_request_id = 0
        # request_id -> [result event, timer handle, method, destination]
        self._pending: Dict[int, list] = {}
        self._closed = False
        # Optional RPC observer with the same contract as the simulated
        # network's: ``rpc_issued`` on every call, ``rpc_completed`` exactly
        # once per call (reply or expiry -- whichever pops the pending
        # record).  Casts are not observed.
        self.observer = None

    # -- membership --------------------------------------------------------
    def register(self, node) -> None:
        """Attach ``node``: bind a loopback UDP socket and start reading it."""
        if self._closed:
            raise RuntimeError("network is closed")
        address = node.address
        self._nodes[address] = node
        if address in self._socks:
            return  # re-registration keeps the existing socket
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.bind(("127.0.0.1", 0))
        self._socks[address] = sock
        self._ports[address] = sock.getsockname()[1]
        self.clock.loop.add_reader(sock.fileno(), self._on_readable, address, sock)

    def unregister(self, address: str) -> None:
        """Detach the node at ``address`` (it becomes unreachable)."""
        self._nodes.pop(address, None)
        sock = self._socks.pop(address, None)
        self._ports.pop(address, None)
        if sock is not None:
            self.clock.loop.remove_reader(sock.fileno())
            sock.close()

    def node(self, address: str):
        """Return the node registered at ``address``, if any."""
        return self._nodes.get(address)

    def known_addresses(self) -> list[str]:
        """Addresses of all registered nodes (dead or alive)."""
        return list(self._nodes)

    # -- config ------------------------------------------------------------
    def reconfigure(self) -> None:
        """Re-resolve the nominal-latency model after mutating ``config``.

        The real network provides actual latency; only the ``observed_rtt``
        warm-up seed depends on the model.
        """
        self.latency_model = self.config.resolved_latency_model()

    def _dropped(self) -> bool:
        prob = self.config.drop_probability
        return prob > 0 and self.rng.random() < prob

    # Minimum measured round trips before the observed mean outweighs the
    # model's nominal latency (same warm-up rule as the simulated network).
    _RTT_WARMUP_SAMPLES = 32

    def observed_rtt(self) -> float:
        """Mean *measured* round trip, nominal until enough samples exist."""
        stats = self.stats
        if stats.latency_samples >= self._RTT_WARMUP_SAMPLES:
            return 2.0 * stats.latency_sum / stats.latency_samples
        return 2.0 * self.latency_model.nominal_latency()

    # -- RPC ----------------------------------------------------------------
    def call(
        self,
        source: str,
        destination: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Issue an RPC over UDP; returns the event carrying the reply.

        The event succeeds with the handler's return value or fails with an
        :class:`RpcError` subclass; an unreachable, dead or silent destination
        surfaces as :class:`RpcTimeout` after ``timeout`` real seconds.
        """
        timeout = self.config.rpc_timeout if timeout is None else timeout
        result = self.clock.event()
        self.stats.record_call(method)
        self._next_request_id += 1
        request_id = self._next_request_id
        pending = [result, None, method, destination]
        pending[1] = self.clock.schedule_timer(timeout, self._expire, request_id)
        self._pending[request_id] = pending
        if self.observer is not None:
            self.observer.rpc_issued(source, destination, method)
        self._send(
            source,
            destination,
            {
                "k": "q",
                "id": request_id,
                "s": source,
                "d": destination,
                "m": method,
                "p": payload,
                "t": self.clock.now,
            },
        )
        return result

    def cast(self, source: str, destination: str, method: str, payload: Any = None) -> None:
        """Send a one-way message: no reply event, no expiry timer, no reply."""
        self.stats.record_call(method)
        self._next_request_id += 1
        self._send(
            source,
            destination,
            {
                "k": "c",
                "id": self._next_request_id,
                "s": source,
                "d": destination,
                "m": method,
                "p": payload,
            },
        )

    # -- internals ----------------------------------------------------------
    def _send(self, via: str, destination: str, message: dict) -> None:
        """Encode and transmit one datagram from ``via``'s socket.

        An unknown destination is not an error: exactly like the simulator,
        the message evaporates and any caller observes a timeout.
        """
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
            return
        port = self._ports.get(destination)
        sock = self._socks.get(via)
        if port is None or sock is None:
            return
        data = encode_message(message)
        if len(data) > _MAX_DATAGRAM:
            raise ValueError(
                f"datagram for {message['m']!r} is {len(data)} bytes; "
                f"exceeds the {_MAX_DATAGRAM}-byte UDP budget"
            )
        try:
            sock.sendto(data, ("127.0.0.1", port))
        except OSError:
            # A burst overflowing the socket buffer behaves like loss: the
            # protocols already tolerate dropped messages.
            self.stats.messages_dropped += 1

    def _expire(self, request_id: int) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        result, _timer, method, destination = pending
        if self.observer is not None:
            self.observer.rpc_completed(destination)
        if not result.triggered:
            self.stats.rpc_timeouts += 1
            result.fail(RpcTimeout(f"{method} -> {destination} timed out"))

    def _on_readable(self, address: str, sock: socket.socket) -> None:
        """Drain every datagram queued on ``address``'s socket."""
        while True:
            try:
                data, origin = sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us during shutdown
            try:
                message = decode_message(data)
            except (ValueError, UnicodeDecodeError):
                self.stats.messages_dropped += 1
                continue
            kind = message.get("k")
            if kind == "r":
                self._on_reply(message)
            elif kind in ("q", "c"):
                self._on_request(address, message, kind)

    def _on_request(self, address: str, message: dict, kind: str) -> None:
        node = self._nodes.get(address)
        if node is None or not node.alive:
            # A dead peer never answers; the caller times out (sim semantics).
            return
        request = RpcRequest(
            source=message["s"],
            destination=message["d"],
            method=message["m"],
            payload=message["p"],
            request_id=message["id"],
        )
        if kind == "c":
            node._handle_cast(request)
            return
        sent_at = message.get("t", 0.0)
        request_id = message["id"]
        source = message["s"]

        def _reply(value: Any, error: Optional[BaseException]) -> None:
            reply: dict = {"k": "r", "id": request_id, "t": sent_at}
            if error is None:
                reply["v"] = value
            else:
                reply["e"] = repr(error)
            self._send(address, source, reply)

        node._handle_rpc(request, _reply)

    def _on_reply(self, message: dict) -> None:
        pending = self._pending.pop(message["id"], None)
        if pending is None:
            return  # the expiry timer already fired (late reply)
        result, timer, _method, destination = pending
        self.clock.cancel_timer(timer)
        if self.observer is not None:
            self.observer.rpc_completed(destination)
        rtt = self.clock.now - message.get("t", self.clock.now)
        if rtt >= 0:
            # Recorded as a one-way latency sample (rtt/2), matching what the
            # simulated network accumulates in the same fields.
            self.stats.latency_sum += rtt / 2.0
            self.stats.latency_samples += 1
        if result.triggered:
            return
        if "e" in message:
            result.fail(RpcRemoteError(message["e"]))
        else:
            result.succeed(message.get("v"))

    def close(self) -> None:
        """Tear down every socket and reader.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for sock in self._socks.values():
            try:
                self.clock.loop.remove_reader(sock.fileno())
            except (ValueError, OSError):
                pass
            sock.close()
        self._socks.clear()
        self._ports.clear()
        self._nodes.clear()
        self._pending.clear()


class AsyncioTransport(Transport):
    """Clock = wall time on an asyncio loop; message plane = loopback UDP."""

    name = "asyncio"

    def __init__(self, config, metrics=None):
        self.loop = asyncio.new_event_loop()
        self.clock = AsyncioClock(self.loop)
        self.rngs = RngStreams(config.seed)
        self.network = AsyncioNetwork(
            self.clock, self.rngs.stream("network"), config.network, metrics=metrics
        )

    def shutdown(self) -> None:
        """Close every socket and the event loop.  Idempotent."""
        self.network.close()
        if not self.loop.is_closed():
            self.loop.close()
