"""The parked-instant barrier: step the world to a capturable instant.

A phase boundary leaves the deployment *quiescent* (no joins or splits in
flight) but not *parked*: RPC round-trips may still be mid-flight, a
maintenance round may be mid-action, a protocol step may be sleeping on a
timer.  Serialising such a world would mean serialising continuations --
live generator frames -- which is where snapshot designs go to die.

Instead the barrier advances the simulation one timed instant at a time until
the world is **parked**: every live timer in the engine is accounted for as
either the sleep timer of a periodic maintenance loop between rounds
(captured as plain data by the loop registry,
:class:`repro.transport.endpoint.PeriodicLoop`) or an *inert straggler* -- the
losing timeout of an already-decided race (a join that succeeded before its
give-up deadline, a split acknowledged before its watchdog fired).  A
straggler's only remaining effect is to bump the event counter when it fires,
so it is captured as ``(time, callback count)`` and restored as a no-op timer
with the same firing cost.  Anything else pending -- an in-flight message, a
protocol sleep, a timer whose callback could still *do* something -- blocks
the capture and the stepping continues.

Maintenance periods are seconds apart while RPC round-trips are milliseconds,
so parked instants occur naturally many times per simulated second; the bound
exists only for pathological worlds (a split cascade that never drains), where
the caller simply skips capturing and continues cold.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.sim.engine import Event, _fire_event, _fire_timeout

#: Default simulated-seconds bound on the stepping search.
PARK_HORIZON = 30.0


def inert_callback(_event) -> None:
    """The no-op a restored straggler carries per captured callback.

    Exists (rather than a lambda) so the inertness classifier can recognise
    restored stragglers by identity when a warm world is captured again.
    """


def _loop_endpoints(index):
    """Every endpoint owning periodic loops: live peers + the rebalancer.

    The free-peer pool is a pure RPC directory (no loops); dead peers' loops
    no longer tick (their processes were interrupted), and any sleep timer a
    dead peer left behind fails the inertness check below -- its callback is
    a process resume, not a decided race -- so such worlds simply never park
    until the straggler fires.
    """
    yield from index.membership.live_peers()
    if index.rebalancer is not None:
        yield index.rebalancer


def _sleeping_loop_keys(index) -> Optional[Set[Tuple[float, int]]]:
    """The ``(next_fire, arm_seq)`` keys of all sleeping loops.

    ``None`` when some loop is mid-round (executing its action rather than
    sleeping) -- the world cannot be parked then.
    """
    keys: Set[Tuple[float, int]] = set()
    for endpoint in _loop_endpoints(index):
        for record in endpoint._loops:
            process = record.process
            if process is None or not process.alive:
                continue
            if record.in_round:
                return None
            keys.add((record.next_fire, record.arm_seq))
    return keys


def _inert_callback_count(event) -> Optional[int]:
    """How many no-op firings this event's callbacks amount to, else ``None``.

    A callback is provably inert in exactly two shapes: the sentinel
    :func:`inert_callback` a previous restore attached, or a race-condition
    closure (``AnyOf``/``AllOf`` style) over a single owning :class:`Event`
    that has already triggered -- its first statement is a triggered-check
    and return.  A process resume, or a closure over a still-pending
    condition, could do real work and returns ``None`` (not inert).
    """
    callbacks = event.callbacks
    if not callbacks:
        return 0
    for callback in callbacks:
        if callback is inert_callback:
            continue
        cells = getattr(callback, "__closure__", None)
        if not cells:
            return None
        try:
            owners = [
                cell.cell_contents
                for cell in cells
                if isinstance(cell.cell_contents, Event)
            ]
        except ValueError:  # an empty cell: not a shape we can prove inert
            return None
        if len(owners) != 1 or not owners[0].triggered:
            return None
    return len(callbacks)


def classify_timers(index) -> Optional[List[Tuple[float, int, int]]]:
    """Split pending timers into loop sleeps and inert stragglers.

    Returns the stragglers as ``(time, seq, callback_count)`` triples when
    *every* live timer is one or the other, else ``None`` (some timer still
    represents real pending work and the world is not parked).
    """
    loop_keys = _sleeping_loop_keys(index)
    if loop_keys is None:
        return None
    strays: List[Tuple[float, int, int]] = []
    for time, seq, func, arg in index.sim.iter_timers():
        if (time, seq) in loop_keys:
            continue
        if (func is not _fire_timeout and func is not _fire_event) or not isinstance(
            arg, Event
        ):
            return None
        count = _inert_callback_count(arg)
        if count is None:
            return None
        strays.append((time, seq, count))
    return strays


def world_parked(index) -> bool:
    """Whether the deployment is at a parked instant (see module doc)."""
    network = index.network
    # In-flight messages: the network batches every pending delivery under its
    # absolute delivery instant.
    if network._batches:
        return False
    if index.membership.in_flight_count() != 0:
        return False
    if index.split_pressure():
        return False
    # The timer census: every live timer is a sleeping loop or an inert
    # straggler.  This one pass catches everything that is not a dedicated
    # check -- pending RPC expiries, driver timeouts, protocol sleeps.
    if classify_timers(index) is None:
        return False

    # Cheap insurance on protocol bookkeeping the census cannot see (state
    # held in fields rather than timers).  All of these are implied by the
    # census in the current protocols; asserting them directly keeps the
    # barrier honest if a future protocol parks state without a timer.
    for peer in index.membership.live_peers():
        balancer = peer.balancer
        if balancer._balancing or balancer._pending_split is not None:
            return False
        ring = peer.ring
        if getattr(ring, "_pending_insert", None) is not None:
            return False
        if getattr(ring, "_leave_ack_event", None) is not None:
            return False
        if peer.queries._pending:
            return False
    return True


def reach_parked_state(experiment, max_sim_seconds: float = PARK_HORIZON) -> bool:
    """Step to the next parked instant; ``False`` if none within the bound.

    Stepping runs ``sim.run(until=<next timed instant>)`` repeatedly, so the
    world advances exactly as a straight-through run would -- the barrier
    changes *when* the capture happens, never *what* the world does.  On
    ``False`` the caller continues cold without capturing.
    """
    index = experiment.index
    sim = index.sim
    deadline = sim.now + max_sim_seconds
    while True:
        if world_parked(index):
            return True
        upcoming = sim.next_timed_event_time()
        if upcoming is None or upcoming > deadline:
            return False
        sim.run(until=upcoming)


__all__ = [
    "PARK_HORIZON",
    "classify_timers",
    "inert_callback",
    "reach_parked_state",
    "world_parked",
]
