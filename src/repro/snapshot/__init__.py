"""Snapshot/warm-start: capture a deployment's world at a phase boundary.

Scenario iteration keeps re-running an expensive, *identical* prefix: the
build (and settle) phases of a cell are deterministic for a given
``(spec, seed, engine)``, yet every tweak to a stress phase or query mix pays
for them again.  This package captures the complete post-phase world state --
ring and peer state, store contents, membership, pending maintenance timers,
every named RNG stream -- into a versioned on-disk snapshot, and rebuilds a
live world from it whose subsequent execution is *bit-identical* to the
straight-through run (the resume-parity matrix in
``tests/test_snapshot_parity.py`` pins every end-state field, including
``events_processed`` and the per-method RPC profile, on both event engines).

The moving parts:

* :mod:`~repro.snapshot.barrier` -- step the simulation to a *parked* instant
  where the world's only pending obligations are sleeping periodic loops;
* :mod:`~repro.snapshot.capture` / :mod:`~repro.snapshot.codec` -- serialise
  the parked world into a JSON-safe state dict;
* :mod:`~repro.snapshot.restore` -- rebuild a live experiment from that dict
  (construction + overwrite, never replay);
* :mod:`~repro.snapshot.store` -- the on-disk format, keyed by
  ``(spec-build-hash, seed, engine)`` so edited specs silently miss and
  rebuild instead of resuming a stale world.

Only the simulated transport snapshots (the asyncio transport's world is
wall-clock real time); :func:`repro.harness.scenarios.run_spec` gates on that.
"""

from repro.snapshot.barrier import PARK_HORIZON, reach_parked_state, world_parked
from repro.snapshot.capture import capture_world
from repro.snapshot.restore import SnapshotRestoreError, harness_results, restore_world
from repro.snapshot.store import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    build_hash,
    load_snapshot,
    save_snapshot,
    snapshot_path,
)

__all__ = [
    "FORMAT_VERSION",
    "PARK_HORIZON",
    "SNAPSHOT_SUFFIX",
    "SnapshotRestoreError",
    "build_hash",
    "capture_world",
    "harness_results",
    "load_snapshot",
    "reach_parked_state",
    "restore_world",
    "save_snapshot",
    "snapshot_path",
    "world_parked",
]
