"""Rebuild a live world from a captured state dict, exactly.

The restore rebuilds by *construction + overwrite*, never by replay: a fresh
(but empty) experiment is materialised with every periodic-loop arming
deferred, the clock jumps to the captured instant, peers are constructed in
their captured creation order and their component fields overwritten from the
snapshot, and finally the deferred loops are armed in the captured
``(next_fire, arm_seq)`` order so same-instant wakeups keep their captured
tie-break (the engine hands out fresh sequence numbers in arm order, and every
timer armed *after* the restore draws a larger one in both worlds).

Two engine-level fixups make the parity exact rather than approximate:

* arming N loops spawns N processes, and each process start is itself one
  ready-queue event -- so after arming, one ``run(until=T)`` drains exactly
  those N loop-start steps (each parks on its future wakeup timer and yields;
  nothing else is runnable at a parked instant) and ``events_processed`` is
  then overwritten with the captured total;
* the RNG streams are restored *after* peer construction, because creating a
  stream seeds it (:meth:`RngStreams.stream`) while ``setstate`` replaces
  that seed wholesale.

Dead peers were not captured and are not rebuilt: the transports treat an
unknown address exactly like a dead one, so the restored world is
indistinguishable from one that merely never allocated them.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.correctness import QueryRecord
from repro.index.peer import IndexPeer
from repro.snapshot.barrier import inert_callback
from repro.snapshot.codec import (
    decode_peer_components,
    decode_rng_state,
    decode_stats,
)
from repro.transport.endpoint import defer_periodic_loops


class SnapshotRestoreError(RuntimeError):
    """The snapshot disagrees with the world the spec builds (e.g. the loop
    inventory changed); the caller falls back to a cold run."""


def restore_world(spec, seed: int, state: dict):
    """A :class:`ClusterExperiment` whose world *is* the captured one.

    Raises :class:`SnapshotRestoreError` on any structural disagreement
    between the snapshot and the freshly built experiment.
    """
    from repro.harness.scenarios import build_experiment  # late: avoid import cycle

    with defer_periodic_loops() as deferred:
        experiment = build_experiment(spec, seed)
        index = experiment.index
        sim = index.sim
        captured_now = state["sim"]["now"]
        sim.advance_idle(captured_now)

        # Peers, in captured creation (= _live) order.  Constructing an
        # endpoint registers it on the network; its loop armings land in
        # ``deferred``.  Component state is overwritten wholesale afterwards.
        membership = index.membership
        peers = []
        for data in state["peers"]:
            address = data["address"]
            peer = IndexPeer(
                sim=sim,
                network=index.network,
                address=address,
                value=data["ring"]["value"],
                config=index.config,
                rng=index.rngs.stream(f"peer:{address}"),
                pool_address=index.pool.address,
                metrics=index.metrics,
                history=index.history,
            )
            index.peers[address] = peer
            decode_peer_components(data, peer)
            peer.ring.membership = membership
            peers.append(peer)
        index._next_peer = state["next_peer"]
        index._bootstrapped = True

        # Membership sets: rebuilt directly in their captured insertion orders
        # (free_peers()/live_peers() iterate them).  The sorted member list is
        # order-independent by construction; nothing is in flight when parked.
        by_address = {peer.address: peer for peer in peers}
        m = state["membership"]
        membership._live = dict(by_address)
        membership._free = {address: by_address[address] for address in m["free_order"]}
        membership._members = {address: by_address[address] for address in m["members_order"]}
        membership._member_value = {address: value for address, value in m["member_value"]}
        membership._sorted = sorted(
            (value, address) for address, value in membership._member_value.items()
        )
        membership._in_flight = {}
        membership.transition_count = m["transition_count"]

        # Ring lifecycle machinery that decode_ring left alone: maintenance
        # loops (their armings must land in ``deferred``) and the joined
        # event (succeeding an event nobody waits on touches no queues).
        for data, peer in zip(state["peers"], peers):
            if data["ring"]["maintenance_started"]:
                peer.ring._start_maintenance()
            if data["ring"]["joined"]:
                peer.ring._joined_event.succeed(peer.address)

        # RNG streams last (see module doc); stream() creates missing ones.
        for name, encoded in state["rngs"].items():
            index.rngs.stream(name).setstate(decode_rng_state(encoded))

        decode_stats(state["stats"], index.network.stats)
        index.network._next_request_id = state["next_request_id"]
        index.pool._free = list(state["pool_free"])
        index.metrics._series = {
            name: list(values) for name, values in state["metrics"].items()
        }
        experiment.inserted_keys = list(state["inserted_keys"])
        experiment.deleted_keys = list(state["deleted_keys"])
        index.query_records = [
            QueryRecord(lb, ub, start_time, end_time, list(result_keys))
            for lb, ub, start_time, end_time, result_keys in state["query_records"]
        ]

    # Inert stragglers first (their cold-world sequence numbers predate the
    # loop timers' current ones): bare timers whose firing costs exactly what
    # the captured straggler's would -- one pop plus `count` no-op callbacks.
    for fire_time, count in state.get("strays", ()):
        event = sim.timeout_at(fire_time)
        for _ in range(count):
            event._add_callback(inert_callback)

    # Arm the deferred loops in the captured (next_fire, arm_seq) order.
    registry = {}
    for endpoint, record in deferred:
        key = (endpoint.address, record.name)
        if key in registry:
            raise SnapshotRestoreError(f"duplicate periodic loop {key!r}")
        registry[key] = (endpoint, record)
    captured = state["loops"]
    captured_keys = {(address, name) for address, name, _fire, _seq in captured}
    if captured_keys != set(registry):
        missing = sorted(captured_keys - set(registry))
        extra = sorted(set(registry) - captured_keys)
        raise SnapshotRestoreError(
            f"loop inventory mismatch: snapshot-only {missing!r}, world-only {extra!r}"
        )
    for address, name, next_fire, _arm_seq in sorted(captured, key=lambda e: (e[2], e[3])):
        endpoint, record = registry[(address, name)]
        endpoint.arm_loop(record, resume_at=next_fire)

    # Drain the N loop-start ready entries, then pin the event counter.
    sim.run(until=captured_now)
    sim.events_processed = state["sim"]["events_processed"]
    return experiment


def harness_results(state: dict) -> Tuple[list, list, List[str]]:
    """The pre-boundary driver results, reconstituted for a warm run's report.

    Outcomes come back with their scalar fields only (no per-key lists, no
    :class:`QueryRecord` cross-reference) -- enough for every aggregate the
    scenario report computes.
    """
    from repro.harness.experiment import QueryOutcome
    from repro.harness.phases import PhaseResult

    harness = state["harness"]
    results = [PhaseResult(**data) for data in harness["phase_results"]]
    outcomes = [
        QueryOutcome(
            lb=lb, ub=ub, hops=hops, elapsed=elapsed,
            scan_elapsed=scan_elapsed, complete=complete,
        )
        for lb, ub, hops, elapsed, scan_elapsed, complete in harness["outcomes"]
    ]
    return results, outcomes, list(harness["victims"])


__all__ = ["SnapshotRestoreError", "harness_results", "restore_world"]
