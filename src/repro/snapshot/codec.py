"""Per-component encode/decode between live world state and JSON-safe dicts.

Every encoder produces plain lists/dicts/scalars (JSON round-trips Python
floats exactly via ``repr`` shortest-round-trip, so no precision is lost);
every decoder writes the captured values straight back onto a freshly
constructed component through *direct field writes* -- never through the
mutation APIs (``store_local``, ``_set_state``, ``track``...), whose side
effects (overflow callbacks, membership notifications, history records)
already happened before the snapshot was taken and must not happen again.

Two representation rules keep the format unambiguous:

* dicts with non-string keys (float skv maps, ``(value, stamp)`` tuples) are
  serialised as pair *lists* in insertion order -- JSON objects would coerce
  the keys to strings and lose the ordering guarantee;
* ``None`` consistently means "this sub-component is absent/stateless on this
  configuration" (no redirect cache, fixed cadence, inactive store range).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.datastore.items import Item, ItemStore
from repro.datastore.ranges import CircularRange
from repro.maintenance.cadence import AdaptiveCadence
from repro.ring.entries import SuccessorEntry

# ------------------------------------------------------------------ RNG streams


def encode_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` -> JSON list (version, key tuple, gauss)."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def decode_rng_state(data: list) -> tuple:
    """Inverse of :func:`encode_rng_state` (exact: ints and None survive JSON)."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


# ------------------------------------------------------------------ item stores


def encode_item_store(store: ItemStore) -> dict:
    """Items in key order plus the mutation counter observers compare."""
    return {
        "items": [[item.skv, item.payload] for item in store.all_items()],
        "version": store.version,
    }


def decode_item_store(data: dict, store: ItemStore) -> None:
    """Refill ``store`` in place; ``version`` is restored *after* the adds

    (each ``add`` bumps it) so replication-refresh fingerprints that compare
    against the captured counter still match.
    """
    for skv, payload in data["items"]:
        store.add(Item(skv=skv, payload=payload))
    store.version = data["version"]


# ------------------------------------------------------------------ ranges / cadences


def encode_range(crange: Optional[CircularRange]) -> Optional[list]:
    return None if crange is None else [crange.low, crange.high, crange.full]


def decode_range(data: Optional[list]) -> Optional[CircularRange]:
    return None if data is None else CircularRange(data[0], data[1], full=bool(data[2]))


def encode_cadence(cadence) -> Optional[list]:
    """Adaptive controllers carry state; fixed/RTT-scaled ones are pure."""
    if isinstance(cadence, AdaptiveCadence):
        return [cadence._interval, cadence._successes]
    return None


def decode_cadence(data: Optional[list], cadence) -> None:
    if data is not None and isinstance(cadence, AdaptiveCadence):
        cadence._interval = data[0]
        cadence._successes = data[1]


# ------------------------------------------------------------------ ring


def encode_ring(ring) -> dict:
    redirect_cache = ring._redirect_cache
    state: Dict[str, Any] = {
        "value": ring.value,
        "state": ring.state,
        "succ_list": [
            [entry.address, entry.value, entry.state, entry.stabilized]
            for entry in ring.succ_list
        ],
        "pred_address": ring.pred_address,
        "pred_value": ring.pred_value,
        "heard_from": [[address, stamp] for address, stamp in ring._heard_from.items()],
        "confirmed_at": [
            [address, stamp] for address, stamp in ring._confirmed_at.items()
        ],
        "redirect_cache": (
            None
            if redirect_cache is None
            else [
                [address, value, stamp]
                for address, (value, stamp) in redirect_cache._entries.items()
            ]
        ),
        "succ_cadence": encode_cadence(ring._succ_cadence),
        "maintenance_started": ring._maintenance_started,
        "joined": ring._joined_event.triggered,
    }
    last_received = getattr(ring, "_last_received_addresses", None)
    state["last_received"] = None if last_received is None else sorted(last_received)
    rider_seen = getattr(ring, "_rider_seen", None)  # PepperRing only
    if rider_seen is not None:
        state["rider_seen"] = [[address, stamp] for address, stamp in rider_seen.items()]
    return state


def decode_ring(data: dict, ring) -> None:
    """Direct field writes: membership/listeners are rebuilt separately."""
    ring.value = data["value"]
    ring.state = data["state"]
    ring.succ_list = [
        SuccessorEntry(address, value, state, stabilized)
        for address, value, state, stabilized in data["succ_list"]
    ]
    ring.pred_address = data["pred_address"]
    ring.pred_value = data["pred_value"]
    ring._heard_from = {address: stamp for address, stamp in data["heard_from"]}
    ring._confirmed_at = {address: stamp for address, stamp in data["confirmed_at"]}
    if data["redirect_cache"] is not None and ring._redirect_cache is not None:
        entries = ring._redirect_cache._entries
        entries.clear()
        for address, value, stamp in data["redirect_cache"]:
            entries[address] = (value, stamp)
    decode_cadence(data["succ_cadence"], ring._succ_cadence)
    if data["last_received"] is not None:
        ring._last_received_addresses = set(data["last_received"])
    if data.get("rider_seen") is not None and hasattr(ring, "_rider_seen"):
        ring._rider_seen = {address: stamp for address, stamp in data["rider_seen"]}
    # _maintenance_started and _joined_event are restored by the world-level
    # restore (arming the maintenance loops needs the defer context).


# ------------------------------------------------------------------ data store


def encode_datastore(store) -> dict:
    return {
        "active": store.active,
        "range": encode_range(store.range),
        "store": encode_item_store(store.items),
    }


def decode_datastore(data: dict, store) -> None:
    store.active = data["active"]
    store.range = decode_range(data["range"])
    decode_item_store(data["store"], store.items)


# ------------------------------------------------------------------ replication


def encode_replication(replication) -> dict:
    return {
        "replicas": encode_item_store(replication.replicas),
        "freshness": [[skv, stamp] for skv, stamp in replication._freshness.items()],
        "tombstones": [[skv, stamp] for skv, stamp in replication._tombstones.items()],
        "last_push": (
            [replication._last_push[0], list(replication._last_push[1])]
            if replication._last_push
            else None
        ),
        "pushes_skipped": replication._pushes_skipped,
        "push_state": [
            [owner, version, stamp, list(keys)]
            for owner, (version, stamp, keys) in replication._push_state.items()
        ],
    }


def decode_replication(data: dict, replication) -> None:
    decode_item_store(data["replicas"], replication.replicas)
    replication._freshness = {skv: stamp for skv, stamp in data["freshness"]}
    replication._tombstones = {skv: stamp for skv, stamp in data["tombstones"]}
    last_push = data["last_push"]
    replication._last_push = () if last_push is None else (last_push[0], tuple(last_push[1]))
    replication._pushes_skipped = data["pushes_skipped"]
    # Absent in snapshots captured before the serve layer existed; an empty
    # map just sends early replica reads back to the primary.
    replication._push_state = {
        owner: (version, stamp, tuple(keys))
        for owner, version, stamp, keys in data.get("push_state", [])
    }


# ------------------------------------------------------------------ router / balancer / queries


def encode_router(router) -> dict:
    """Hierarchical routers carry a table + cadence; the linear one is pure."""
    table = getattr(router, "table", None)
    return {
        "table": None if table is None else [[address, value] for address, value in table],
        "cadence": encode_cadence(getattr(router, "_cadence", None)),
    }


def decode_router(data: dict, router) -> None:
    if data["table"] is not None and hasattr(router, "table"):
        router.table = [(address, value) for address, value in data["table"]]
    cadence = getattr(router, "_cadence", None)
    if cadence is not None:
        decode_cadence(data["cadence"], cadence)


def encode_balancer(balancer) -> dict:
    """Only the between-rounds state; a parked world has no split in flight."""
    return {
        "defer_until": balancer._defer_until,
        "defer_cadence": encode_cadence(balancer._defer_cadence),
    }


def decode_balancer(data: dict, balancer) -> None:
    balancer._defer_until = data["defer_until"]
    decode_cadence(data["defer_cadence"], balancer._defer_cadence)


# ------------------------------------------------------------------ whole peer


def encode_peer(peer) -> dict:
    return {
        "address": peer.address,
        "ring": encode_ring(peer.ring),
        "store": encode_datastore(peer.store),
        "replication": encode_replication(peer.replication),
        "router": encode_router(peer.router),
        "balancer": encode_balancer(peer.balancer),
        "next_query": peer.queries._next_query,
    }


def decode_peer_components(data: dict, peer) -> None:
    """Everything except loop arming and membership wiring (world-level)."""
    decode_ring(data["ring"], peer.ring)
    decode_datastore(data["store"], peer.store)
    decode_replication(data["replication"], peer.replication)
    decode_router(data["router"], peer.router)
    decode_balancer(data["balancer"], peer.balancer)
    peer.queries._next_query = data["next_query"]


# ------------------------------------------------------------------ network stats

_STATS_SCALARS = (
    "messages_sent",
    "messages_dropped",
    "rpc_calls",
    "rpc_timeouts",
    "delivery_batches",
    "latency_sum",
    "latency_samples",
)


def encode_stats(stats) -> dict:
    data = {name: getattr(stats, name) for name in _STATS_SCALARS}
    data["per_method"] = dict(stats.per_method)
    data["per_site_rpcs"] = dict(stats.per_site_rpcs)
    return data


def decode_stats(data: dict, stats) -> None:
    for name in _STATS_SCALARS:
        setattr(stats, name, data[name])
    stats.per_method = dict(data["per_method"])
    stats.per_site_rpcs = dict(data["per_site_rpcs"])


__all__ = [
    "decode_balancer",
    "decode_cadence",
    "decode_datastore",
    "decode_item_store",
    "decode_peer_components",
    "decode_range",
    "decode_replication",
    "decode_ring",
    "decode_rng_state",
    "decode_router",
    "decode_stats",
    "encode_balancer",
    "encode_cadence",
    "encode_datastore",
    "encode_item_store",
    "encode_peer",
    "encode_range",
    "encode_replication",
    "encode_ring",
    "encode_rng_state",
    "encode_router",
    "encode_stats",
]
