"""Capture a parked world into one JSON-safe state dict.

The capture runs at a *parked* instant (see :mod:`repro.snapshot.barrier`):
every pending obligation in the deployment is a sleeping periodic loop, so the
complete continuation state is the loop registry plus plain component fields.
Dead peers are not serialised -- the network treats an unregistered address
exactly like a dead one, and nothing in the index iterates over dead entries
-- so a restored world simply never knew them (their stale sleep timers have
already fired by the time the barrier admits a capture).

The ``harness`` section carries the driver-level results of the pre-boundary
phases so a warm run can splice them into its report: phase records as plain
dicts, query outcomes reduced to their scalar fields (the per-key lists and
:class:`~repro.core.correctness.QueryRecord` cross-checks of old queries are
not needed to *continue* a run; the authoritative query log lives in
``query_records``).
"""

from __future__ import annotations

from repro.snapshot.barrier import classify_timers
from repro.snapshot.codec import encode_peer, encode_rng_state, encode_stats


def capture_world(
    experiment,
    phase_results=(),
    outcomes=(),
    victims=(),
) -> dict:
    """Serialise ``experiment``'s world at the current (parked) instant."""
    index = experiment.index
    sim = index.sim
    membership = index.membership
    network = index.network

    strays = classify_timers(index)
    if strays is None:
        raise RuntimeError("capture_world called on a world that is not parked")

    live_order = list(membership._live)
    loops = []
    endpoints = [membership._live[address] for address in live_order]
    if index.rebalancer is not None:
        endpoints.append(index.rebalancer)
    for endpoint in endpoints:
        for record in endpoint._loops:
            process = record.process
            if process is None or not process.alive or record.next_fire is None:
                continue
            loops.append([endpoint.address, record.name, record.next_fire, record.arm_seq])

    return {
        "sim": {"now": sim.now, "events_processed": sim.events_processed},
        "rngs": {
            name: encode_rng_state(stream.getstate())
            for name, stream in index.rngs._streams.items()
        },
        "stats": encode_stats(network.stats),
        "next_request_id": network._next_request_id,
        "pool_free": list(index.pool._free),
        "next_peer": index._next_peer,
        "peers": [encode_peer(membership._live[address]) for address in live_order],
        "membership": {
            "free_order": list(membership._free),
            "members_order": list(membership._members),
            "member_value": [
                [address, value] for address, value in membership._member_value.items()
            ],
            "transition_count": membership.transition_count,
        },
        "loops": loops,
        # Inert stragglers (see repro.snapshot.barrier): each fires as a pure
        # event-counter bump of 1 + callback_count, reproduced at restore by
        # a bare timer carrying that many no-op callbacks.
        "strays": [
            [time, count] for time, _seq, count in sorted(strays, key=lambda s: (s[0], s[1]))
        ],
        "metrics": {name: list(values) for name, values in index.metrics._series.items()},
        "inserted_keys": list(experiment.inserted_keys),
        "deleted_keys": list(experiment.deleted_keys),
        "query_records": [
            [record.lb, record.ub, record.start_time, record.end_time, list(record.result_keys)]
            for record in index.query_records
        ],
        "harness": {
            "phase_results": [result.as_dict() for result in phase_results],
            "outcomes": [
                [o.lb, o.ub, o.hops, o.elapsed, o.scan_elapsed, o.complete] for o in outcomes
            ],
            "victims": list(victims),
        },
    }


__all__ = ["capture_world"]
