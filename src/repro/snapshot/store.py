"""On-disk snapshot store: versioned, keyed by ``(spec-build-hash, seed, engine)``.

A snapshot file is gzipped JSON::

    {
      "format_version": 1,
      "build_hash": "<16 hex chars>",
      "seed": 3,
      "engine": "heap",
      "state": { ... }          # the world dict built by repro.snapshot.capture
    }

The **build hash** digests everything that shapes the world *up to the capture
boundary*: the spec with its identity knobs normalised out (seed, engine and
transport live in the filename/envelope instead; ``warm_start`` is a pure
runner knob), the pre-boundary phase list, the peer total and the format
version.  Editing a spec -- a period, a workload, a config override -- changes
the repr, hence the hash, hence the filename: stale snapshots are never
*loaded*, they are simply never looked up again (and a later cold run writes
the new file alongside).  Dataclass reprs are deterministic for the plain-data
specs involved, and a hash mismatch only ever costs a cold rebuild, never
correctness.

:func:`load_snapshot` is deliberately paranoid: *any* failure -- missing file,
truncated gzip, invalid JSON, wrong version, wrong key -- returns ``None`` so
the caller falls back to a cold run.  Corruption must never crash a scenario.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import zlib
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

#: Bump on any change to the state dict layout or the codec representations.
FORMAT_VERSION = 1

#: Snapshot filename suffix.
SNAPSHOT_SUFFIX = ".snap.gz"


def build_hash(spec, pre_phases: Sequence) -> str:
    """Digest of everything shaping the pre-boundary world (see module doc)."""
    from repro.harness.scenarios import TransportSpec  # late: avoid import cycle

    normalized = replace(
        spec,
        seed=0,
        engine="heap",
        transport=TransportSpec(),
        phases=(),
        warm_start=True,
    )
    blob = repr((FORMAT_VERSION, normalized, tuple(pre_phases), spec.peers))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def snapshot_path(directory, name: str, key: str, seed: int, engine: str) -> Path:
    """``<dir>/<scenario>-<hash>-s<seed>-<engine>.snap.gz``."""
    return Path(directory) / f"{name}-{key}-s{seed}-{engine}{SNAPSHOT_SUFFIX}"


def save_snapshot(path, key: str, seed: int, engine: str, state: dict) -> None:
    """Write atomically (tmp + rename): a killed run never leaves a torn file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "build_hash": key,
        "seed": seed,
        "engine": engine,
        "state": state,
    }
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed dump above; never leave droppings
            tmp.unlink()


def load_snapshot(path, key: str, seed: int, engine: str) -> Optional[dict]:
    """The state dict, or ``None`` for *any* miss/mismatch/corruption."""
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, EOFError, ValueError, zlib.error):
        # Missing file, truncated/forged gzip stream, or invalid JSON/UTF-8.
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("format_version") != FORMAT_VERSION:
        return None
    if (
        payload.get("build_hash") != key
        or payload.get("seed") != seed
        or payload.get("engine") != engine
    ):
        return None
    state = payload.get("state")
    return state if isinstance(state, dict) else None


__all__ = [
    "FORMAT_VERSION",
    "SNAPSHOT_SUFFIX",
    "build_hash",
    "load_snapshot",
    "save_snapshot",
    "snapshot_path",
]
