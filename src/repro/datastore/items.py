"""Items and the per-peer sorted item container.

Each data item exposes a search key value (``skv``) from a totally ordered
domain (Section 2.1); search key values are unique (the paper makes duplicates
unique by appending the originating peer's id, which our workload generators do
as well by drawing unique keys).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.datastore.ranges import CircularRange


@dataclass(frozen=True)
class Item:
    """A data item: a search key value plus an opaque payload."""

    skv: float
    payload: Any = field(default=None, compare=False, hash=False)

    def to_wire(self) -> Dict[str, Any]:
        """Serialise for RPC payloads."""
        return {"skv": self.skv, "payload": self.payload}

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "Item":
        """Inverse of :meth:`to_wire`."""
        return Item(skv=data["skv"], payload=data.get("payload"))


def items_to_wire(items: Iterable[Item]) -> List[Dict[str, Any]]:
    """Serialise a collection of items."""
    return [item.to_wire() for item in items]


def items_from_wire(data: Iterable[Dict[str, Any]]) -> List[Item]:
    """Deserialise a collection of items."""
    return [Item.from_wire(entry) for entry in data]


class ItemStore:
    """A sorted collection of items keyed by search key value.

    Supports the operations the Data Store needs: point insert/delete, count,
    median (for splits), and range extraction both by linear ``(lo, hi]``
    interval and by :class:`~repro.datastore.ranges.CircularRange`.
    """

    def __init__(self, items: Optional[Iterable[Item]] = None):
        self._by_key: Dict[float, Item] = {}
        self._keys: List[float] = []
        # Bumped on every successful mutation; lets observers (the Replication
        # Manager's refresh) detect "nothing changed" without comparing items.
        self.version = 0
        if items:
            for item in items:
                self.add(item)

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, skv: float) -> bool:
        return skv in self._by_key

    def __iter__(self):
        return (self._by_key[key] for key in self._keys)

    def add(self, item: Item) -> bool:
        """Insert ``item``; returns False if an item with the same skv exists."""
        if item.skv in self._by_key:
            return False
        self._by_key[item.skv] = item
        bisect.insort(self._keys, item.skv)
        self.version += 1
        return True

    def remove(self, skv: float) -> Optional[Item]:
        """Remove and return the item with key ``skv`` (None if absent)."""
        item = self._by_key.pop(skv, None)
        if item is not None:
            index = bisect.bisect_left(self._keys, skv)
            del self._keys[index]
            self.version += 1
        return item

    def get(self, skv: float) -> Optional[Item]:
        """The item with key ``skv``, if present."""
        return self._by_key.get(skv)

    def keys(self) -> List[float]:
        """All keys in ascending order (a copy)."""
        return list(self._keys)

    def all_items(self) -> List[Item]:
        """All items in ascending key order."""
        return [self._by_key[key] for key in self._keys]

    def clear(self) -> None:
        """Remove everything."""
        self._by_key.clear()
        self._keys.clear()
        self.version += 1

    # ------------------------------------------------------------------ range queries
    def items_in_interval(self, lo: float, hi: float) -> List[Item]:
        """Items with ``lo < skv <= hi`` (half-open, non-wrapping)."""
        if lo >= hi:
            return []
        left = bisect.bisect_right(self._keys, lo)
        right = bisect.bisect_right(self._keys, hi)
        return [self._by_key[key] for key in self._keys[left:right]]

    def items_in_range(self, crange: CircularRange) -> List[Item]:
        """Items whose key falls inside the (possibly wrapping) ``crange``."""
        if crange.full:
            return self.all_items()
        if not crange.wraps():
            return self.items_in_interval(crange.low, crange.high)
        upper_arm = [self._by_key[key] for key in self._keys if key > crange.low]
        lower_arm = [self._by_key[key] for key in self._keys if key <= crange.high]
        return lower_arm + upper_arm

    def split_lower_half(self) -> tuple[float, List[Item]]:
        """Return ``(split_key, lower_items)`` for a Data Store split.

        The split key is the median key; the returned items are those with
        ``skv <= split_key`` (the portion handed to the free peer, which takes
        the lower range ``(old_low, split_key]``).
        """
        if len(self._keys) < 2:
            raise ValueError("cannot split a store with fewer than two items")
        middle = (len(self._keys) - 1) // 2
        split_key = self._keys[middle]
        lower = [self._by_key[key] for key in self._keys[: middle + 1]]
        return split_key, lower

    def take_lowest(self, count: int) -> List[Item]:
        """Remove and return the ``count`` items with the smallest keys."""
        taken_keys = self._keys[:count]
        taken = [self._by_key.pop(key) for key in taken_keys]
        del self._keys[:count]
        if taken:
            self.version += 1
        return taken

    def remove_interval(self, lo: float, hi: float) -> List[Item]:
        """Remove and return all items with ``lo < skv <= hi``."""
        victims = self.items_in_interval(lo, hi)
        for item in victims:
            self.remove(item.skv)
        return victims

    def remove_outside_range(self, crange: CircularRange) -> List[Item]:
        """Remove and return all items whose key is *not* in ``crange``."""
        victims = [item for item in self.all_items() if not crange.contains(item.skv)]
        for item in victims:
            self.remove(item.skv)
        return victims
