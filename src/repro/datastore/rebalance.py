"""Global rebalancer: harvest FREE peers to relieve loaded ring members.

At saturation scale (5000 peers, average store just under the overflow
threshold) hundreds of peers sit FREE while loaded members defer splits --
the overflow trigger only fires when a store crosses ``2*sf``, so a ring
whose members all hold *exactly* ``2*sf`` items never recruits its spare
capacity.  The :class:`GlobalRebalancer` closes that gap proactively: it
periodically picks the most loaded ring member that can spare a coherent
lower slice of its range and moves that slice onto a free peer.

Like the :class:`~repro.datastore.maintenance.FreePeerPool`, the rebalancer
is modelled as an addressable service: victim selection reads the membership
directory, but every item and range movement happens through RPCs between the
peers themselves --

1. ``pool_acquire`` reserves a free peer,
2. ``ds_bulk_get`` *copies* the victim's lower slice out and records a
   pending transfer on the victim (nothing is deleted),
3. ``ds_bulk_put`` activates the free peer with the slice; it joins the ring
   and confirms back to the victim, whose waiter then runs the split delete
   phase.

The move-then-delete ordering means a crash at any point loses nothing: a
dead receiver leaves the victim's copies (and pending transfer timeout)
intact; a dead victim leaves the receiver as the sole owner of the moved
slice.

Pacing reuses :class:`~repro.maintenance.cadence.AdaptiveCadence`: a round
that moved at least one range keeps the base period, idle rounds back off
multiplicatively up to ``rebalance_backoff_max`` so a quiescent ring costs
(almost) nothing.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.maintenance.cadence import AdaptiveCadence
from repro.transport import Endpoint, RpcError

#: Transfer keys forwarded verbatim from a ``ds_bulk_get`` response into the
#: receiving peer's ``ds_bulk_put`` payload.
_TRANSFER_KEYS = ("value", "range", "items", "join_via", "notify")


class GlobalRebalancer(Endpoint):
    """A background coordinator that moves key ranges onto free peers."""

    def __init__(
        self,
        sim,
        network,
        membership,
        pool_address: str,
        config,
        metrics=None,
        history=None,
        address: str = "rebalancer",
    ):
        super().__init__(sim, network, address)
        self.membership = membership
        self.pool_address = pool_address
        self.config = config
        self.metrics = metrics
        self.history = history
        self.cadence = AdaptiveCadence(
            base=config.rebalance_period,
            growth=2.0,
            max_factor=config.rebalance_backoff_max,
            success_threshold=1,
        )
        self.moves_started = 0
        self.moves_completed = 0
        # ``every`` consults the cadence before each round and waits for the
        # (generator) round to finish before sleeping, so rounds never overlap.
        self.every(self.cadence.interval, self._round, name="rebalance")

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    # ------------------------------------------------------------------ rounds
    def _round(self):
        """One rebalancer round: up to ``rebalance_batch`` range moves."""
        moved = 0
        skip: Set[str] = set()
        for _ in range(self.config.rebalance_batch):
            picked = self._pick_victim(skip)
            if picked is None:
                break
            victim, victim_count = picked
            skip.add(victim)
            ok = yield from self._move_range(victim, victim_count)
            if ok:
                moved += 1
        if moved:
            self.moves_completed += moved
            if self.metrics is not None:
                self.metrics.record("rebalance_moves", moved)
            self.cadence.note_change()  # stay at base while productive
        else:
            self.cadence.note_success()  # quiescent ring: back off

    def _pick_victim(self, skip: Set[str]):
        """The most loaded ring member that can spare a bulk slice, or None.

        Reads the membership directory (the modelled equivalent of the load
        reports a deployed rebalancer would aggregate).  Iterating members in
        ring order with a strict ``>`` makes the choice deterministic.
        Returns ``(address, item_count)`` or ``None``.
        """
        if not self.membership.free_peers():
            return None
        spare_floor = 2 * self.config.storage_factor
        best: Optional[str] = None
        best_count = 0
        for peer in self.membership.ring_members():
            if peer.address in skip:
                continue
            count = peer.store.item_count()
            if count >= spare_floor and count > best_count:
                best = peer.address
                best_count = count
        if best is None:
            return None
        return best, best_count

    def _move_range(self, victim: str, victim_count: int):
        """Move the victim's lower slice onto a freshly acquired free peer."""
        try:
            response = yield self.call(self.pool_address, "pool_acquire", {})
        except RpcError:
            return False
        free_address = response.get("address")
        if free_address is None:
            return False
        try:
            bulk = yield self.call(
                victim,
                "ds_bulk_get",
                {"new_peer": free_address, "max_items": victim_count // 2},
            )
        except RpcError:
            bulk = None
        if not bulk or not bulk.get("ok"):
            # Nothing was moved (victim busy, underloaded, or unreachable):
            # return the reserved free peer for the next attempt.
            yield from self._release(free_address)
            return False
        self.moves_started += 1
        self._record_op(
            "rebalance_move",
            victim=victim,
            to_peer=free_address,
            split_key=bulk["value"],
            count=len(bulk["items"]),
        )
        try:
            put = yield self.call(
                free_address,
                "ds_bulk_put",
                {key: bulk[key] for key in _TRANSFER_KEYS},
            )
        except RpcError:
            # The receiver died before absorbing anything.  The victim's
            # pending-transfer waiter times out and it keeps its items:
            # move-then-delete means nothing is lost.
            return False
        if not put.get("accepted"):
            yield from self._release(free_address)
            return False
        return True

    def _release(self, address: str):
        try:
            yield self.call(self.pool_address, "pool_release", {"address": address})
        except RpcError:
            pass
