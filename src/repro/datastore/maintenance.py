"""Storage balancing: split, merge and redistribute (Section 2.3).

The P-Ring Data Store keeps every live peer's item count between ``sf`` and
``2*sf``.  The :class:`StorageBalancer` component implements the three
maintenance operations:

* **Split** -- an overflowing peer acquires a free peer from the
  :class:`FreePeerPool`, hands it the lower half of its range and items, and
  the free peer joins the ring as the successor of the splitting peer's
  predecessor (using whichever ``insertSucc`` protocol the configuration
  selects).
* **Redistribute** -- an underflowing peer asks its successor for items; the
  successor gives up its lowest items and the boundary (the underflowing
  peer's ring value) moves up.
* **Merge** -- if the successor cannot spare items, the underflowing peer
  transfers everything it has to the successor, replicates the items it holds
  one additional hop (Section 5.2, when enabled), performs the ring ``leave``
  (availability-preserving or naive, per configuration), and returns itself to
  the free-peer pool.

Two repair paths complement the three paper operations (see
docs/ARCHITECTURE.md, "Shed and rebalance"):

* **Shed** -- the periodic check routes *ring-stranded* copies (items below
  the effective ring boundary after a half-completed split; counted by
  ``total_stored_items()`` but invisible to ``scan_range``) back to their
  responsible owner through the normal store path, and drops the local copy
  only after a version-checked ack.
* **Bulk transfer** -- ``ds_bulk_get`` / ``ds_bulk_put`` let the global
  rebalancer (:class:`repro.datastore.rebalance.GlobalRebalancer`) move the
  lower slice of a loaded peer's range onto a FREE peer with move-then-delete
  ordering, reusing the split's pending-transfer/confirmation machinery.

The merge path is exactly what Figure 22 measures and what the availability
ablations stress.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datastore.items import items_from_wire, items_to_wire
from repro.datastore.ranges import CircularRange
from repro.datastore.store import DataStore
from repro.index.config import IndexConfig
from repro.maintenance.cadence import AdaptiveCadence
from repro.ring.chord import ChordRing
from repro.transport import Endpoint, RpcError


class FreePeerPool(Endpoint):
    """A directory of free peers (P-Ring keeps spare peers outside the ring).

    Modelled as an addressable service so that acquiring/releasing free peers
    remains message-based like everything else in the system.
    """

    def __init__(self, sim, network, address: str = "pool"):
        super().__init__(sim, network, address)
        self._free: List[str] = []

    def add(self, address: str) -> None:
        """Register a free peer (done by the cluster facade on peer arrival)."""
        if address not in self._free:
            self._free.append(address)

    def available(self) -> int:
        """Number of free peers currently available."""
        return len(self._free)

    def rpc_pool_acquire(self, payload, request):
        """RPC: hand out one free peer (or none)."""
        if not self._free:
            return {"address": None}
        return {"address": self._free.pop(0)}

    def rpc_pool_release(self, payload, request):
        """RPC: a peer merged away and is free again."""
        self.add(payload["address"])
        return {"ok": True}


class StorageBalancer:
    """Split / merge / redistribute orchestration for one peer."""

    def __init__(
        self,
        node: Endpoint,
        ring: ChordRing,
        store: DataStore,
        replication,
        config: IndexConfig,
        pool_address: Optional[str],
        router=None,
        metrics=None,
        history=None,
    ):
        self.node = node
        self.ring = ring
        self.store = store
        self.replication = replication
        self.config = config
        self.pool_address = pool_address
        self.router = router
        self.metrics = metrics
        self.history = history

        self._balancing = False
        self._pending_split: Optional[Dict] = None
        # Deferral backoff (periodic path only): a deferred split -- no free
        # peer, or an overflow made of ring-stranded items -- used to be
        # retried on every balancer round, hot-spinning the periodic check at
        # saturation.  Consecutive deferrals now back the retry off
        # multiplicatively; an overflow event (a new insert) still triggers an
        # immediate attempt, and a started split resets the backoff.
        self._defer_until = 0.0
        self._defer_cadence = AdaptiveCadence(
            base=max(config.stabilization_period, 2.0),
            growth=2.0,
            max_factor=8.0,
            success_threshold=1,
        )

        store.on_overflow = self.schedule_split
        store.on_underflow = self.schedule_merge
        store.on_range_changed = self.schedule_shed

        node.register_handler("ds_activate", self._handle_activate)
        node.register_handler("ds_split_complete", self._handle_split_complete)
        node.register_handler("ds_redistribute_request", self._handle_redistribute_request)
        node.register_handler("ds_absorb_items", self._handle_absorb_items)
        node.register_handler("ds_bulk_get", self._handle_bulk_get)
        node.register_handler("ds_bulk_put", self._handle_bulk_put)

        # Periodic safety net: re-check thresholds in case a triggered attempt
        # aborted (no free peers, busy successor, transient failures).
        node.every(
            max(config.stabilization_period, 2.0),
            self._periodic_check,
            jitter=config.stabilization_jitter,
            name="ds-balance-check",
        )

    # ------------------------------------------------------------------ helpers
    @property
    def address(self) -> str:
        return self.node.address

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    def _record_metric(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.record(name, value)

    # ------------------------------------------------------------------ triggers
    def schedule_split(self) -> None:
        """Request a split attempt (called on overflow)."""
        if not self._balancing:
            self.node.spawn(self.maybe_split(), name="ds-split")

    def schedule_merge(self) -> None:
        """Request a merge/redistribute attempt (called on underflow)."""
        if not self._balancing:
            self.node.spawn(self.maybe_merge(), name="ds-merge")

    def schedule_shed(self) -> None:
        """Request a shed pass (called when a range boundary moves).

        Event-driven so a boundary shrink that strands copies near the end of
        a run is healed immediately instead of waiting out a periodic round.
        """
        if not self._balancing and self._shed_due():
            self.node.spawn(self.maybe_shed(), name="ds-shed")

    def _periodic_check(self) -> None:
        if self._balancing or not self.store.active:
            return
        count = self.store.item_count()
        if count > self.config.overflow_threshold and self.node.sim.now >= self._defer_until:
            self.schedule_split()
        elif count < self.config.underflow_threshold:
            self.schedule_merge()
        elif self._shed_due():
            self.node.spawn(self.maybe_shed(), name="ds-shed")

    # ------------------------------------------------------------------ split
    def maybe_split(self):
        """Split the local range with a free peer if still overflowing."""
        if self._balancing or self._pending_split is not None:
            return
        if self.pool_address is None:
            return
        shed_instead = False
        self._balancing = True
        try:
            yield self.store.range_lock.acquire_write()
            try:
                if (
                    not self.store.active
                    or self.store.range is None
                    or self.store.item_count() <= self.config.overflow_threshold
                    or self.store.item_count() < 2
                ):
                    return
                # Only items inside the *ring-coherent* slice of the range can
                # seed a split (see _split_candidates): a split key below the
                # boundary the ring currently recognises produces a partner
                # whose join is redirected forever -- it aborts at its attempt
                # cap, returns to the pool, and the periodic check retries the
                # same doomed split indefinitely.
                base = self._split_base()
                ordered = sorted(
                    self._split_candidates(),
                    key=lambda item: self._clockwise_distance(item.skv, base),
                )
                if len(ordered) <= self.config.overflow_threshold or len(ordered) < 2:
                    # Overflowed only counting items the ring would not accept
                    # a join for (stranded by a boundary move): a split cannot
                    # help, so defer instead of churning the free-peer pool --
                    # and shed the stranded copies, which is the actual remedy
                    # (an overflow branch that always wins the periodic check
                    # would otherwise starve the shed until the deferral
                    # backoff opens a window).
                    self._note_deferral("ring_boundary_mismatch")
                    shed_instead = self._shed_due()
                    return
                middle = (len(ordered) - 1) // 2
                split_key = ordered[middle].skv
                lower_items = ordered[: middle + 1]
                if split_key == self.ring.value:
                    return  # degenerate: the split would take the whole range
                range_low = base
                # The new peer inserts right before us: address the join at
                # the closest known predecessor of the split key (the pred
                # pointer, or better if the redirect cache knows one).
                pred_address = self.ring.join_contact_for(split_key)
            finally:
                self.store.range_lock.release_write()

            try:
                response = yield self.node.call(self.pool_address, "pool_acquire", {})
            except RpcError:
                return
            free_address = response.get("address")
            if free_address is None:
                self._note_deferral("no_free_peer")
                shed_instead = self._shed_due()
                return
            # A split is actually starting: the conditions that caused earlier
            # deferrals no longer hold, so retry promptly from now on.
            self._defer_cadence.note_change()
            self._defer_until = 0.0

            completion = self.node.sim.event()
            self._pending_split = {
                "new_peer": free_address,
                "split_key": split_key,
                "range_low": range_low,
                "transferred": {item.skv for item in lower_items},
                "deleted_during": set(),
                "event": completion,
            }
            self._record_op(
                "split_started", new_peer=free_address, split_key=split_key
            )
            try:
                yield self.node.call(
                    free_address,
                    "ds_activate",
                    {
                        "value": split_key,
                        "range": (range_low, split_key, False),
                        "items": items_to_wire(lower_items),
                        "join_via": pred_address,
                        "notify": self.address,
                    },
                )
            except RpcError:
                # The free peer is unreachable; forget the split attempt.
                self._pending_split = None
                return

            # Wait for the new peer to report that it joined the ring.
            deadline = self.node.sim.timeout(self.config.leave_ack_timeout + 30.0)
            yield self.node.sim.any_of([completion, deadline])
            if not completion.triggered:
                self._record_op("split_timed_out", new_peer=free_address)
                self._pending_split = None
                return
            yield from self._finish_split()
        finally:
            self._balancing = False
        if shed_instead:
            yield from self.maybe_shed()

    def _handle_activate(self, payload, request):
        """RPC (at the free peer): take over a range and join the ring."""
        if self.store.active:
            return {"accepted": False, "reason": "already_active"}
        crange = CircularRange.from_tuple(tuple(payload["range"]))
        items = items_from_wire(payload["items"])
        value = payload["value"]
        self.ring.update_value(value)
        self.store.activate(crange, items)
        self.node.spawn(
            self._activation_join(payload["join_via"], payload["notify"]),
            name="ds-activate-join",
        )
        return {"accepted": True}

    def _activation_join(self, join_via: str, notify: str):
        """Join the ring (via the configured insertSucc) and notify the splitter."""
        if join_via == self.node.address:
            # A redirect-cache entry from this peer's *previous* ring
            # membership can name it as its own best contact; join through
            # the splitter instead.
            join_via = notify
        try:
            yield from self.ring.join(join_via)
        except Exception:
            joined = False
            if join_via != notify:
                # The addressed contact was stale (merged away, or a redirect
                # chain dead-ended).  The splitter itself is certainly still a
                # ring member -- it is waiting for our confirmation -- so
                # retry the join through it before giving the attempt up.
                try:
                    yield from self.ring.join(notify)
                    joined = True
                except Exception:
                    joined = False
            if not joined:
                # Could not join: drop the transferred copies -- the splitter
                # only sheds its own copies after our confirmation, so nothing
                # is lost -- and return to the free-peer pool for a later
                # attempt.
                self.store.deactivate()
                if self.pool_address is not None:
                    try:
                        yield self.node.call(
                            self.pool_address, "pool_release", {"address": self.address}
                        )
                    except RpcError:
                        pass
                return
        if self.replication is not None:
            self.replication.refresh_now()
        try:
            response = yield self.node.call(
                notify,
                "ds_split_complete",
                {"new_peer": self.address, "split_key": self.ring.value},
            )
        except RpcError:
            # The splitter failed: keep the range -- our copies may now be
            # the only live ones, and the ring has already adopted us.
            return
        if not response.get("ok"):
            # The splitter timed out waiting and abandoned the split (it
            # kept its full range and never sheds the transferred items), so
            # a completed join here would leave both peers claiming
            # (range_low, split_key].  Undo: leave the ring gracefully and
            # return to the free-peer pool; the splitter's periodic check
            # will retry the split from scratch.
            self.store.deactivate()
            yield from self.ring.leave()
            if self.replication is not None:
                self.replication.clear()
            self._record_op("split_rolled_back", splitter=notify)
            if self.pool_address is not None:
                try:
                    yield self.node.call(
                        self.pool_address, "pool_release", {"address": self.address}
                    )
                except RpcError:
                    pass

    def _handle_split_complete(self, payload, request):
        """RPC (at the splitter): the new peer is in the ring; shed the lower half."""
        pending = self._pending_split
        if pending is None or pending["new_peer"] != payload.get("new_peer"):
            return {"ok": False}
        if not pending["event"].triggered:
            pending["event"].succeed(payload)
        # First-hand knowledge: the partner sits directly behind us now.
        # Adopting it immediately closes the window in which a stale
        # predecessor announcement re-widens the range below the split key.
        self.ring.adopt_inserted_predecessor(
            payload["new_peer"], payload["split_key"]
        )
        return {"ok": True}

    def _finish_split(self):
        """Phase 3 of the split: drop the transferred items and shrink the range."""
        pending = self._pending_split
        if pending is None:
            return
        split_key = pending["split_key"]
        new_peer = pending["new_peer"]
        lower_range = CircularRange(pending["range_low"], split_key)
        yield self.store.range_lock.acquire_write()
        try:
            if self.store.range is None:
                return
            # Items that arrived in the lower half while the new peer was
            # joining must be forwarded, not dropped.
            lower_now = [
                item
                for item in self.store.items.all_items()
                if lower_range.contains(item.skv)
            ]
            late_arrivals = [
                item for item in lower_now if item.skv not in pending["transferred"]
            ]
            for item in lower_now:
                self.store.remove_local(item.skv, reason="split_shed")
            self.store.set_range_low(split_key, reason="split")
        finally:
            self.store.range_lock.release_write()

        for item in late_arrivals:
            try:
                yield self.node.call(
                    new_peer, "ds_store_item", {"item": item.to_wire(), "reason": "split_late"}
                )
            except RpcError:
                pass
        for skv in pending["deleted_during"]:
            try:
                yield self.node.call(new_peer, "ds_remove_item", {"skv": skv})
            except RpcError:
                pass
        finished = (
            "rebalance_finished"
            if pending.get("kind") == "rebalance"
            else "split_finished"
        )
        self._record_op(finished, new_peer=new_peer, split_key=split_key)
        self._pending_split = None

    def note_local_delete(self, skv: float) -> None:
        """Track deletions racing with an in-flight split (forwarded afterwards)."""
        pending = self._pending_split
        if pending is not None and skv in pending["transferred"]:
            pending["deleted_during"].add(skv)

    def _note_deferral(self, reason: str) -> None:
        """Record a deferred split and push the next periodic retry out."""
        self._record_op("split_deferred", reason=reason)
        self._defer_until = self.node.sim.now + self._defer_cadence.interval()
        self._defer_cadence.note_success()

    # ------------------------------------------------------------------ stranded-item shed
    def _stranded_items(self) -> list:
        """Copies below the effective ring boundary -- stored but scan-invisible.

        The complement of :meth:`_split_candidates`: a half-completed split
        (or a predecessor moving inside a lagging range) leaves copies whose
        keys the ring no longer attributes to this peer.  ``scan_range`` only
        serves items inside the current range, so these copies are unreachable
        until shed to their responsible owner.
        """
        if not self.store.active or self.store.range is None or self.store.range.full:
            return []
        base = self._split_base()
        own_distance = self._clockwise_distance(self.ring.value, base)
        return [
            item
            for item in self.store.items.all_items()
            if self._clockwise_distance(item.skv, base) > own_distance
        ]

    def _shed_due(self) -> bool:
        return (
            self.config.shed_stranded
            and self.router is not None
            and bool(self._stranded_items())
        )

    def maybe_shed(self):
        """Route ring-stranded copies to their responsible owner, then drop them.

        Store-then-delete: the local copy is removed only after the owner's
        ack -- which carries the owner's store mutation version -- confirms
        the copy is durably held elsewhere, and only if the copy is *still*
        stranded at deletion time (the boundary may have moved back while the
        store RPC was in flight).  Any failure leaves the copy where it was
        for the next periodic round.
        """
        if self._balancing or self._pending_split is not None or self.router is None:
            return
        self._balancing = True
        shed = 0
        try:
            for item in self._stranded_items():
                if not self.store.active:
                    break
                target = yield from self.router.find_responsible(item.skv)
                if target is None or target == self.address:
                    continue
                try:
                    response = yield self.node.call(
                        target,
                        "ds_store_item",
                        {"item": item.to_wire(), "reason": "shed"},
                    )
                except RpcError:
                    continue
                if not response.get("stored") or response.get("version") is None:
                    continue
                yield self.store.range_lock.acquire_write()
                try:
                    still_stranded = any(
                        stray.skv == item.skv for stray in self._stranded_items()
                    )
                    if still_stranded:
                        self.store.remove_local(item.skv, reason="shed")
                        shed += 1
                        self._record_op("item_shed", skv=item.skv, to_peer=target)
                finally:
                    self.store.range_lock.release_write()
        finally:
            self._balancing = False
            if shed:
                self._record_metric("shed", shed)

    # ------------------------------------------------------------------ bulk transfer
    def _handle_bulk_get(self, payload, request):
        """RPC: start a move-then-delete bulk transfer out of this peer.

        The global rebalancer asks this (loaded) peer to give up the lower
        slice of its range to ``new_peer``.  Nothing is deleted here: the
        items are *copied* out and a pending transfer is recorded, exactly as
        in phase 1 of a split.  The delete phase only runs once the receiver
        has joined the ring and confirmed via ``ds_split_complete``; if it
        never does, the waiter times out and this peer keeps serving
        everything it holds.
        """
        if (
            self._balancing
            or self._pending_split is not None
            or not self.store.active
            or self.store.range is None
        ):
            return {"ok": False, "reason": "busy"}
        new_peer = payload.get("new_peer")
        if not new_peer:
            return {"ok": False, "reason": "bad_request"}
        yield self.store.range_lock.acquire_write()
        try:
            if (
                self._balancing
                or self._pending_split is not None
                or not self.store.active
                or self.store.range is None
            ):
                return {"ok": False, "reason": "busy"}
            sf = self.config.storage_factor
            base = self._split_base()
            ordered = sorted(
                self._split_candidates(),
                key=lambda item: self._clockwise_distance(item.skv, base),
            )
            requested = int(payload.get("max_items", sf))
            give = min(requested, len(ordered) - sf, self.store.item_count() - sf)
            if give < sf:
                # The receiver would join already underflowed and merge right
                # back out -- a churn loop, not a rebalance.
                return {"ok": False, "reason": "underloaded"}
            lower_items = ordered[:give]
            split_key = lower_items[-1].skv
            if split_key == self.ring.value:
                return {"ok": False, "reason": "degenerate"}
            join_via = self.ring.join_contact_for(split_key)
            completion = self.node.sim.event()
            self._pending_split = {
                "new_peer": new_peer,
                "split_key": split_key,
                "range_low": base,
                "transferred": {item.skv for item in lower_items},
                "deleted_during": set(),
                "event": completion,
                "kind": "rebalance",
            }
        finally:
            self.store.range_lock.release_write()
        self._record_op(
            "rebalance_out",
            new_peer=new_peer,
            split_key=split_key,
            count=len(lower_items),
        )
        self.node.spawn(self._await_bulk_transfer(completion), name="ds-bulk-wait")
        return {
            "ok": True,
            "value": split_key,
            "range": (base, split_key, False),
            "items": items_to_wire(lower_items),
            "join_via": join_via,
            "notify": self.address,
        }

    def _handle_bulk_put(self, payload, request):
        """RPC: absorb a bulk range move (at a FREE peer) and join the ring.

        The payload is exactly an activation -- value, range, items, join
        contact, splitter to notify -- so the join/rollback choreography (and
        its failure handling) is shared with splits.
        """
        return self._handle_activate(payload, request)

    def _await_bulk_transfer(self, completion):
        """Waiter for a rebalance-out: run the delete phase or abandon the move."""
        pending = self._pending_split
        self._balancing = True
        try:
            deadline = self.node.sim.timeout(self.config.leave_ack_timeout + 30.0)
            yield self.node.sim.any_of([completion, deadline])
            if not completion.triggered:
                # Move-then-delete: the receiver never confirmed, nothing has
                # been deleted -- drop the pending transfer and keep serving.
                self._record_op(
                    "rebalance_timed_out",
                    new_peer=pending["new_peer"] if pending else None,
                )
                self._pending_split = None
                return
            yield from self._finish_split()
        finally:
            self._balancing = False

    # ------------------------------------------------------------------ merge / redistribute
    def maybe_merge(self):
        """Handle an underflow by redistributing with, or merging into, the successor.

        The boundary-moving and item-moving steps run under the participating
        peers' range write locks so in-flight scans never observe a torn range,
        but neither peer holds its own lock across the cross-peer RPC (the
        locks are local, per-peer, exactly as in the paper's Algorithms).
        """
        if self._balancing or self._pending_split is not None:
            return
        self._balancing = True
        started = self.node.sim.now
        try:
            successor = self.ring.first_live_successor()
            if successor is None or not self.store.active:
                return
            if self.store.item_count() >= self.config.underflow_threshold:
                return
            need = self.config.storage_factor - self.store.item_count()
            try:
                response = yield self.node.call(
                    successor,
                    "ds_redistribute_request",
                    {"need": need, "requester": self.address},
                    timeout=10.0,
                )
            except RpcError:
                return
            action = response.get("action")
            if action == "redistribute":
                received = items_from_wire(response["items"])
                boundary = response["new_boundary"]
                yield self.store.range_lock.acquire_write()
                try:
                    for item in received:
                        self.store.store_local(item, reason="redistribute_in")
                    self.store.set_range_high(boundary, reason="redistribute")
                    self.ring.update_value(boundary)
                finally:
                    self.store.range_lock.release_write()
                self._record_op(
                    "redistribute", from_peer=successor, received=len(received)
                )
                self._record_metric("redistribute", self.node.sim.now - started)
                return
            if action != "merge":
                return  # successor busy; retry on the next periodic check

            # --- Merge: give everything to the successor and leave. ----------
            yield self.store.range_lock.acquire_write()
            try:
                if not self.store.active or self.store.range is None:
                    return
                outgoing = self.store.items.all_items()
                new_low = (
                    self.store.range.low
                    if not self.store.range.full
                    else self.ring.value
                )
                try:
                    yield self.node.call(
                        successor,
                        "ds_absorb_items",
                        {
                            "items": items_to_wire(outgoing),
                            "new_low": new_low,
                            "from_peer": self.address,
                        },
                        timeout=10.0,
                    )
                except RpcError:
                    return
                for item in outgoing:
                    self.store.remove_local(item.skv, reason="merge_transfer")
                self.store.deactivate()
            finally:
                self.store.range_lock.release_write()
            self._record_op("merge_transfer", to_peer=successor, count=len(outgoing))

            # Section 5.2: push every item we hold (notably our replicas) one
            # additional hop so the replica count is not reduced by our leave.
            if self.replication is not None and self.config.extra_hop_replication:
                yield from self.replication.push_extra_hop()

            # Leave the ring (availability-preserving or naive, per config).
            leave_duration = yield from self.ring.leave()
            if self.replication is not None:
                self.replication.clear()

            merge_duration = self.node.sim.now - started
            self._record_metric("merge", merge_duration)
            self._record_op(
                "merge_finished",
                to_peer=successor,
                duration=merge_duration,
                leave_duration=leave_duration,
            )
            if self.pool_address is not None:
                try:
                    yield self.node.call(
                        self.pool_address, "pool_release", {"address": self.address}
                    )
                except RpcError:
                    pass
        finally:
            self._balancing = False

    def _handle_redistribute_request(self, payload, request):
        """RPC (at the successor): either spare some items or invite a merge."""
        if self._balancing or not self.store.active or self.store.range is None:
            return {"action": "busy"}
        yield self.store.range_lock.acquire_write()
        try:
            if not self.store.active or self.store.range is None:
                return {"action": "busy"}
            need = int(payload.get("need", 1))
            spare = self.store.item_count() - self.config.storage_factor
            if spare < need or spare <= 0:
                return {"action": "merge"}
            give = min(spare, max(need, 1))
            victims = [
                item
                for item in self.store.items.all_items()
                if self.store.range.contains(item.skv)
            ]
            victims = sorted(
                victims, key=lambda item: self._distance_from_low(item.skv)
            )[:give]
            if not victims:
                return {"action": "merge"}
            boundary = max(
                victims, key=lambda item: self._distance_from_low(item.skv)
            ).skv
            for item in victims:
                self.store.remove_local(item.skv, reason="redistribute_out")
            self.store.set_range_low(boundary, reason="redistribute")
            self._record_op(
                "redistribute_out", to_peer=payload.get("requester"), given=len(victims)
            )
            return {
                "action": "redistribute",
                "items": items_to_wire(victims),
                "new_boundary": boundary,
            }
        finally:
            self.store.range_lock.release_write()

    def _split_base(self) -> float:
        """The lower boundary a split must stay strictly above.

        Normally the store range's lower bound (or the peer's own value for
        the bootstrap full range).  When the ring's predecessor pointer sits
        *inside* the store range -- a peer inserted between us and our old
        boundary while the store's range lagged behind -- the predecessor's
        value is the effective boundary: the ring will never accept a join at
        a value the predecessor already claims.
        """
        if self.store.range is None or self.store.range.full:
            return self.ring.value
        base = self.store.range.low
        pred_value = self.ring.pred_value
        if (
            self.ring.pred_address not in (None, self.node.address)
            and pred_value is not None
            and pred_value != self.ring.value
            and self._clockwise_distance(pred_value, base)
            < self._clockwise_distance(self.ring.value, base)
        ):
            base = pred_value
        return base

    def _split_candidates(self) -> list:
        """Items a split could legitimately hand to a new ring member.

        Items at or below :meth:`_split_base` (strays stranded by a boundary
        move, or items the ring's current predecessor already claims) are
        excluded -- a split keyed on one of them can never complete.
        """
        items = self.store.items.all_items()
        if self.store.range is None:
            return []
        if self.store.range.full:
            return list(items)
        base = self._split_base()
        own_distance = self._clockwise_distance(self.ring.value, base)
        return [
            item
            for item in items
            if self._clockwise_distance(item.skv, base) <= own_distance
        ]

    def split_feasible(self) -> bool:
        """Whether an overflow split could currently be accepted by the ring.

        Used by :meth:`repro.index.pring.PRingIndex.split_pressure` (the
        phase executor's quiescence signal): a store whose overflow consists
        of ring-stranded items exerts no split pressure -- retrying its split
        would spin forever, and the deployment is as settled as it can get.
        """
        if not self.store.active or self.store.range is None:
            return False
        if self.store.item_count() <= self.config.overflow_threshold:
            return False
        candidates = self._split_candidates()
        return len(candidates) > self.config.overflow_threshold and len(candidates) >= 2

    def _distance_from_low(self, key: float) -> float:
        """Clockwise distance of ``key`` from this peer's range lower bound."""
        low = self.store.range.low if self.store.range is not None else 0.0
        return self._clockwise_distance(key, low)

    def _clockwise_distance(self, key: float, base: float) -> float:
        """Clockwise distance of ``key`` from ``base`` on the circular key space."""
        if key > base:
            return key - base
        return self.config.key_space - base + key

    def _handle_absorb_items(self, payload, request):
        """RPC (at the successor): take over a merging predecessor's items and range."""
        items = items_from_wire(payload["items"])
        new_low = payload["new_low"]
        yield self.store.range_lock.acquire_write()
        try:
            for item in items:
                self.store.store_local(item, reason="merge_absorb")
            if (
                self.store.active
                and self.store.range is not None
                and not self.store.range.full
            ):
                self.store.set_range_low(new_low, reason="merge_absorb")
        finally:
            self.store.range_lock.release_write()
        self._record_op(
            "merge_absorb", from_peer=payload.get("from_peer"), count=len(items)
        )
        return {"ok": True}
