"""Circular range arithmetic on the peer-value / search-key domain.

The Data Store assigns each peer the range ``(pred.value, own.value]`` of an
order-preserving, circular key space (Section 2.2).  :class:`CircularRange`
models such half-open arcs, including the wrap-around case and the degenerate
"whole ring" case of a single-peer system.

Range queries in this library are canonically half-open ``(lb, ub]`` intervals
on the *linear* key space (one of the four forms the paper supports); the
intersection helpers therefore return plain, non-wrapping ``(lo, hi]``
segments, which is what the scanRange correctness conditions (Definition 6)
are checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CircularRange:
    """The half-open arc ``(low, high]`` of a circular key space.

    If ``full`` is true the range covers the entire key space (the situation of
    the first peer in the system, whose predecessor is itself).
    """

    low: float
    high: float
    full: bool = False

    # ------------------------------------------------------------------ queries
    def contains(self, key: float) -> bool:
        """Whether ``key`` falls inside this range."""
        if self.full:
            return True
        if self.low < self.high:
            return self.low < key <= self.high
        if self.low > self.high:
            return key > self.low or key <= self.high
        # low == high without ``full``: the empty arc (x, x].
        return False

    def wraps(self) -> bool:
        """Whether the arc crosses the wrap point of the key space."""
        return not self.full and self.low >= self.high

    def span(self, key_space: float) -> float:
        """Length of the arc given the total ``key_space`` size."""
        if self.full:
            return key_space
        if self.low < self.high:
            return self.high - self.low
        return key_space - self.low + self.high

    # ------------------------------------------------------------------ set operations
    def intersect_interval(self, lb: float, ub: float) -> List[Tuple[float, float]]:
        """Intersection with the half-open query interval ``(lb, ub]``.

        Returns a list of non-empty, non-wrapping ``(lo, hi]`` segments.  The
        query interval never wraps (``lb <= ub``); the peer range may.
        """
        if lb > ub:
            raise ValueError(f"query interval must not wrap: ({lb}, {ub}]")
        if lb == ub:
            return []
        if self.full:
            return [(lb, ub)]
        if self.low == self.high:
            return []  # the empty arc (x, x]
        if not self.wraps():
            lo = max(lb, self.low)
            hi = min(ub, self.high)
            return [(lo, hi)] if lo < hi else []
        # Wrapping peer range (low, key_space) ∪ (wrap, high]: intersect both arms.
        segments: List[Tuple[float, float]] = []
        lo = max(lb, self.low)
        if lo < ub:
            segments.append((lo, ub))
        hi = min(ub, self.high)
        if lb < hi:
            segments.append((lb, hi))
        # The two arms can only overlap if the peer range is (almost) the whole
        # ring; merge in that unusual case.
        return _merge_segments(segments)

    def split_at(self, key: float) -> Tuple["CircularRange", "CircularRange"]:
        """Split into ``(low, key]`` and ``(key, high]``.

        ``key`` must lie strictly inside the range (it becomes the new boundary
        between the splitting peer and the free peer it splits with).
        """
        if not self.contains(key) or key == self.high:
            raise ValueError(f"split key {key} is not strictly inside {self}")
        lower = CircularRange(self.low, key)
        upper = CircularRange(key, self.high)
        return lower, upper

    def extend_low(self, new_low: float) -> "CircularRange":
        """Return a copy whose lower bound moved to ``new_low``."""
        return CircularRange(new_low, self.high)

    def with_high(self, new_high: float) -> "CircularRange":
        """Return a copy whose upper bound moved to ``new_high``."""
        return CircularRange(self.low, new_high)

    # ------------------------------------------------------------------ misc
    def as_tuple(self) -> Tuple[float, float, bool]:
        """``(low, high, full)`` -- convenient for RPC payloads and history ops."""
        return (self.low, self.high, self.full)

    @staticmethod
    def from_tuple(data: Tuple[float, float, bool]) -> "CircularRange":
        """Inverse of :meth:`as_tuple`."""
        low, high, full = data
        return CircularRange(low, high, full)

    def __str__(self) -> str:
        if self.full:
            return "(*whole ring*]"
        return f"({self.low:g}, {self.high:g}]"


def _merge_segments(segments: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping or touching ``(lo, hi]`` segments."""
    if len(segments) <= 1:
        return [seg for seg in segments if seg[0] < seg[1]]
    ordered = sorted(seg for seg in segments if seg[0] < seg[1])
    merged: List[Tuple[float, float]] = []
    for lo, hi in ordered:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def segments_cover_interval(
    segments: List[Tuple[float, float]], lb: float, ub: float, tolerance: float = 1e-9
) -> bool:
    """Whether the union of ``(lo, hi]`` segments covers the interval ``(lb, ub]``."""
    if lb >= ub:
        return True
    merged = _merge_segments(list(segments))
    position = lb
    for lo, hi in merged:
        if lo > position + tolerance:
            return False
        position = max(position, hi)
        if position >= ub - tolerance:
            return True
    return position >= ub - tolerance


def segments_overlap(first: Tuple[float, float], second: Tuple[float, float]) -> bool:
    """Whether two ``(lo, hi]`` segments share any point."""
    return max(first[0], second[0]) < min(first[1], second[1])
