"""The per-peer Data Store component.

Responsibilities (Section 2.2):

* hold the peer's assigned range ``(pred.value, own.value]`` and the items
  mapped into it (the map ``M`` is the identity: order-preserving);
* expose item storage/removal to the index layer and replication manager;
* detect overflow/underflow and hand off to the
  :class:`~repro.datastore.maintenance.StorageBalancer`;
* expose the range read/write lock that the scanRange protocol and the
  balancing operations coordinate through (Section 4.3.2).

A Data Store starts *inactive* (a P-Ring "free peer"); it becomes active when
the balancer activates it during a split, or when it is bootstrapped as the
first peer of the system.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.datastore.items import Item, ItemStore, items_to_wire
from repro.datastore.ranges import CircularRange
from repro.index.config import IndexConfig
from repro.ring.chord import ChordRing, RingListener
from repro.sim.locks import RWLock
from repro.transport import Endpoint


class DataStore(RingListener):
    """Order-preserving item storage for one peer."""

    def __init__(
        self,
        node: Endpoint,
        ring: ChordRing,
        config: IndexConfig,
        metrics=None,
        history=None,
    ):
        self.node = node
        self.ring = ring
        self.config = config
        self.metrics = metrics
        self.history = history

        self.items = ItemStore()
        self.range: Optional[CircularRange] = None
        self.active = False
        self.range_lock = RWLock(node.sim, name=f"{node.address}.range")

        # Callbacks installed by the StorageBalancer.
        self.on_overflow: Optional[Callable[[], None]] = None
        self.on_underflow: Optional[Callable[[], None]] = None
        # Fired whenever a range boundary moves: a shrink can strand held
        # copies outside the new range, and the shed must not wait for the
        # next periodic round to notice (the move may land near run end).
        self.on_range_changed: Optional[Callable[[], None]] = None

        ring.add_listener(self)
        node.register_handler("ds_store_item", self._handle_store_item)
        node.register_handler("ds_remove_item", self._handle_remove_item)
        node.register_handler("ds_get_local_items", self._handle_get_local_items)
        node.register_handler("ds_probe", self._handle_probe)

    # ------------------------------------------------------------------ helpers
    @property
    def address(self) -> str:
        return self.node.address

    def _record_op(self, kind: str, **attrs) -> None:
        if self.history is not None:
            self.history.record(kind, peer=self.address, **attrs)

    def snapshot_range(self) -> Optional[CircularRange]:
        """The current range (or ``None`` for an inactive/free peer)."""
        return self.range

    def item_count(self) -> int:
        return len(self.items)

    def owns_key(self, key: float) -> bool:
        """Whether this peer is currently responsible for ``key``."""
        return self.active and self.range is not None and self.range.contains(key)

    # ------------------------------------------------------------------ activation
    def activate_first(self, value: float) -> None:
        """Bootstrap this peer as the first (and only) peer of the system."""
        self.range = CircularRange(value, value, full=True)
        self.active = True
        self._record_op("range_changed", range=self.range.as_tuple(), reason="bootstrap")

    def activate(self, crange: CircularRange, items: List[Item]) -> None:
        """Turn a free peer into a live peer owning ``crange`` and ``items``."""
        self.range = crange
        self.active = True
        for item in items:
            if self.items.add(item):
                self._record_op("item_stored", skv=item.skv, reason="split_transfer")
        self._record_op("range_changed", range=crange.as_tuple(), reason="activate")

    def deactivate(self) -> List[Item]:
        """Return to the free-peer state; returns (and drops) the held items."""
        remaining = self.items.all_items()
        for item in remaining:
            self._record_op("item_removed", skv=item.skv, reason="deactivate")
        self.items.clear()
        self.active = False
        self.range = None
        self._record_op("range_changed", range=None, reason="deactivate")
        return remaining

    # ------------------------------------------------------------------ local operations
    def store_local(self, item: Item, reason: str = "insert") -> bool:
        """Add ``item`` to the local store; trigger the balancer on overflow."""
        added = self.items.add(item)
        if added:
            self._record_op("item_stored", skv=item.skv, reason=reason)
        if len(self.items) > self.config.overflow_threshold and self.on_overflow:
            self.on_overflow()
        return added

    def remove_local(self, skv: float, reason: str = "delete") -> Optional[Item]:
        """Remove the item with key ``skv``; trigger the balancer on underflow."""
        item = self.items.remove(skv)
        if item is not None:
            self._record_op("item_removed", skv=skv, reason=reason)
        if (
            self.active
            and len(self.items) < self.config.underflow_threshold
            and self.on_underflow
        ):
            self.on_underflow()
        return item

    def local_items_in(self, lb: float, ub: float) -> List[Item]:
        """Items with ``lb < skv <= ub`` currently stored here."""
        return self.items.items_in_interval(lb, ub)

    # ------------------------------------------------------------------ range updates
    def set_range_low(self, new_low: float, reason: str) -> None:
        """Move the lower bound of the range (split completion, merge absorb).

        If the new lower bound coincides with the upper bound the peer has
        become responsible for the whole ring again (it absorbed the last other
        member), which is represented by the ``full`` range.
        """
        high = self.range.high if self.range is not None and not self.range.full else self.ring.value
        self.range = CircularRange(new_low, high, full=(new_low == high))
        self._record_op("range_changed", range=self.range.as_tuple(), reason=reason)
        if self.on_range_changed:
            self.on_range_changed()

    def set_range_high(self, new_high: float, reason: str) -> None:
        """Move the upper bound of the range (redistribution boundary shift)."""
        low = self.range.low if self.range is not None else new_high
        self.range = CircularRange(low, new_high)
        self._record_op("range_changed", range=self.range.as_tuple(), reason=reason)
        if self.on_range_changed:
            self.on_range_changed()

    # ------------------------------------------------------------------ ring events
    def on_predecessor_changed(self, ring, old_address, old_value, new_address, new_value):
        """The ring predecessor changed: our range's lower bound follows its value."""
        if not self.active:
            return
        self.node.spawn(self._apply_new_low(new_value), name="ds-range-update")

    def _apply_new_low(self, new_low: float):
        yield self.range_lock.acquire_write()
        try:
            if not self.active:
                return
            if self.range is not None and not self.range.full and self.range.low == new_low:
                return
            self.set_range_low(new_low, reason="predecessor_changed")
        finally:
            self.range_lock.release_write()

    # ------------------------------------------------------------------ RPC handlers
    def _handle_store_item(self, payload, request):
        """RPC: store an item if this peer is responsible for its key.

        The ack carries the store's mutation ``version`` so callers that
        delete their local copy afterwards (the stranded-item shed) can
        distinguish a confirmed store from a lost or refused one.
        """
        item = Item.from_wire(payload["item"])
        if not self.owns_key(item.skv):
            return {"stored": False, "reason": "not_responsible"}
        stored = self.store_local(item, reason=payload.get("reason", "insert"))
        return {"stored": True, "duplicate": not stored, "version": self.items.version}

    def _handle_remove_item(self, payload, request):
        """RPC: delete an item if this peer is responsible for its key."""
        skv = payload["skv"]
        if not self.owns_key(skv):
            return {"removed": False, "reason": "not_responsible"}
        item = self.remove_local(skv, reason=payload.get("reason", "delete"))
        return {"removed": item is not None}

    def _handle_get_local_items(self, payload, request):
        """RPC: the *naive* application-level scan's item fetch (no locking)."""
        lb = payload.get("lb")
        ub = payload.get("ub")
        if lb is None or ub is None:
            selected = self.items.all_items()
        else:
            selected = self.local_items_in(lb, ub)
        return {
            "items": items_to_wire(selected),
            "range": self.range.as_tuple() if self.range is not None else None,
            "active": self.active,
        }

    def _handle_probe(self, payload, request):
        """RPC: routing probe -- does this peer own ``key``, and who follows it?"""
        key = payload["key"]
        return {
            "owns": self.owns_key(key),
            "active": self.active,
            "value": self.ring.value,
            "successor": self.ring.first_live_successor(),
            "range": self.range.as_tuple() if self.range is not None else None,
        }
