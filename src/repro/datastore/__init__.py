"""P-Ring Data Store: order-preserving item placement with storage balancing.

Layer contract: builds on :mod:`repro.sim` and :mod:`repro.ring` (ranges
follow the ring's predecessor pointers via :class:`RingListener` events;
splits address ring inserts through ``ChordRing.join_contact_for``).  May
import :mod:`repro.index.config` for tunables.  The replication manager and
the index peer compose these classes; neighbors should import
:class:`DataStore`, :class:`StorageBalancer`, :class:`FreePeerPool` (from
``maintenance``), :class:`Item`/:class:`ItemStore` and
:class:`CircularRange` from here rather than reaching into submodules.
"""

from repro.datastore.items import Item, ItemStore
from repro.datastore.ranges import CircularRange
from repro.datastore.store import DataStore
from repro.datastore.maintenance import StorageBalancer

__all__ = ["CircularRange", "DataStore", "Item", "ItemStore", "StorageBalancer"]
