"""P-Ring Data Store: order-preserving item placement with storage balancing."""

from repro.datastore.items import Item, ItemStore
from repro.datastore.ranges import CircularRange
from repro.datastore.store import DataStore
from repro.datastore.maintenance import StorageBalancer

__all__ = ["CircularRange", "DataStore", "Item", "ItemStore", "StorageBalancer"]
