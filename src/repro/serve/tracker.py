"""Per-peer in-flight RPC accounting: the load signal behind ``replica_lb``.

The transport layer (both the simulated :class:`~repro.sim.network.Network`
and the real-socket :class:`~repro.transport.asyncio_transport.AsyncioNetwork`)
exposes an ``observer`` slot with two hooks:

* ``rpc_issued(source, destination, method)`` -- fired once per ``call``;
* ``rpc_completed(destination)`` -- fired exactly once per call, when the
  reply settles the caller's event *or* when the expiry timer does, whichever
  wins the race.

:class:`InFlightTracker` turns those hooks into two maps:

* ``in_flight[address]`` -- RPCs currently outstanding against ``address``
  (all methods; an overloaded peer is slow to answer *everything*, so the
  balancing signal should see its full queue, not just reads);
* ``read_load[address]`` -- cumulative count of *read-path* RPCs issued to
  ``address`` (the :data:`READ_METHODS` set).  The per-peer load variance
  reported in BENCH cells is the population variance of this map over the
  ring members -- the number ``replica_lb`` is meant to flatten.

Casts are not tracked: they have no completion signal, so counting them would
leak the in-flight map upward forever.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

# RPC methods that constitute the read path.  ``serve_meta`` is deliberately
# excluded from ``read_load``: it is a constant-size metadata probe every
# routing policy pays identically, so counting it would only dilute the
# variance signal the BENCH cells compare.
READ_METHODS = frozenset(
    {
        "serve_read",
        "scan_begin",
        "scan_continue",
        "ds_get_local_items",
        "ring_successor_info",
    }
)


class InFlightTracker:
    """Counts outstanding RPCs and cumulative read load per destination."""

    def __init__(self):
        self.in_flight: Dict[str, int] = {}
        self.read_load: Dict[str, int] = {}
        self.issued = 0
        self.completed = 0

    # -- transport observer hooks ------------------------------------------
    def rpc_issued(self, source: str, destination: str, method: str) -> None:
        self.issued += 1
        self.in_flight[destination] = self.in_flight.get(destination, 0) + 1
        if method in READ_METHODS:
            self.read_load[destination] = self.read_load.get(destination, 0) + 1

    def rpc_completed(self, destination: str) -> None:
        self.completed += 1
        count = self.in_flight.get(destination, 0) - 1
        if count > 0:
            self.in_flight[destination] = count
        else:
            # Drop zeroed entries so the map stays proportional to *active*
            # destinations, not to every address ever contacted.
            self.in_flight.pop(destination, None)

    # -- queries ------------------------------------------------------------
    def outstanding(self, address: str) -> int:
        """RPCs currently in flight against ``address``."""
        return self.in_flight.get(address, 0)

    def least_loaded(self, candidates: List[str]) -> str:
        """The candidate with the fewest outstanding RPCs.

        Ties break by cumulative read load, then by position in
        ``candidates`` (callers list the primary first).  The secondary key
        matters more than it looks: when service times are shorter than the
        arrival gaps the in-flight counts are almost always all zero, and
        without it every read would collapse onto the primary -- cumulative
        load turns that regime into a deterministic least-served rotation.
        """
        if not candidates:
            raise ValueError("least_loaded needs at least one candidate")
        best = candidates[0]
        best_key = (self.in_flight.get(best, 0), self.read_load.get(best, 0))
        for candidate in candidates[1:]:
            key = (self.in_flight.get(candidate, 0), self.read_load.get(candidate, 0))
            if key < best_key:
                best, best_key = candidate, key
        return best

    def read_load_variance(self, addresses: Iterable[str]) -> float:
        """Population variance of cumulative read load over ``addresses``.

        Peers that never served a read count as zero -- an idle replica *is*
        imbalance, so it must weigh the variance down only when the hot peers
        are also near zero.
        """
        loads = [self.read_load.get(address, 0) for address in addresses]
        if not loads:
            return 0.0
        mean = sum(loads) / len(loads)
        return sum((load - mean) ** 2 for load in loads) / len(loads)
