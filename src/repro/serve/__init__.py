"""The serve layer: one client-facing query API over the P-Ring protocols.

After PR 10 there is exactly one way to issue a range query:
:class:`~repro.serve.client.QueryClient` with a ``routing=`` policy
(``primary`` | ``replica_lb`` | ``cached``) and a ``consistency=`` knob.  The
historical :class:`~repro.core.scan_range.RangeQueryEngine` entry points
survive only as deprecation shims.

* :mod:`repro.serve.tracker` -- per-peer in-flight RPC accounting fed by the
  transport layer's observer hooks; the load signal ``replica_lb`` balances on.
* :mod:`repro.serve.handlers` -- the peer-side ``serve_meta`` / ``serve_read``
  RPCs: version-checked replica reads that never serve tombstoned or stale
  copies.
* :mod:`repro.serve.client` -- the :class:`QueryClient` itself.
* :mod:`repro.serve.workload` -- the open-loop (arrival-rate, zipf-hotspot)
  workload generator behind ``ServeSpec`` scenario phases.

This is a protocol layer: it depends only on the transport contract and the
other protocol components, never on the simulation substrate
(``tests/test_import_boundary.py`` enforces this).
"""

from repro.serve.client import QueryClient
from repro.serve.handlers import ServeHandler
from repro.serve.tracker import READ_METHODS, InFlightTracker
from repro.serve.workload import OpenLoopQuery, open_loop_queries, zipf_hotspot_windows

__all__ = [
    "InFlightTracker",
    "OpenLoopQuery",
    "QueryClient",
    "READ_METHODS",
    "ServeHandler",
    "open_loop_queries",
    "zipf_hotspot_windows",
]
