"""Open-loop serve workload: Poisson arrivals over zipf-skewed hotspots.

The closed-loop :class:`~repro.workloads.queries.QueryWorkload` issues the
next query only after the previous one returns -- fine for correctness
sweeps, useless for latency: a slow system *slows the workload down* and p99
looks great.  Production traffic does not wait.  The open-loop generator here
fixes the arrival process independently of service times: queries arrive with
exponential interarrivals at ``arrival_rate`` per second, each aimed at one
of a small set of hotspot windows chosen zipf-skewed by rank -- the classic
shape of a popularity-driven read workload, and the one that melts a single
primary owner while its replicas idle.

Everything is deterministic given the rng stream: the hotspot centers, the
zipf ranks and the interarrival gaps all come from the caller's named stream,
so a scenario's serve phase replays identically across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class OpenLoopQuery:
    """One scheduled arrival: issue ``(lb, ub]`` at simulation offset ``at``."""

    at: float
    lb: float
    ub: float
    hotspot: int


def zipf_hotspot_windows(
    hotspots: int, key_space: float, width: float, rng
) -> List[Tuple[float, float]]:
    """Draw ``hotspots`` fixed query windows of ``width`` over the key space.

    Centers are uniform draws from the stream (drawn once per workload);
    windows are clamped inside ``(0, key_space]`` so they remain valid
    non-wrapping query intervals.
    """
    if hotspots < 1:
        raise ValueError("hotspots must be >= 1")
    if not 0 < width <= key_space:
        raise ValueError("window width must be in (0, key_space]")
    windows = []
    for _ in range(hotspots):
        lb = rng.uniform(0.0, key_space - width)
        windows.append((lb, lb + width))
    return windows


def _zipf_cumulative(hotspots: int, alpha: float) -> List[float]:
    """Cumulative zipf rank weights: rank ``i`` has weight ``1/(i+1)**alpha``."""
    weights = [1.0 / (rank + 1) ** alpha for rank in range(hotspots)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard against float drift at the top bin
    return cumulative


def open_loop_queries(
    arrival_rate: float,
    duration: float,
    key_space: float,
    rng,
    hotspots: int = 8,
    alpha: float = 1.1,
    selectivity: float = 0.02,
) -> List[OpenLoopQuery]:
    """The full arrival schedule of one serve phase, in arrival order.

    ``arrival_rate`` queries per second on average for ``duration`` seconds;
    each query targets the hotspot window of a zipf-drawn rank.  Returns the
    complete schedule up front (arrival times are independent of execution by
    definition of open loop, so there is nothing to interleave).
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    width = key_space * selectivity
    windows = zipf_hotspot_windows(hotspots, key_space, width, rng)
    cumulative = _zipf_cumulative(hotspots, alpha)
    schedule: List[OpenLoopQuery] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(arrival_rate)
        if clock > duration:
            break
        draw = rng.random()
        rank = 0
        while cumulative[rank] < draw:
            rank += 1
        lb, ub = windows[rank]
        schedule.append(OpenLoopQuery(at=clock, lb=lb, ub=ub, hotspot=rank))
    return schedule
