"""The one client-facing query API: ``QueryClient``.

A :class:`QueryClient` is scoped to an entry peer and issues range queries
``(lb, ub]`` under a routing policy:

* ``primary`` -- the historical path: delegate to the peer's
  :class:`~repro.core.scan_range.RangeQueryEngine` (scanRange or the naive
  scan, per the deployment's ``use_scan_range`` flag).
* ``replica_lb`` -- a client-coordinated ring walk over ``serve_meta`` /
  ``serve_read``: each hop probes the owner, then reads the owner's window
  from whichever of {owner} ∪ {live replica holders} has the fewest RPCs in
  flight (per the transport-fed
  :class:`~repro.serve.tracker.InFlightTracker`).  A replica that cannot
  prove its copy current -- the owner's live ``ItemStore.version`` differs
  from its recorded push version, or a key is tombstoned/missing -- refuses,
  and the client falls back to the primary for that window, so the result
  set is always exactly the primary's.
* ``cached`` -- ``replica_lb`` plus a client-side result cache keyed on the
  exact ``(lb, ub]`` window.  Every hit is revalidated against the owners'
  live ``serve_meta`` (version *and* range: a predecessor change shrinks a
  range without bumping the version); any mismatch invalidates the entry and
  re-executes the query.

The ``consistency`` knob: ``strong`` (default) performs the version
validation above; ``eventual`` lets replicas serve their recorded push
snapshot without comparing it to the owner's live version (one probe fewer of
staleness, bounded by the replication refresh period).

All methods returning query results are simulation generators (drive them
with ``sim.run_process`` or from another process); result dicts carry the
same shape the engine always produced, plus ``routing``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datastore.items import Item, items_from_wire
from repro.datastore.ranges import CircularRange, segments_cover_interval
from repro.transport import RpcError

ROUTING_POLICIES = ("primary", "replica_lb", "cached")
CONSISTENCY_LEVELS = ("strong", "eventual")

# A client-coordinated walk gives up after this many hops (matches the naive
# scan's historical bound) and caps its cache at this many distinct windows.
_MAX_HOPS = 256
_MAX_CACHE_ENTRIES = 128


class QueryClient:
    """Range queries from one entry peer under a routing/consistency policy."""

    def __init__(
        self,
        peer,
        routing: str = "primary",
        consistency: str = "strong",
        tracker=None,
        metrics=None,
    ):
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {routing!r}; known: {', '.join(ROUTING_POLICIES)}"
            )
        if consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency {consistency!r}; "
                f"known: {', '.join(CONSISTENCY_LEVELS)}"
            )
        self.peer = peer
        self.routing = routing
        self.consistency = consistency
        self.tracker = tracker
        self.metrics = metrics
        # window -> (items by skv, validation deps [(owner, version, range)]).
        self._cache: Dict[Tuple[float, float], Tuple[Dict[float, Item], List[tuple]]] = {}

    # ------------------------------------------------------------------ helpers
    @property
    def node(self):
        return self.peer

    def _record_metric(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.record(name, value)

    def _result(
        self,
        query_id: str,
        lb: float,
        ub: float,
        items: Dict[float, Item],
        started: float,
        scan_started: float,
        hops: int,
        complete: bool,
        strategy: str,
    ) -> dict:
        finished = self.peer.sim.now
        ordered = sorted(items.values(), key=lambda item: item.skv)
        self._record_metric("range_query", finished - started)
        self._record_metric("scan_elapsed", finished - scan_started)
        return {
            "query_id": query_id,
            "lb": lb,
            "ub": ub,
            "items": ordered,
            "keys": [item.skv for item in ordered],
            "start_time": started,
            "end_time": finished,
            "scan_elapsed": finished - scan_started,
            "hops": hops,
            "complete": complete,
            "strategy": strategy,
            "routing": self.routing,
        }

    # ------------------------------------------------------------------ public API
    def query(self, lb: float, ub: float, timeout: float = 60.0):
        """Execute the range query ``(lb, ub]`` under this client's policy.

        Generator returning the standard result dict (items, keys, hops,
        ``complete``, timing) tagged with the routing policy used.
        """
        if self.routing == "primary":
            result = yield from self.peer.queries.query(lb, ub, timeout=timeout)
            result["routing"] = "primary"
            return result
        if self.routing == "cached":
            result = yield from self._cached_query(lb, ub, timeout)
            return result
        result = yield from self._replica_query(lb, ub, timeout)
        return result

    # ------------------------------------------------------------------ replica_lb
    def _reroute(self, key: float, deadline: float):
        """Find the responsible owner for ``key``, retrying while routing heals."""
        while self.peer.sim.now < deadline:
            address = yield from self.peer.router.find_responsible(key)
            if address is not None:
                return address
            yield self.peer.sim.timeout(0.25)
        return None

    def _pick_target(self, owner: str, replicas: List[str]) -> str:
        """Least-loaded of the owner and its live replica holders."""
        if self.tracker is None or not replicas:
            return owner
        candidates = [owner] + [address for address in replicas if address != owner]
        return self.tracker.least_loaded(candidates)

    def _replica_query(self, lb: float, ub: float, timeout: float):
        query_id = self.peer.queries._new_query_id()
        started = self.peer.sim.now
        deadline = started + timeout
        items: Dict[float, Item] = {}
        segments: List[Tuple[float, float]] = []
        deps: List[tuple] = []
        watermark = lb
        hops = 0

        current = yield from self._reroute(lb, deadline)
        scan_started = self.peer.sim.now
        while (
            current is not None
            and watermark < ub - 1e-12
            and hops < _MAX_HOPS
            and self.peer.sim.now < deadline
        ):
            hops += 1
            try:
                meta = yield self.peer.call(current, "serve_meta", {})
            except RpcError:
                # The owner died under us: wait out failure detection so the
                # ring can repair (a successor revives the items), then route
                # again from the watermark.
                yield self.peer.sim.timeout(self.peer.config.failure_detection_timeout)
                current = yield from self._reroute(watermark, deadline)
                continue
            if not meta.get("active") or meta.get("range") is None:
                yield self.peer.sim.timeout(0.25)
                current = yield from self._reroute(watermark, deadline)
                continue
            crange = CircularRange.from_tuple(tuple(meta["range"]))
            new_watermark = watermark
            for lo, hi in sorted(crange.intersect_interval(watermark, ub)):
                if lo > new_watermark + 1e-12:
                    # A gap belongs to peers further along the walk.
                    continue
                new_watermark = max(new_watermark, hi)
            if new_watermark > watermark:
                response = None
                target = self._pick_target(current, meta.get("replicas", ()))
                version = meta["version"] if self.consistency == "strong" else None
                if target != current:
                    try:
                        response = yield self.peer.call(
                            target,
                            "serve_read",
                            {
                                "owner": current,
                                "lb": watermark,
                                "ub": new_watermark,
                                "version": version,
                            },
                        )
                    except RpcError:
                        response = None
                    if response is not None and not response.get("ok"):
                        self._record_metric("serve_replica_rejected", 1)
                        response = None
                if response is None:
                    # Replica unusable (stale, tombstoned, missing, dead) or
                    # load balancing picked the owner outright.
                    try:
                        response = yield self.peer.call(
                            current,
                            "serve_read",
                            {
                                "owner": current,
                                "lb": watermark,
                                "ub": new_watermark,
                                "version": None,
                            },
                        )
                    except RpcError:
                        yield self.peer.sim.timeout(
                            self.peer.config.failure_detection_timeout
                        )
                        current = yield from self._reroute(watermark, deadline)
                        continue
                    if not response.get("ok"):
                        # The range moved between probe and read: re-route.
                        current = yield from self._reroute(watermark, deadline)
                        continue
                for item in items_from_wire(response["items"]):
                    items[item.skv] = item
                segments.append((watermark, new_watermark))
                deps.append((current, meta["version"], tuple(meta["range"])))
                watermark = new_watermark
                if watermark >= ub - 1e-12:
                    break
            successor = meta.get("successor")
            if successor is None or successor == current:
                current = yield from self._reroute(watermark, deadline)
            else:
                current = successor

        complete = segments_cover_interval(segments, lb, ub)
        result = self._result(
            query_id, lb, ub, items, started, scan_started, hops, complete, "replica_lb"
        )
        result["deps"] = deps
        return result

    # ------------------------------------------------------------------ cached
    def _cached_query(self, lb: float, ub: float, timeout: float):
        window = (lb, ub)
        entry = self._cache.get(window)
        if entry is not None:
            valid = yield from self._validate(entry[1])
            if valid:
                self._record_metric("serve_cache_hit", 1)
                query_id = self.peer.queries._new_query_id()
                now = self.peer.sim.now
                result = self._result(
                    query_id, lb, ub, dict(entry[0]), now, now, 0, True, "cached"
                )
                result["cached"] = True
                return result
            self._cache.pop(window, None)
            self._record_metric("serve_cache_invalidate", 1)
        self._record_metric("serve_cache_miss", 1)
        result = yield from self._replica_query(lb, ub, timeout)
        result["strategy"] = "cached"
        result["cached"] = False
        if result["complete"] and result.get("deps"):
            if len(self._cache) >= _MAX_CACHE_ENTRIES:
                # FIFO eviction: drop the oldest window.
                self._cache.pop(next(iter(self._cache)))
            self._cache[window] = (
                {item.skv: item for item in result["items"]},
                list(result["deps"]),
            )
        return result

    def _validate(self, deps: List[tuple]):
        """Whether every dependency owner still matches its cached snapshot."""
        for owner, version, range_tuple in deps:
            try:
                meta = yield self.peer.call(owner, "serve_meta", {})
            except RpcError:
                return False
            if (
                not meta.get("active")
                or meta.get("version") != version
                or meta.get("range") is None
                or tuple(meta["range"]) != tuple(range_tuple)
            ):
                return False
        return True

    def invalidate(self) -> None:
        """Drop every cached window (e.g. after an out-of-band mutation)."""
        self._cache.clear()
