"""Peer-side serve RPCs: metadata probes and version-checked replica reads.

Two handlers per peer:

* ``serve_meta`` -- the client's routing probe: is this peer an active owner,
  of which range, at which :class:`~repro.datastore.items.ItemStore` version,
  with which replica set, and who is its ring successor.  One constant-size
  message; every routing policy pays it once per hop.

* ``serve_read`` -- serve the window ``(lb, ub]`` on behalf of ``owner``.
  Asked of the owner itself it answers from the primary Data Store (checking
  its range still covers the window -- a concurrent split sends the client
  back to routing).  Asked of a replica holder it answers **only** from the
  owner's last replication push, and only while that push is provably
  current: the recorded push version must equal the version the client just
  read off the owner's ``serve_meta``.  Any mutation at the owner since the
  push (insert, delete, split, shed) bumps the version and the replica
  refuses, so a replica read can never serve a stale or tombstoned copy --
  tombstoned keys are recorded in the push key set but never stored, which
  surfaces as a refusal, not as resurrected data.
"""

from __future__ import annotations

from typing import List

from repro.datastore.items import Item, items_to_wire
from repro.datastore.ranges import segments_cover_interval
from repro.index.config import IndexConfig


class ServeHandler:
    """Serve-layer RPC component of one peer."""

    def __init__(self, node, ring, store, replication, config: IndexConfig, metrics=None):
        self.node = node
        self.ring = ring
        self.store = store
        self.replication = replication
        self.config = config
        self.metrics = metrics

        node.register_handler("serve_meta", self._handle_meta)
        node.register_handler("serve_read", self._handle_read)

    def _record_metric(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.record(name, value)

    # ------------------------------------------------------------------ RPC handlers
    def _handle_meta(self, payload, request):
        """RPC: the client's routing probe (owner state + replica candidates)."""
        active = self.store.active and self.store.range is not None
        return {
            "active": active,
            "range": self.store.range.as_tuple() if active else None,
            "version": self.store.items.version,
            "replicas": (
                self.ring.joined_successors(self.config.replication_factor)
                if active
                else []
            ),
            "successor": self.ring.first_live_successor(),
        }

    def _handle_read(self, payload, request):
        """RPC: serve ``(lb, ub]`` for ``owner`` from primary or replica state."""
        lb, ub = payload["lb"], payload["ub"]
        owner = payload["owner"]
        if owner == self.node.address:
            return self._primary_read(lb, ub)
        return self._replica_read(owner, lb, ub, payload.get("version"))

    # ------------------------------------------------------------------ read paths
    def _primary_read(self, lb: float, ub: float) -> dict:
        if not self.store.active or self.store.range is None:
            return {"ok": False, "reason": "inactive"}
        segments = self.store.range.intersect_interval(lb, ub)
        if not segments_cover_interval(segments, lb, ub):
            # Our range no longer covers the whole window (split/merge raced
            # with the client's probe); send it back to routing rather than
            # return a silently partial answer.
            return {"ok": False, "reason": "moved"}
        items = self.store.local_items_in(lb, ub)
        self._record_metric("serve_read_primary", len(items))
        return {"ok": True, "items": items_to_wire(items), "source": "primary"}

    def _replica_read(self, owner: str, lb: float, ub: float, version) -> dict:
        pushed = self.replication._push_state.get(owner)
        if pushed is None:
            return {"ok": False, "reason": "no_push"}
        push_version, _stamp, keys = pushed
        if version is not None and push_version != version:
            # The owner mutated since this push: our copy may miss inserts or
            # resurrect deletions.  Strong-consistency readers go back to the
            # primary; eventual readers pass ``version=None`` and accept the
            # recorded snapshot.
            return {"ok": False, "reason": "stale"}
        replicas = self.replication.replicas
        primary = self.store.items if self.store.active else None
        collected: List[Item] = []
        for skv in keys:
            if not (lb < skv <= ub):
                continue
            if self.replication._tombstoned(skv):
                # Deleted under us since the push; never serve it.
                return {"ok": False, "reason": "tombstoned"}
            item = replicas.get(skv)
            if item is None and primary is not None:
                # We hold the primary copy ourselves (the push skipped it).
                item = primary.get(skv)
            if item is None:
                return {"ok": False, "reason": "missing"}
            collected.append(item)
        collected.sort(key=lambda item: item.skv)
        self._record_metric("serve_read_replica", len(collected))
        return {"ok": True, "items": items_to_wire(collected), "source": "replica"}
