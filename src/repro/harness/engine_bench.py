"""Event-engine microbenchmark: heap and wheel engines vs. the frozen seed.

The workload is the timeout-heavy RPC pattern that dominates churn
experiments: every call arms an ``rpc_timeout`` expiry (usually wasted,
because the reply lands within milliseconds), two latency-delayed message
deliveries, and a generator resume per reply -- plus a slice of calls to dead
peers that ride the timer to full expiry, as under real churn.  Each caller
also maintains a ring of failure-detector *watchdog* timers, one of which is
re-armed after every reply -- the cancel-heavy monitoring pattern churn
detection runs.  On the seed stack (which has no cancellation) every watchdog
rides to its full horizon, exactly as in v0.

``_Seed*`` below is a trimmed, frozen copy of the v0 engine and transport hot
path (closure-per-action heap scheduling, no timer cancellation, no delivery
batching).  Keeping it inline lets the speedup be re-measured on any machine
instead of trusting a number typed into a JSON file once.  The current stack
is driven twice -- once per engine (``heap``, ``wheel``) -- so the report is a
three-way referee: ``seed_engine`` vs ``heap_engine`` vs ``wheel_engine``.
Results go to ``BENCH_engine.json`` via ``repro-run engine_bench``.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, Network, NetworkConfig, RpcError
from repro.sim.wheel import WheelSimulator

# Engines constructed directly, NOT through make_simulator(): the bench is a
# referee between named engines, so the REPRO_ENGINE override must not
# collapse both contestants onto one implementation.
_ENGINES = {"heap": Simulator, "wheel": WheelSimulator}

RPC_LATENCY = 0.002
RPC_TIMEOUT = 0.5
THINK_TIME = 0.01
DEAD_PEER_EVERY = 20  # every 20th call targets a dead peer and rides the timer
WATCHDOG_S = 30.0  # failure-detector horizon; re-armed (or re-layered) per reply
WATCHDOGS_PER_CALLER = 8  # monitored-neighbor count per caller


# --------------------------------------------------------------------------- frozen seed stack
class _SeedEvent:
    """Seed-engine event: always-allocated callback list, closure scheduling."""

    def __init__(self, sim: "_SeedSimulator"):
        self.sim = sim
        self.callbacks = []
        self.triggered = False
        self.ok = True
        self.value: Any = None

    def succeed(self, value: Any = None) -> "_SeedEvent":
        self.triggered = True
        self.ok = True
        self.value = value
        self.sim._queue_callbacks(self)
        return self

    def fail(self, exception: BaseException) -> "_SeedEvent":
        self.triggered = True
        self.ok = False
        self.value = exception
        self.sim._queue_callbacks(self)
        return self

    def _add_callback(self, callback: Callable[["_SeedEvent"], None]) -> None:
        if self.triggered:
            self.sim._schedule(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)


class _SeedProcess(_SeedEvent):
    """Seed-engine process stepping (send/throw wrapped in per-step lambdas)."""

    def __init__(self, sim: "_SeedSimulator", generator):
        super().__init__(sim)
        self.generator = generator
        self._waiting_on: Optional[_SeedEvent] = None
        self._alive = True
        sim._schedule(0.0, lambda: self._resume(None))

    def _resume(self, trigger: Optional[_SeedEvent]) -> None:
        if not self._alive:
            return
        if trigger is not None and self._waiting_on is not trigger:
            return
        self._waiting_on = None
        if trigger is None or trigger.ok:
            value = None if trigger is None else trigger.value
            self._step(lambda: self.generator.send(value))
        else:
            self._step(lambda: self.generator.throw(trigger.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        self._waiting_on = target
        target._add_callback(self._resume)


class _SeedSimulator:
    """Seed engine: ``(time, seq, thunk)`` heap, one closure per action."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def event(self) -> _SeedEvent:
        return _SeedEvent(self)

    def timeout(self, delay: float, value: Any = None) -> _SeedEvent:
        event = _SeedEvent(self)
        self._schedule(delay, lambda: event.succeed(value))
        return event

    def process(self, generator) -> _SeedProcess:
        return _SeedProcess(self, generator)

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, action))

    def _queue_callbacks(self, event: _SeedEvent) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            self._schedule(0.0, lambda cb=callback: cb(event))

    def run(self) -> None:
        queue = self._queue
        while queue:
            self._now, _seq, action = heapq.heappop(queue)
            self.events_processed += 1
            action()


class _SeedRpcRequest:
    """Seed request record (the v0 network built one dataclass per call)."""

    def __init__(self, source, destination, method, payload, request_id):
        self.source = source
        self.destination = destination
        self.method = method
        self.payload = payload
        self.request_id = request_id


class _SeedNetwork:
    """Seed transport, faithfully: request record + stats per call, expiry
    always scheduled and never cancelled, one closure-bearing heap entry per
    message, reply dispatched through the node's ``_handle_rpc``."""

    def __init__(self, sim: _SeedSimulator):
        self.sim = sim
        self.nodes: Dict[str, Any] = {}
        self.rpc_timeouts = 0
        self.rpc_calls = 0
        self.messages_sent = 0
        self.per_method: Dict[str, int] = {}
        self._next_request_id = 0

    def call(self, source: str, destination: str, method: str, payload: Any) -> _SeedEvent:
        result = self.sim.event()
        self.rpc_calls += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1
        self._next_request_id += 1
        request = _SeedRpcRequest(source, destination, method, payload, self._next_request_id)

        def _expire() -> None:
            if not result.triggered:
                self.rpc_timeouts += 1
                result.fail(RpcError(f"{method} -> {destination} timed out"))

        self.sim._schedule(RPC_TIMEOUT, _expire)
        self.messages_sent += 1
        self.sim._schedule(RPC_LATENCY, lambda: self._deliver_request(request, result))
        return result

    def _deliver_request(self, request: _SeedRpcRequest, result: _SeedEvent) -> None:
        node = self.nodes.get(request.destination)
        if node is None or not node.alive:
            return  # dead peer: the caller rides the expiry timer
        node._handle_rpc(request, lambda value, error: self._transmit_reply(result, value, error))

    def _transmit_reply(self, result: _SeedEvent, value: Any, error) -> None:
        self.messages_sent += 1

        def _deliver() -> None:
            if result.triggered:
                return
            if error is None:
                result.succeed(value)
            else:
                result.fail(error)

        self.sim._schedule(RPC_LATENCY, _deliver)


# --------------------------------------------------------------------------- workload
class _EchoPeer:
    """Minimal live peer (identical dispatch cost on both stacks)."""

    def __init__(self, network, address: str):
        self.network = network
        self.address = address
        self.alive = True
        register = getattr(network, "register", None)
        if register is not None:
            register(self)
        else:
            network.nodes[address] = self

    def _handle_rpc(self, request, reply) -> None:
        reply({"echo": request.payload}, None)


def _routes(callers: int, rpcs_per_caller: int):
    """Precomputed (source, destinations) per caller, excluded from the timer
    (identical workload-generation cost on both stacks would dilute the ratio)."""
    plans = []
    for index in range(callers):
        destinations = [
            "dead" if r % DEAD_PEER_EVERY == 0 else f"peer{(index + r) % callers}"
            for r in range(rpcs_per_caller)
        ]
        plans.append((f"peer{index}", destinations))
    return plans


def _drive_seed_stack(callers: int, rpcs_per_caller: int) -> Dict[str, Any]:
    sim = _SeedSimulator()
    network = _SeedNetwork(sim)
    for index in range(callers):
        _EchoPeer(network, f"peer{index}")
    plans = _routes(callers, rpcs_per_caller)

    def _watchdog_fired() -> None:
        pass

    def caller(source: str, destinations):
        for round_number, destination in enumerate(destinations):
            try:
                yield network.call(source, destination, "echo", round_number)
            except RpcError:
                pass
            # v0 has no cancellation: the stale watchdog layer simply rides
            # to its horizon while a fresh one is armed on top.
            sim._schedule(WATCHDOG_S, _watchdog_fired)
            yield sim.timeout(THINK_TIME)

    started = time.perf_counter()
    for source, destinations in plans:
        sim.process(caller(source, destinations))
    sim.run()
    wall = time.perf_counter() - started
    return {
        "wall_clock_s": wall,
        "events_processed": sim.events_processed,
        "rpc_timeouts": network.rpc_timeouts,
    }


def _drive_current_stack(
    callers: int, rpcs_per_caller: int, engine: str = "heap"
) -> Dict[str, Any]:
    sim = _ENGINES[engine]()
    config = NetworkConfig(rpc_timeout=RPC_TIMEOUT, latency_model=ConstantLatency(RPC_LATENCY))
    network = Network(sim, rng=None, config=config)  # constant latency: rng unused
    for index in range(callers):
        _EchoPeer(network, f"peer{index}")
    plans = _routes(callers, rpcs_per_caller)

    def _watchdog_fired(arg) -> None:
        pass

    def caller(source: str, destinations):
        dogs = [
            sim.schedule_timer(WATCHDOG_S, _watchdog_fired, None)
            for _ in range(WATCHDOGS_PER_CALLER)
        ]
        slot = 0
        for round_number, destination in enumerate(destinations):
            try:
                yield network.call(source, destination, "echo", round_number)
            except RpcError:
                pass
            # Re-arm the next watchdog in the ring: the O(1)-cancel pattern
            # the timer API exists for.
            sim.cancel_timer(dogs[slot])
            dogs[slot] = sim.schedule_timer(WATCHDOG_S, _watchdog_fired, None)
            slot = (slot + 1) % WATCHDOGS_PER_CALLER
            yield sim.timeout(THINK_TIME)

    started = time.perf_counter()
    for source, destinations in plans:
        sim.process(caller(source, destinations))
    sim.run()
    wall = time.perf_counter() - started
    return {
        "wall_clock_s": wall,
        "events_processed": sim.events_processed,
        "rpc_timeouts": network.stats.rpc_timeouts,
    }


def run_engine_bench(
    callers: int = 1000, rpcs_per_caller: int = 40, repeats: int = 3
) -> Dict[str, Any]:
    """Run all three stacks ``repeats`` times; keep each stack's best wall time."""
    total_rpcs = callers * rpcs_per_caller
    seed_best: Dict[str, Any] = {}
    heap_best: Dict[str, Any] = {}
    wheel_best: Dict[str, Any] = {}
    for _ in range(repeats):
        seed = _drive_seed_stack(callers, rpcs_per_caller)
        if not seed_best or seed["wall_clock_s"] < seed_best["wall_clock_s"]:
            seed_best = seed
        heap = _drive_current_stack(callers, rpcs_per_caller, engine="heap")
        if not heap_best or heap["wall_clock_s"] < heap_best["wall_clock_s"]:
            heap_best = heap
        wheel = _drive_current_stack(callers, rpcs_per_caller, engine="wheel")
        if not wheel_best or wheel["wall_clock_s"] < wheel_best["wall_clock_s"]:
            wheel_best = wheel
    for stats in (seed_best, heap_best, wheel_best):
        stats["rpcs_per_wall_s"] = round(total_rpcs / stats["wall_clock_s"])
        stats["wall_clock_s"] = round(stats["wall_clock_s"], 4)
    return {
        "workload": {
            "callers": callers,
            "rpcs_per_caller": rpcs_per_caller,
            "total_rpcs": total_rpcs,
            "dead_peer_every": DEAD_PEER_EVERY,
            "rpc_timeout_s": RPC_TIMEOUT,
            "watchdog_s": WATCHDOG_S,
            "watchdogs_per_caller": WATCHDOGS_PER_CALLER,
            "repeats": repeats,
        },
        "seed_engine": seed_best,
        # "current" == the default engine (heap), kept under its historical key
        # so older tooling reading BENCH_engine.json keeps working.
        "current_engine": heap_best,
        "wheel_engine": wheel_best,
        "speedup": round(seed_best["wall_clock_s"] / heap_best["wall_clock_s"], 2),
        "wheel_speedup_vs_seed": round(
            seed_best["wall_clock_s"] / wheel_best["wall_clock_s"], 2
        ),
        "wheel_speedup_vs_heap": round(
            heap_best["wall_clock_s"] / wheel_best["wall_clock_s"], 2
        ),
    }
