"""Parallel scenario execution and benchmark JSON emission.

Scenario cells -- one ``(scenario, seed)`` pair each -- are completely
independent simulations, so the runner fans them out across CPU cores with a
process pool.  Each worker resolves the scenario name through the registry
(specs travel as names, not pickled objects, so the pool works under both fork
and spawn start methods) and returns a plain dict.

Every run is summarised into ``BENCH_<name>.json`` so the performance
trajectory of the repository is tracked from this PR onward: wall-clock,
simulated seconds, engine events per wall second, ring size, RPC volume.

Multi-seed runs are first-class: the runner executes the scenario x seed
cross product and the BENCH envelope carries, next to the raw per-cell
results, per-scenario mean/p95/min/max aggregates over the seeds (see
:func:`aggregate_cells`) -- every number becomes a distribution instead of a
single seed-0 point.  Figures honour multi-seed too: each requested seed is
run as the figure's default seed plus that offset (so ``--seeds 0`` remains
byte-identical to the historical single run) and matching rows are averaged.
"""

from __future__ import annotations

import cProfile
import inspect
import json
import os
import platform
import pstats
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.metrics import nearest_rank
from repro.harness.scenarios import (
    TransportSpec,
    get_scenario,
    get_suite,
    run_spec,
    scenario_names,
    suite_names,
)


def run_cell(
    cell: Tuple[str, int]
    | Tuple[str, int, Optional[str]]
    | Tuple[str, int, Optional[str], Optional[str]]
    | Tuple[str, int, Optional[str], Optional[str], Optional[str]]
    | Tuple[str, int, Optional[str], Optional[str], Optional[str], Optional[bool]],
) -> Dict[str, Any]:
    """Execute one ``(scenario_name, seed[, engine[, transport[, snapshot_dir[,
    warm_start]]]])`` cell.

    Top-level for picklability.  The optional third element overrides the
    spec's event engine ("heap" or "wheel"); the optional fourth overrides
    its transport ("sim" or "asyncio"); the optional fifth points at a
    snapshot cache directory (enabling capture + warm start, see
    :func:`repro.harness.scenarios.run_spec`); the optional sixth overrides
    the spec's ``warm_start`` flag.  ``None`` keeps the spec's own selection
    in every slot.
    """
    name, seed = cell[0], cell[1]
    engine = cell[2] if len(cell) > 2 else None
    transport = cell[3] if len(cell) > 3 else None
    snapshot_dir = cell[4] if len(cell) > 4 else None
    warm_start = cell[5] if len(cell) > 5 else None
    spec = get_scenario(name)
    if engine is not None:
        spec = spec.with_(engine=engine)
    if transport is not None:
        spec = spec.with_(transport=TransportSpec(name=transport))
    return run_spec(
        spec, seed=seed, snapshot_dir=snapshot_dir, warm_start=warm_start
    ).as_dict()


def run_cells(
    names: Sequence[str],
    seeds: Sequence[int] = (0,),
    processes: Optional[int] = None,
    engine: Optional[str] = None,
    transport: Optional[str] = None,
    profile_dir: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
    warm_start: Optional[bool] = None,
) -> List[Dict[str, Any]]:
    """Run the cross product of ``names`` x ``seeds``, fanned across cores.

    ``processes=None`` sizes the pool to ``min(cells, cores)``; ``processes<=1``
    runs serially in-process (no pool overhead, simpler tracebacks).
    ``engine`` / ``transport`` override every cell's event engine / transport.
    ``profile_dir`` switches to serial execution under cProfile and writes
    ``PROFILE_<scenario>.txt`` per scenario there (seeds of one scenario are
    merged into one profile).  ``snapshot_dir`` names the snapshot cache every
    cell captures into and warm-starts from (snapshots are keyed per cell, so
    the cross product shares one directory safely even across a process
    pool); ``warm_start=False`` keeps capturing but forces cold runs.
    """
    cells = [
        (name, seed, engine, transport, snapshot_dir, warm_start)
        for name in names
        for seed in seeds
    ]
    for cell in cells:
        get_scenario(cell[0])  # fail fast on unknown names, before forking
    if profile_dir is not None:
        return _run_cells_profiled(cells, profile_dir)
    if processes is None:
        processes = min(len(cells), os.cpu_count() or 1)
    if processes <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_cell, cells))


# How many functions the profile report keeps, sorted by cumulative time.
_PROFILE_TOP = 20


def _run_cells_profiled(cells: List[Tuple], out_dir: str) -> List[Dict[str, Any]]:
    """Serial cell execution under cProfile; one report per scenario.

    Multi-seed runs of the same scenario accumulate into a single profile, so
    the report reflects the scenario's aggregate hot path.  The top functions
    are printed to stderr as well, so a profiling run shows its evidence
    without opening the file.
    """
    results: List[Dict[str, Any]] = []
    profilers: Dict[str, List[cProfile.Profile]] = {}
    for cell in cells:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            results.append(run_cell(cell))
        finally:
            profiler.disable()
        profilers.setdefault(cell[0], []).append(profiler)
    for scenario, runs in profilers.items():
        path = Path(out_dir) / f"PROFILE_{scenario}.txt"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as stream:
            stats = pstats.Stats(runs[0], stream=stream)
            for extra in runs[1:]:
                stats.add(extra)
            stats.sort_stats("cumulative")
            stream.write(
                f"# cProfile: {scenario} ({len(runs)} cell(s)), "
                f"top {_PROFILE_TOP} by cumulative time\n"
            )
            stats.print_stats(_PROFILE_TOP)
        print(f"wrote {path}", file=sys.stderr)
        report = pstats.Stats(runs[0], stream=sys.stderr)
        for extra in runs[1:]:
            report.add(extra)
        report.sort_stats("cumulative")
        report.print_stats(_PROFILE_TOP)
    return results


# --------------------------------------------------------------------------- BENCH emission
def _environment() -> Dict[str, Any]:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(name: str, payload: Dict[str, Any], out_dir: str = ".") -> Path:
    """Write ``BENCH_<name>.json`` with the standard envelope; returns the path."""
    path = Path(out_dir) / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"bench": name, "environment": _environment(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def _cells_summary(
    cells: List[Dict[str, Any]], elapsed_s: Optional[float] = None
) -> Dict[str, Any]:
    """Totals over a batch of cells.

    ``total_wall_clock_s`` sums the per-cell clocks, which overlap when cells
    ran in a process pool -- dividing by it *understates* real throughput, so
    the summary reports both views: ``events_per_cell_wall_s`` (per-cell
    aggregate, comparable across pool sizes) and ``events_per_wall_s`` over
    the actual elapsed pool wall time when the caller measured it.
    """
    total_wall = sum(cell["wall_clock_s"] for cell in cells)
    total_events = sum(cell["events_processed"] for cell in cells)
    summary = {
        "cells": len(cells),
        # Which substrates executed the batch (normally one of each; mixed
        # when a suite pairs sim and asyncio cells, e.g. localhost_fidelity).
        "engines": sorted({cell["engine"] for cell in cells if "engine" in cell}),
        "transports": sorted({cell["transport"] for cell in cells if "transport" in cell}),
        "total_wall_clock_s": round(total_wall, 3),
        "total_events_processed": total_events,
        "events_per_cell_wall_s": round(total_events / total_wall) if total_wall else 0,
    }
    if elapsed_s is not None:
        summary["elapsed_wall_clock_s"] = round(elapsed_s, 3)
        summary["events_per_wall_s"] = round(total_events / elapsed_s) if elapsed_s else 0
    return summary


# Per-cell measurements aggregated across seeds into the BENCH envelope.
# ``ring_members`` / ``items_stored`` feed the CI bench gate: the gate asserts
# the end-state membership of a scenario stays inside a ±8% band across seeds,
# which the phased lifecycle makes a meaningful (non-flaky) invariant.
_AGGREGATED_FIELDS = (
    "wall_clock_s",
    "events_processed",
    "events_per_wall_s",
    "ring_members",
    "free_peers",
    "items_stored",
    "items_reachable",
    "rpc_calls",
    "rpc_timeouts",
    "messages_sent",
    "query_mean_elapsed_s",
    "query_mean_hops",
    "serve_load_variance",
)

# Sub-fields of the nested ``query_latency`` summary block aggregated across
# seeds (each gets its own mean/p95/min/max, like the flat fields above).
_LATENCY_SUBFIELDS = ("count", "mean", "p50", "p95", "p99")


def _latency_aggregate(group: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Seed aggregates of the ``query_latency`` block (empty if any cell lacks it)."""
    blocks = [cell.get("query_latency") or {} for cell in group]
    return {
        subfield: _stats([block[subfield] for block in blocks])
        for subfield in _LATENCY_SUBFIELDS
        if all(subfield in block for block in blocks)
    }


def _stats(values: Sequence[float]) -> Dict[str, float]:
    """mean/p95/min/max of a non-empty sample (nearest-rank p95)."""
    ordered = sorted(values)
    return {
        "mean": round(sum(ordered) / len(ordered), 6),
        "p95": round(nearest_rank(ordered, 0.95), 6),
        "min": round(ordered[0], 6),
        "max": round(ordered[-1], 6),
    }


def _per_method_means(group: List[Dict[str, Any]]) -> Dict[str, float]:
    """Mean RPC count per method across a scenario's seed runs.

    The per-method profile is what the maintenance ablations compare (a
    fixed-cadence cell vs. its ``_adaptive`` twin differ almost entirely in
    ``ring_ping`` volume), so the envelope carries it next to the raw
    per-cell profiles.
    """
    methods = sorted({method for cell in group for method in cell.get("rpc_per_method", {})})
    return {
        method: round(
            sum(cell.get("rpc_per_method", {}).get(method, 0) for cell in group) / len(group),
            1,
        )
        for method in methods
    }


def aggregate_cells(cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-scenario mean/p95/min/max over seeds for the standard measurements.

    Fields absent from a cell group (e.g. synthetic test cells) are simply
    omitted from its aggregate rather than raising.
    """
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for cell in cells:
        by_scenario.setdefault(cell["scenario"], []).append(cell)
    aggregates = {}
    for scenario, group in by_scenario.items():
        entry: Dict[str, Any] = {
            "seeds": [cell["seed"] for cell in group],
            **{
                field: _stats([cell[field] for cell in group])
                for field in _AGGREGATED_FIELDS
                if all(field in cell for cell in group)
            },
            "rpc_per_method_mean": _per_method_means(group),
        }
        latency = _latency_aggregate(group)
        if latency:
            entry["query_latency"] = latency
        aggregates[scenario] = entry
    return aggregates


# --------------------------------------------------------------------------- figures
def _figure_seed(name: str, offset: int) -> int:
    """The effective seed of a figure run: the figure's default plus ``offset``.

    Figures historically pin their own seed (figure_19 runs at seed 19, ...);
    offsetting keeps ``seeds=[0]`` byte-identical to those single runs while
    giving multi-seed sweeps distinct, reproducible deployments.
    """
    from repro.harness.figures import ALL_FIGURES

    default = inspect.signature(ALL_FIGURES[name]).parameters["seed"].default
    return default + offset


def run_figure_cell(cell: Tuple[str, int]) -> Dict[str, Any]:
    """Execute one ``(figure_name, seed_offset)`` cell.  Top-level for picklability."""
    from repro.harness.figures import ALL_FIGURES

    name, offset = cell
    seed = _figure_seed(name, offset)
    started = time.perf_counter()
    figure = ALL_FIGURES[name](seed=seed)
    result = figure.as_dict()
    result["seed"] = seed
    result["seed_offset"] = offset
    result["wall_clock_s"] = round(time.perf_counter() - started, 3)
    return result


def _aggregate_figure_rows(results: List[Dict[str, Any]]) -> List[List[Any]]:
    """Average matching rows (same first column) elementwise across seed runs."""
    grouped: Dict[Any, List[Sequence[Any]]] = {}
    order: List[Any] = []
    for result in results:
        for row in result["rows"]:
            key = row[0]
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(row)
    rows = []
    for key in order:
        group = grouped[key]
        width = max(len(row) for row in group)
        averaged: List[Any] = [key]
        for column in range(1, width):
            values = [
                row[column]
                for row in group
                if len(row) > column and isinstance(row[column], (int, float))
            ]
            averaged.append(round(sum(values) / len(values), 6) if values else None)
        rows.append(averaged)
    return rows


def _run_figure(
    name: str, seeds: Sequence[int], processes: Optional[int]
) -> Dict[str, Any]:
    """Run a figure once per seed offset, optionally fanned across a pool."""
    cells = [(name, offset) for offset in seeds]
    started = time.perf_counter()
    if processes is None:
        processes = min(len(cells), os.cpu_count() or 1)
    if processes <= 1 or len(cells) <= 1:
        results = [run_figure_cell(cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            results = list(pool.map(run_figure_cell, cells))
    payload: Dict[str, Any] = {
        "summary": {
            "wall_clock_s": round(time.perf_counter() - started, 3),
            "figure_runs": len(results),
        },
        "seeds": [result["seed"] for result in results],
        "results": results,
    }
    if len(results) > 1:
        payload["aggregates"] = {
            "headers": list(results[0]["headers"]),
            "rows": _aggregate_figure_rows(results),
        }
    return payload


def run_named(
    name: str,
    seeds: Sequence[int] = (0,),
    processes: Optional[int] = None,
    out_dir: Optional[str] = ".",
    engine: Optional[str] = None,
    transport: Optional[str] = None,
    profile_dir: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
    warm_start: Optional[bool] = None,
) -> Dict[str, Any]:
    """Run a registered scenario, suite or figure by name; emit its BENCH json.

    Scenario and suite runs execute the full ``scenarios x seeds`` cross
    product and carry per-scenario aggregates; figure runs execute once per
    seed offset (see :func:`_figure_seed`).  ``engine`` / ``transport``
    override every cell's event engine / transport; ``profile_dir`` captures
    per-scenario cProfile reports; ``snapshot_dir`` / ``warm_start`` enable
    the snapshot cache for every cell (see :func:`run_cells`); none of these
    apply to figures.  Returns the emitted document (also written to
    ``BENCH_<name>.json`` unless ``out_dir`` is ``None``).
    """
    from repro.harness.figures import ALL_FIGURES  # deferred: figures import the harness

    seeds = list(seeds)
    if name in suite_names():
        suite = get_suite(name)
        started = time.perf_counter()
        cells = run_cells(
            suite.scenarios,
            seeds=seeds,
            processes=processes,
            engine=engine,
            transport=transport,
            profile_dir=profile_dir,
            snapshot_dir=snapshot_dir,
            warm_start=warm_start,
        )
        elapsed = time.perf_counter() - started
        bench_name = suite.bench_name or suite.name
        payload = {
            "summary": _cells_summary(cells, elapsed),
            "seeds": seeds,
            "aggregates": aggregate_cells(cells),
            "results": cells,
        }
    elif name in ALL_FIGURES:
        if (
            engine is not None
            or transport is not None
            or profile_dir is not None
            or snapshot_dir is not None
        ):
            raise ValueError(
                "--engine/--transport/--profile/--snapshot-dir apply to scenarios "
                "and suites, not figures"
            )
        payload = _run_figure(name, seeds, processes)
        bench_name = name
    else:
        get_scenario(name)
        started = time.perf_counter()
        cells = run_cells(
            [name],
            seeds=seeds,
            processes=processes,
            engine=engine,
            transport=transport,
            profile_dir=profile_dir,
            snapshot_dir=snapshot_dir,
            warm_start=warm_start,
        )
        elapsed = time.perf_counter() - started
        bench_name = name
        payload = {
            "summary": _cells_summary(cells, elapsed),
            "seeds": seeds,
            "aggregates": aggregate_cells(cells),
            "results": cells,
        }
    if engine is not None:
        payload["engine_override"] = engine
    if transport is not None:
        payload["transport_override"] = transport
    if snapshot_dir is not None:
        payload["snapshot_dir"] = snapshot_dir
        payload["warm_started_cells"] = sum(
            1 for cell in payload.get("results", ()) if cell.get("warm_start")
        )
    if out_dir is not None:
        write_bench(bench_name, payload, out_dir=out_dir)
    return payload


def known_names() -> List[str]:
    """Every runnable name: suites first, then scenarios, then figures."""
    from repro.harness.figures import ALL_FIGURES

    return suite_names() + scenario_names() + sorted(ALL_FIGURES)
