"""Parallel scenario execution and benchmark JSON emission.

Scenario cells -- one ``(scenario, seed)`` pair each -- are completely
independent simulations, so the runner fans them out across CPU cores with a
process pool.  Each worker resolves the scenario name through the registry
(specs travel as names, not pickled objects, so the pool works under both fork
and spawn start methods) and returns a plain dict.

Every run is summarised into ``BENCH_<name>.json`` so the performance
trajectory of the repository is tracked from this PR onward: wall-clock,
simulated seconds, engine events per wall second, ring size, RPC volume.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.scenarios import (
    ScenarioResult,
    get_scenario,
    get_suite,
    run_spec,
    scenario_names,
    suite_names,
)


def run_cell(cell: Tuple[str, int]) -> Dict[str, Any]:
    """Execute one ``(scenario_name, seed)`` cell.  Top-level for picklability."""
    name, seed = cell
    return run_spec(get_scenario(name), seed=seed).as_dict()


def run_cells(
    names: Sequence[str],
    seeds: Sequence[int] = (0,),
    processes: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run the cross product of ``names`` x ``seeds``, fanned across cores.

    ``processes=None`` sizes the pool to ``min(cells, cores)``; ``processes<=1``
    runs serially in-process (no pool overhead, simpler tracebacks).
    """
    cells = [(name, seed) for name in names for seed in seeds]
    for name, _seed in cells:
        get_scenario(name)  # fail fast on unknown names, before forking
    if processes is None:
        processes = min(len(cells), os.cpu_count() or 1)
    if processes <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(run_cell, cells))


# --------------------------------------------------------------------------- BENCH emission
def _environment() -> Dict[str, Any]:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(name: str, payload: Dict[str, Any], out_dir: str = ".") -> Path:
    """Write ``BENCH_<name>.json`` with the standard envelope; returns the path."""
    path = Path(out_dir) / f"BENCH_{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"bench": name, "environment": _environment(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def _cells_summary(cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    total_wall = sum(cell["wall_clock_s"] for cell in cells)
    total_events = sum(cell["events_processed"] for cell in cells)
    return {
        "cells": len(cells),
        "total_wall_clock_s": round(total_wall, 3),
        "total_events_processed": total_events,
        "events_per_wall_s": round(total_events / total_wall) if total_wall else 0,
    }


def run_named(
    name: str,
    seeds: Sequence[int] = (0,),
    processes: Optional[int] = None,
    out_dir: Optional[str] = ".",
) -> Dict[str, Any]:
    """Run a registered scenario or suite by name; emit its BENCH json.

    Returns the emitted document (also written to ``BENCH_<name>.json`` unless
    ``out_dir`` is ``None``).
    """
    from repro.harness.figures import ALL_FIGURES  # deferred: figures import the harness

    if name in suite_names():
        suite = get_suite(name)
        cells = run_cells(suite.scenarios, seeds=seeds, processes=processes)
        bench_name = suite.bench_name or suite.name
        payload = {"summary": _cells_summary(cells), "results": cells}
    elif name in ALL_FIGURES:
        import time

        started = time.perf_counter()
        figure = ALL_FIGURES[name]()
        payload = {
            "summary": {"wall_clock_s": round(time.perf_counter() - started, 3)},
            "results": [figure.as_dict()],
        }
        bench_name = name
    else:
        get_scenario(name)
        cells = run_cells([name], seeds=seeds, processes=processes)
        bench_name = name
        payload = {"summary": _cells_summary(cells), "results": cells}
    if out_dir is not None:
        write_bench(bench_name, payload, out_dir=out_dir)
    return payload


def known_names() -> List[str]:
    """Every runnable name: suites first, then scenarios, then figures."""
    from repro.harness.figures import ALL_FIGURES

    return suite_names() + scenario_names() + sorted(ALL_FIGURES)
