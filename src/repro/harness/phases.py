"""Deployment lifecycle phases: the workload-binding spec layer.

The paper's evaluation interleaves everything -- peer arrivals, item inserts,
failures, queries -- in one implicit sequence hard-wired into the driver.
That is fine at 30 peers, but at scale it makes end states chaotic: ring
growth happens in a *split cascade* (items overflow stores, splits pull free
peers into the ring, their items overflow further stores, ...) and when the
failure window starts on a wall-clock schedule it races that cascade, so
end-state membership swings with tiny perturbations.

A :class:`PhaseSpec` decouples the lifecycle declaratively: each phase binds
its own churn schedule, item workload and query mix, and *starts on an
explicit condition* instead of whenever the previous wall-clock window
happened to end:

* ``start_offset`` -- a plain simulated-seconds delay (the legacy behaviour);
* ``start_fraction`` -- wait until that fraction of the deployment's peers
  are ring members (growth-gated);
* ``start_quiescence`` -- wait until no joins or splits have been in flight
  for the given number of simulated seconds (cascade-gated; this is what
  stops the failure window from racing the split cascade).

Conditions compose (offset first, then membership, then quiescence) and are
bounded by ``start_timeout`` so a wedged deployment still terminates.

This module also carries the scenario sub-specs a phase binds
(:class:`WorkloadSpec`, :class:`ChurnSpec`, :class:`QueryMixSpec`) so both
:mod:`repro.harness.experiment` (the executor) and
:mod:`repro.harness.scenarios` (the registry) can import them without a
cycle; the registry re-exports them under their historical names.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.workloads.churn import ChurnSchedule


# --------------------------------------------------------------------------- bound sub-specs
@dataclass(frozen=True)
class WorkloadSpec:
    """The item stream of a scenario (or of one phase of it)."""

    items: int = 180
    insert_rate: float = 2.0
    distribution: str = "uniform"  # uniform | skewed | zipf
    params: Mapping = field(default_factory=dict)  # extra args of the key generator


@dataclass(frozen=True)
class ChurnSpec:
    """Membership dynamics beyond the steady one-peer-per-period arrivals."""

    failure_rate_per_100s: float = 0.0
    failure_window: float = 100.0
    flash_crowd_peers: int = 0
    flash_crowd_at: float = 0.0
    flash_crowd_spacing: float = 0.05
    correlated_failures: int = 0  # peers killed simultaneously at phase start

    @property
    def any_churn(self) -> bool:
        return (
            self.failure_rate_per_100s > 0
            or self.flash_crowd_peers > 0
            or self.correlated_failures > 0
        )


@dataclass(frozen=True)
class QueryMixSpec:
    """Range queries issued after the deployment settles (closed loop)."""

    count: int = 0
    selectivity: float = 0.02
    spacing: float = 0.5  # simulated seconds between queries


@dataclass(frozen=True)
class ServeSpec:
    """An open-loop serve phase: arrival-rate traffic at zipf hotspots.

    Declares serving the way :class:`LatencySpec`/:class:`MaintenanceSpec`
    declare their subsystems: queries arrive with exponential interarrivals
    at ``arrival_rate`` per simulated second for ``duration`` seconds, each
    aimed at one of ``hotspots`` fixed windows drawn zipf-skewed by rank
    (exponent ``alpha``), and are issued through a serve-layer
    :class:`~repro.serve.client.QueryClient` under ``routing`` /
    ``consistency``.  Because arrivals never wait for completions, the
    measured p50/p99 latency reflects the system, not the workload --
    unlike the closed-loop :class:`QueryMixSpec`.

    ``drain`` extends the phase past the last arrival so in-flight queries
    finish before the phase result is taken.
    """

    arrival_rate: float = 20.0  # queries per simulated second
    duration: float = 10.0  # arrival window (simulated seconds)
    routing: str = "replica_lb"  # primary | replica_lb | cached
    consistency: str = "strong"  # strong | eventual
    selectivity: float = 0.02  # window width as a fraction of the key space
    hotspots: int = 8  # distinct query windows
    alpha: float = 1.1  # zipf exponent over hotspot ranks
    timeout: float = 30.0  # per-query timeout (simulated seconds)
    drain: float = 5.0  # post-arrival grace for in-flight queries

    def validate(self) -> None:
        """Raise ``ValueError`` for meaningless settings."""
        from repro.serve.client import CONSISTENCY_LEVELS, ROUTING_POLICIES

        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {self.routing!r}; known: {', '.join(ROUTING_POLICIES)}"
            )
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency {self.consistency!r}; "
                f"known: {', '.join(CONSISTENCY_LEVELS)}"
            )
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")
        if self.hotspots < 1:
            raise ValueError("hotspots must be >= 1")
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.drain < 0:
            raise ValueError("drain must be >= 0")


# --------------------------------------------------------------------------- phases
#: How phase start conditions report themselves in per-phase results.
START_IMMEDIATE = "immediate"
START_OFFSET = "offset"
START_FRACTION = "membership_fraction"
START_QUIESCENCE = "quiescence"


@dataclass(frozen=True)
class PhaseSpec:
    """One lifecycle phase: a start condition plus the activity bound to it.

    All times are relative to the end of the previous phase.  A phase with no
    bound activity and no explicit ``duration`` runs only its ``settle`` tail,
    which is how pure waiting phases (e.g. a quiescence-gated ``settle``
    between build and stress) are expressed.
    """

    name: str
    description: str = ""

    # -- start condition (offset, then membership fraction, then quiescence) --
    start_offset: float = 0.0
    start_fraction: Optional[float] = None  # of ScenarioSpec.peers in the ring
    start_quiescence: Optional[float] = None  # no joins/splits in flight for T s
    start_timeout: float = 600.0  # cap on condition waiting (simulated seconds)
    start_poll: float = 1.0  # condition re-check interval (simulated seconds)

    # -- bound activity -------------------------------------------------------
    arrivals: int = 0  # staggered free-peer arrivals during this phase
    arrival_period: float = 3.0
    arrival_start: float = 0.5  # first arrival, relative to phase start
    churn: ChurnSpec = ChurnSpec()
    # An arbitrary pre-built churn schedule (event times relative to the start
    # of this phase's activity), merged after the staggered arrivals and any
    # flash crowd.  This is how callers inject bespoke join/failure traces
    # without growing ChurnSpec a field per shape.
    schedule: Optional[ChurnSchedule] = None
    workload: Optional[WorkloadSpec] = None
    workload_start: float = 1.0  # first insert, relative to phase start
    queries: Optional[QueryMixSpec] = None
    serve: Optional[ServeSpec] = None  # open-loop serve traffic (see ServeSpec)
    duration: Optional[float] = None  # active time; None = derived from schedules
    settle: float = 0.0  # quiet tail after the activity
    # Snapshot/warm-start boundary: the world state *after* this phase is the
    # capture/restore point (see repro.snapshot).  At most one phase per
    # lifecycle may set it; with none set, the boundary defaults to after the
    # second-to-last phase.
    snapshot: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` for meaningless settings."""
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if self.start_offset < 0:
            raise ValueError("start_offset must be >= 0")
        if self.start_fraction is not None and not 0.0 < self.start_fraction <= 1.0:
            raise ValueError("start_fraction must be in (0, 1]")
        if self.start_quiescence is not None and self.start_quiescence <= 0:
            raise ValueError("start_quiescence must be positive")
        if self.start_timeout <= 0:
            raise ValueError("start_timeout must be positive")
        if self.start_poll <= 0:
            raise ValueError("start_poll must be positive")
        if self.arrivals < 0:
            raise ValueError("arrivals must be >= 0")
        if self.arrivals > 0 and self.arrival_period <= 0:
            raise ValueError("arrival_period must be positive")
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.settle < 0:
            raise ValueError("settle must be >= 0")
        if self.serve is not None:
            self.serve.validate()

    @property
    def start_condition(self) -> str:
        """The strongest configured start condition (for reporting)."""
        if self.start_quiescence is not None:
            return START_QUIESCENCE
        if self.start_fraction is not None:
            return START_FRACTION
        if self.start_offset > 0:
            return START_OFFSET
        return START_IMMEDIATE


@dataclass
class PhaseResult:
    """What one executed phase measured (all deltas are phase-local).

    ``events_processed`` / ``rpc_calls`` / ``rpc_per_method`` are differences
    against the snapshot taken when the phase began (including its start-
    condition wait), so summing them across a scenario's phases reproduces the
    scenario totals exactly -- ``tests/test_phases.py`` pins that invariant.
    """

    phase: str
    start_condition: str
    started_at_s: float  # simulated time at which the phase began waiting
    activity_at_s: float  # simulated time at which the bound activity began
    wait_s: float  # simulated time spent waiting for the start condition
    start_timed_out: bool
    sim_seconds: float  # simulated span of the whole phase (wait + activity + settle)
    wall_clock_s: float
    events_processed: int
    rpc_calls: int
    rpc_per_method: Dict[str, int] = field(default_factory=dict)
    ring_members_start: int = 0  # membership when the activity began
    ring_members: int = 0  # membership at phase end
    free_peers: int = 0
    items_stored: int = 0
    queries_run: int = 0
    queries_complete: int = 0
    correlated_failures_injected: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def validate_phases(phases: Tuple[PhaseSpec, ...]) -> None:
    """Validate a phase list as a whole (names unique, each phase valid)."""
    seen = set()
    for phase in phases:
        phase.validate()
        if phase.name in seen:
            raise ValueError(f"duplicate phase name {phase.name!r}")
        seen.add(phase.name)
    marked = [phase.name for phase in phases if phase.snapshot]
    if len(marked) > 1:
        raise ValueError(f"at most one phase may set snapshot=True, got {marked!r}")
    if marked and phases and phases[-1].snapshot:
        raise ValueError("the last phase cannot be the snapshot boundary")
