"""Per-figure reproduction of the paper's evaluation (Section 6).

Every figure is now a *registry scenario*: deployments are described by
:class:`~repro.harness.scenarios.ScenarioSpec` and built through the shared
driver, and the parameter sweeps of Figures 19/20/22 are declared as
:class:`FigureSweep` tables executed by one generic :func:`run_sweep` engine.
The ``figure_*`` functions remain as thin, signature-stable entry points (the
tier-1 tests and the benchmark suite call them directly) and are also exposed
through ``ALL_FIGURES`` so ``repro-run figure_19`` resolves them by name.

Absolute numbers differ from the paper (their testbed is a real LAN cluster;
ours is a simulator with a configurable latency model), but the comparisons
the paper draws -- which protocol is more expensive, how costs scale with
successor-list length, stabilization period, hop count and failure rate -- are
reproduced.  EXPERIMENTS.md records paper-vs-measured values.

The ``scale`` arguments exist so the benchmark suite can run the full sweep in
minutes; passing ``peers=30, items=180`` reproduces the paper's deployment
size exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.correctness import ItemTimeline, check_query_result, count_lost_items
from repro.harness.experiment import ClusterExperiment
from repro.harness.reporting import format_table
from repro.harness.scenarios import ScenarioSpec, WorkloadSpec, build_experiment
from repro.index.config import IndexConfig, default_config
from repro.sim.network import LanWanLatency, NetworkConfig


@dataclass
class FigureResult:
    """One reproduced figure: identifying metadata plus the plotted rows."""

    figure: str
    description: str
    headers: List[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: str = ""

    def as_table(self) -> str:
        """The rows as an aligned text table (printed by the benchmarks)."""
        return f"{self.figure}: {self.description}\n" + format_table(self.headers, self.rows)

    def series(self, x_index: int = 0, y_index: int = 1) -> Dict:
        """A convenience ``x -> y`` mapping over the rows."""
        return {row[x_index]: row[y_index] for row in self.rows}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the BENCH emission)."""
        return {
            "figure": self.figure,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }


def _figure_spec(config: IndexConfig, peers: int, items: int, seed: int) -> ScenarioSpec:
    """The deployment cell every figure uses: paper shape, 20 s settle."""
    return ScenarioSpec(
        name="figure_cell",
        peers=peers,
        settle_time=20.0,
        seed=seed,
        workload=WorkloadSpec(items=items),
        base_config=config,
        protocols="base",  # the sweep already selected pepper/naive flags
    )


def _build(config: IndexConfig, peers: int, items: int, seed: int) -> ClusterExperiment:
    experiment = build_experiment(_figure_spec(config, peers, items, seed))
    experiment.build()
    return experiment


# --------------------------------------------------------------------------- sweep engine
@dataclass(frozen=True)
class FigureSweep:
    """A declarative parameter sweep: one row per value, one build per variant."""

    figure: str
    description: str
    headers: Tuple[str, ...]
    notes: str
    values: Tuple
    # (seed, value) -> base IndexConfig; variants apply pepper/naive on top.
    config_for: Callable[[int, Any], IndexConfig]
    # (value, {variant: built experiment}) -> one result row
    row: Callable[[Any, Dict[str, ClusterExperiment]], Tuple]
    variants: Tuple[str, ...] = ("naive", "pepper")
    # Optional post-build phase applied to every variant (e.g. forcing merges).
    prepare: Optional[Callable[[ClusterExperiment], None]] = None


def wan_network_config(sites: int = 4) -> NetworkConfig:
    """The two-tier LAN/WAN channel used by the ``*_wan`` figure variants."""
    return NetworkConfig(latency_model=LanWanLatency(sites=sites))


def run_sweep(
    sweep: FigureSweep,
    values: Optional[Sequence] = None,
    peers: int = 18,
    items: int = 110,
    seed: int = 0,
    network: Optional[NetworkConfig] = None,
) -> FigureResult:
    """Execute a :class:`FigureSweep` and collect its rows.

    ``network`` overrides every cell's message channel (the WAN variants pass
    :func:`wan_network_config`); ``None`` keeps the paper's LAN defaults.
    """
    rows = []
    for value in values if values is not None else sweep.values:
        built: Dict[str, ClusterExperiment] = {}
        for variant in sweep.variants:
            config = sweep.config_for(seed, value)
            if network is not None:
                config = config.copy(network=network)
            if variant == "pepper":
                config = config.with_pepper_protocols()
            elif variant == "naive":
                config = config.with_naive_protocols()
            cell_seed = config.seed
            experiment = _build(config, peers, items, cell_seed)
            if sweep.prepare is not None:
                sweep.prepare(experiment)
            built[variant] = experiment
        rows.append(sweep.row(value, built))
    return FigureResult(
        figure=sweep.figure,
        description=sweep.description,
        headers=list(sweep.headers),
        rows=rows,
        notes=sweep.notes,
    )


def _force_merges(experiment: ClusterExperiment) -> None:
    """Delete most items so Data Stores underflow and peers merge away."""
    keys = list(experiment.inserted_keys)
    victims = keys[: int(len(keys) * 0.8)]
    experiment.delete_items(victims, rate=4.0)
    experiment.settle(30.0)


def _insert_succ_row(value, built) -> Tuple:
    return (
        value,
        built["naive"].mean_metric("insert_succ") or 0.0,
        built["pepper"].mean_metric("insert_succ") or 0.0,
    )


SWEEPS: Dict[str, FigureSweep] = {
    "figure_19": FigureSweep(
        figure="Figure 19",
        description="insertSucc completion time vs. successor list length",
        headers=("succ_list_length", "naive_insertSucc_s", "pepper_insertSucc_s"),
        notes="PEPPER should sit above naive and grow slowly with the list length.",
        values=(2, 3, 4, 5, 6, 7, 8),
        config_for=lambda seed, length: default_config(
            seed=seed + length, successor_list_length=length
        ),
        row=_insert_succ_row,
    ),
    "figure_20": FigureSweep(
        figure="Figure 20",
        description="insertSucc completion time vs. ring stabilization period",
        headers=("stabilization_period_s", "naive_insertSucc_s", "pepper_insertSucc_s"),
        notes="PEPPER stays close to naive as the period grows (proactive nudging).",
        values=(2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
        config_for=lambda seed, period: default_config(
            seed=seed + int(period), stabilization_period=period
        ),
        row=_insert_succ_row,
    ),
    "figure_22": FigureSweep(
        figure="Figure 22",
        description="leave / merge overhead vs. successor list length",
        headers=(
            "succ_list_length",
            "merge_with_extra_hop_s",
            "safe_leave_s",
            "naive_leave_s",
        ),
        notes="Safe leave and merge are orders of magnitude above naive leave.",
        values=(2, 3, 4, 5, 6, 7, 8),
        config_for=lambda seed, length: default_config(
            seed=seed + length, successor_list_length=length
        ),
        prepare=_force_merges,
        row=lambda length, built: (
            length,
            built["pepper"].mean_metric("merge") or 0.0,
            built["pepper"].mean_metric("leave") or 0.0,
            built["naive"].mean_metric("leave") or 0.0,
        ),
    ),
}


# --------------------------------------------------------------------------- Figure 19
def figure_19(
    succ_lengths: Optional[Sequence[int]] = None,  # default: SWEEPS["figure_19"].values
    peers: int = 18,
    items: int = 110,
    seed: int = 19,
) -> FigureResult:
    """Figure 19: insertSucc time vs. successor-list length, PEPPER vs. naive.

    Paper: naive stays flat (~0.06 s); PEPPER is higher (~0.2-0.25 s) and grows
    slowly and linearly with the list length thanks to the proactive-predecessor
    optimisation.
    """
    return run_sweep(SWEEPS["figure_19"], values=succ_lengths, peers=peers, items=items, seed=seed)


# --------------------------------------------------------------------------- Figure 20
def figure_20(
    stabilization_periods: Optional[Sequence[float]] = None,  # default: SWEEPS["figure_20"].values
    peers: int = 18,
    items: int = 110,
    seed: int = 20,
) -> FigureResult:
    """Figure 20: insertSucc time vs. ring stabilization period.

    Paper: naive is flat; PEPPER grows only mildly with the stabilization period
    because the proactive nudges decouple it from the periodic rounds.
    """
    return run_sweep(
        SWEEPS["figure_20"], values=stabilization_periods, peers=peers, items=items, seed=seed
    )


# --------------------------------------------------------------------------- Figure 21
def figure_21(
    hop_targets: Sequence[int] = (1, 2, 4, 6, 8, 10),
    peers: int = 18,
    items: int = 110,
    queries_per_target: int = 4,
    seed: int = 21,
) -> FigureResult:
    """Figure 21: range-scan elapsed time vs. ring hops, scanRange vs. naive scan.

    Paper: the two curves lie on top of each other (scanRange adds essentially
    no overhead) and grow only slightly with the hop count on a LAN.
    """
    config = default_config(seed=seed).with_pepper_protocols()
    experiment = _build(config, peers, items, seed)
    index = experiment.index
    rng = index.rngs.stream("figure21")

    per_hops: Dict[int, Dict[str, List[float]]] = {}
    members = index.ring_members()
    if len(members) < 2:
        raise RuntimeError("figure_21 needs at least two ring members")
    for target in hop_targets:
        for _ in range(queries_per_target):
            members = index.ring_members()
            values = [peer.ring.value for peer in members]
            if len(values) < 3:
                continue
            start = rng.randrange(len(values) - 1)
            end = min(start + target, len(values) - 1)
            if end <= start:
                continue
            lb, ub = values[start], values[end]
            via = members[rng.randrange(len(members))]
            scan = index.run_process(via.queries.query(lb, ub, strategy="scan"))
            naive = index.run_process(via.queries.query(lb, ub, strategy="naive"))
            bucket = per_hops.setdefault(scan["hops"], {"scan": [], "naive": []})
            bucket["scan"].append(scan["scan_elapsed"])
            bucket["naive"].append(naive["scan_elapsed"])
            index.run(0.5)

    rows = []
    for hops in sorted(per_hops):
        bucket = per_hops[hops]
        if not bucket["scan"] or not bucket["naive"]:
            continue
        rows.append(
            (
                hops,
                sum(bucket["scan"]) / len(bucket["scan"]),
                sum(bucket["naive"]) / len(bucket["naive"]),
            )
        )
    return FigureResult(
        figure="Figure 21",
        description="range scan elapsed time vs. number of hops along the ring",
        headers=["hops", "scanRange_s", "naive_application_scan_s"],
        rows=rows,
        notes="The two strategies should track each other closely (no overhead).",
    )


# --------------------------------------------------------------------------- Figure 22
def figure_22(
    succ_lengths: Optional[Sequence[int]] = None,  # default: SWEEPS["figure_22"].values
    peers: int = 14,
    items: int = 90,
    seed: int = 22,
) -> FigureResult:
    """Figure 22: cost of leave / leave+merge vs. naive leave (log scale in the paper).

    Paper: the availability-preserving leave and the Data Store merge (which
    includes the extra-hop replication) cost on the order of 100 ms, roughly
    flat in the successor-list length, while the naive leave costs ~1 ms.
    """
    return run_sweep(SWEEPS["figure_22"], values=succ_lengths, peers=peers, items=items, seed=seed)


# --------------------------------------------------------------------------- Figure 23
def figure_23(
    failure_rates: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0),
    peers: int = 14,
    items: int = 90,
    extra_peers: int = 8,
    seed: int = 23,
    network: Optional[NetworkConfig] = None,
) -> FigureResult:
    """Figure 23: insertSucc time under peer failures (failure mode).

    Paper: the PEPPER insertSucc degrades gracefully, from ~0.2 s with no
    failures to ~1.2 s at one failure every 10 seconds (rate 10 per 100 s).
    """
    rows = []
    for rate in failure_rates:
        config = default_config(seed=seed + int(rate)).with_pepper_protocols()
        if network is not None:
            config = config.copy(network=network)
        experiment = _build(config, peers, items, seed + int(rate))
        index = experiment.index

        before = len(index.metrics.values("insert_succ"))
        # Failure phase: keep adding peers and items (so splits keep invoking
        # insertSucc) while killing ring members at the requested rate.
        if rate > 0:
            index.sim.process(
                experiment._membership_driver(
                    _failure_events(experiment, rate, duration=100.0)
                ),
                name="driver:failures",
            )
        new_keys = [
            key + 0.37
            for key in experiment.inserted_keys[: items // 2]
        ]
        experiment.grow(extra_peers, period=3.0)
        experiment.insert_items(new_keys, rate=2.0)
        experiment.settle(20.0)

        values = index.metrics.values("insert_succ")[before:]
        mean = sum(values) / len(values) if values else 0.0
        rows.append((rate, mean, len(values)))
    return FigureResult(
        figure="Figure 23",
        description="insertSucc completion time vs. peer failure rate",
        headers=["failures_per_100s", "pepper_insertSucc_s", "samples"],
        rows=rows,
        notes="insertSucc slows down with the failure rate but stays bounded.",
    )


def _failure_events(experiment: ClusterExperiment, rate: float, duration: float):
    from repro.workloads.churn import failure_schedule

    rng = experiment.index.rngs.stream("figure23-failures")
    return failure_schedule(rate, duration, rng, start=experiment.index.sim.now + 1.0)


# --------------------------------------------------------------------------- WAN variants
# The same sweeps with peers spread over 4 sites and 20-80 ms cross-site
# round-trips: the paper's cost *orderings* (PEPPER above naive, growth with
# list length / stabilization period / failure rate) must survive WAN
# conditions even though every absolute number scales with the round-trip.
def _wan_result(result: FigureResult) -> FigureResult:
    result.figure += " (WAN)"
    result.description += " under 4-site LAN/WAN latency"
    return result


def figure_19_wan(
    succ_lengths: Optional[Sequence[int]] = None,
    peers: int = 18,
    items: int = 110,
    seed: int = 19,
) -> FigureResult:
    """Figure 19 rerun under the two-tier LAN/WAN latency model (4 sites)."""
    return _wan_result(
        run_sweep(
            SWEEPS["figure_19"],
            values=succ_lengths,
            peers=peers,
            items=items,
            seed=seed,
            network=wan_network_config(),
        )
    )


def figure_20_wan(
    stabilization_periods: Optional[Sequence[float]] = None,
    peers: int = 18,
    items: int = 110,
    seed: int = 20,
) -> FigureResult:
    """Figure 20 rerun under the two-tier LAN/WAN latency model (4 sites)."""
    return _wan_result(
        run_sweep(
            SWEEPS["figure_20"],
            values=stabilization_periods,
            peers=peers,
            items=items,
            seed=seed,
            network=wan_network_config(),
        )
    )


def figure_23_wan(
    failure_rates: Sequence[float] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0),
    peers: int = 14,
    items: int = 90,
    extra_peers: int = 8,
    seed: int = 23,
) -> FigureResult:
    """Figure 23 rerun under the two-tier LAN/WAN latency model (4 sites)."""
    return _wan_result(
        figure_23(
            failure_rates,
            peers=peers,
            items=items,
            extra_peers=extra_peers,
            seed=seed,
            network=wan_network_config(),
        )
    )


# --------------------------------------------------------------------------- Ablation A1
def ablation_query_correctness(
    peers: int = 14,
    items: int = 90,
    queries: int = 20,
    seed: int = 41,
) -> FigureResult:
    """Ablation A1 (Section 4.2): query-correctness violations under churn.

    Runs the same churny workload twice -- once answering queries with
    scanRange, once with the naive application-level scan -- and counts queries
    that miss items which were live throughout their execution (Definition 4).
    scanRange should report zero violations.
    """
    rows = []
    for strategy in ("scan", "naive"):
        config = default_config(seed=seed).with_pepper_protocols()
        if strategy == "naive":
            config = config.copy(use_scan_range=False)
        experiment = _build(config, peers, items, seed)
        index = experiment.index
        rng = index.rngs.stream("ablation-a1")

        # Background churn: keep deleting and re-inserting items so splits,
        # merges and redistributions overlap with the queries.
        churn_keys = list(experiment.inserted_keys)
        index.sim.process(
            _item_churn_driver(experiment, churn_keys, rng), name="driver:item-churn"
        )

        violations = 0
        executed = 0
        for _ in range(queries):
            members = index.ring_members()
            if len(members) < 3:
                break
            values = [peer.ring.value for peer in members]
            start = rng.randrange(len(values) - 2)
            end = min(start + rng.randrange(2, 6), len(values) - 1)
            lb, ub = values[start], values[end]
            if ub <= lb:
                continue
            outcome = experiment.run_query(lb, ub)
            executed += 1
            index.run(1.0)
            timeline = ItemTimeline(index.history.history())
            check = check_query_result(timeline, outcome.record)
            if not check.ok:
                violations += 1
        rows.append((strategy, executed, violations))
    return FigureResult(
        figure="Ablation A1",
        description="range queries missing live items under churn (Definition 4)",
        headers=["strategy", "queries", "violating_queries"],
        rows=rows,
        notes="scanRange must report zero violations; the naive scan may miss items.",
    )


def _item_churn_driver(experiment: ClusterExperiment, keys: List[float], rng):
    """Continuously delete and re-insert items to force Data Store maintenance."""
    index = experiment.index
    while True:
        yield index.sim.timeout(0.4)
        if not keys:
            return
        key = rng.choice(keys)
        yield from index.delete_item(key)
        yield index.sim.timeout(0.4)
        yield from index.insert_item(key, payload="churned")


# --------------------------------------------------------------------------- Ablation A2
def ablation_availability(
    peers: int = 12,
    items: int = 80,
    seed: int = 42,
) -> FigureResult:
    """Ablation A2 (Section 5): item loss and ring health after merges + a failure.

    Forces Data Store merges (peers leaving the ring) and then fails a peer.
    With the extra-hop replication and the availability-preserving leave no
    items should be lost; with the naive baselines, items can disappear (the
    Figure 17 scenario).
    """
    rows = []
    for label in ("pepper", "naive"):
        config = default_config(seed=seed, replication_factor=1).with_pepper_protocols()
        if label == "naive":
            config = config.copy(
                extra_hop_replication=False, safe_leave=False
            )
        experiment = _build(config, peers, items, seed)
        index = experiment.index

        merges_before = index.metrics.count("merge")
        keys = list(experiment.inserted_keys)
        experiment.delete_items(keys[: int(len(keys) * 0.7)], rate=4.0)
        merges = index.metrics.count("merge") - merges_before

        # Fail one surviving ring member immediately after the merges.
        members = index.ring_members()
        if len(members) > 2:
            index.fail_peer(members[len(members) // 2].address)
        experiment.settle(40.0)

        lost = count_lost_items(index.history.history(), index.live_peers())
        rows.append((label, merges, len(lost)))
    return FigureResult(
        figure="Ablation A2",
        description="items lost after merges followed by a single failure",
        headers=["protocols", "merges", "lost_items"],
        rows=rows,
        notes="The paper's protocols must lose nothing; the naive baseline may.",
    )


# --------------------------------------------------------------------------- registry
ALL_FIGURES = {
    "figure_19": figure_19,
    "figure_19_wan": figure_19_wan,
    "figure_20": figure_20,
    "figure_20_wan": figure_20_wan,
    "figure_21": figure_21,
    "figure_22": figure_22,
    "figure_23": figure_23,
    "figure_23_wan": figure_23_wan,
    "ablation_query_correctness": ablation_query_correctness,
    "ablation_availability": ablation_availability,
}
