"""Declarative scenario registry: one spec = one reproducible deployment cell.

The paper's evaluation runs a single 30-peer LAN deployment; everything the
harness measured was hard-wired to that shape.  A :class:`ScenarioSpec`
instead *describes* a deployment -- size and arrival schedule, churn (steady
failure rate, flash crowds, correlated rack outages), item workload (count,
rate, key distribution), query mix, protocol selection, network conditions
(:class:`LatencySpec`, resolved through
:func:`repro.sim.network.latency_model_from_params`), maintenance adaptivity
(:class:`MaintenanceSpec`, resolved through
:func:`repro.maintenance.policy.maintenance_policy_from_params`) and index
configuration -- and the driver executes any spec through the same code path.

Scenarios are registered by name in a process-global registry, so experiments
become one-liners::

    from repro.harness.scenarios import get_scenario, run_spec
    result = run_spec(get_scenario("churn_heavy"), seed=3)

``repro-run <name>`` (see :mod:`repro.cli`) and the multiprocessing cell
runner (:mod:`repro.harness.runner`) resolve names through the same registry.

Adding a scenario is one :func:`register` call; see the built-in definitions
at the bottom of this module for templates.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.experiment import ClusterExperiment, ExperimentSettings
from repro.harness.metrics import nearest_rank
from repro.harness.phases import (
    ChurnSpec,
    PhaseResult,
    PhaseSpec,
    QueryMixSpec,
    ServeSpec,
    WorkloadSpec,
    validate_phases,
)
from repro.index.config import IndexConfig, default_config
from repro.maintenance.policy import MaintenancePolicy, maintenance_policy_from_params
from repro.sim.network import (
    CROSS_SITE_LATENCY_METRIC,
    INTRA_SITE_LATENCY_METRIC,
    LatencyModel,
    latency_model_from_params,
)
from repro.sim.engine import ENGINE_ENV_VAR
from repro.snapshot import (
    SnapshotRestoreError,
    build_hash,
    capture_world,
    harness_results,
    load_snapshot,
    reach_parked_state,
    restore_world,
    save_snapshot,
    snapshot_path,
)
from repro.transport.api import TRANSPORT_ENV_VAR, TRANSPORT_NAMES
from repro.workloads.churn import ChurnSchedule, flash_crowd_schedule

__all__ = [
    "ChurnSpec",
    "LatencySpec",
    "MaintenanceSpec",
    "PhaseResult",
    "PhaseSpec",
    "QueryMixSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSuite",
    "ServeSpec",
    "TransportSpec",
    "WorkloadSpec",
    "build_experiment",
    "get_scenario",
    "get_suite",
    "register",
    "register_suite",
    "run_spec",
    "scenario_names",
    "snapshot_boundary",
    "suite_names",
]


# --------------------------------------------------------------------------- spec dataclasses
# WorkloadSpec / ChurnSpec / QueryMixSpec / PhaseSpec live in
# :mod:`repro.harness.phases` (the executor needs them too) and are
# re-exported here, their historical home.
@dataclass(frozen=True)
class LatencySpec:
    """The network conditions of a scenario.

    ``model`` names a registered latency model (``constant`` / ``uniform`` /
    ``lan_wan``); ``None`` keeps whatever the resolved :class:`IndexConfig`
    already carries (the paper's LAN bounds by default).  ``params`` are flat
    keyword arguments for the model -- ``lan_wan`` takes ``sites`` plus the
    flattened ``lan_low``/``lan_high``/``wan_low``/``wan_high`` bounds (see
    :func:`repro.sim.network.latency_model_from_params`).
    """

    model: Optional[str] = None
    params: Mapping = field(default_factory=dict)

    def build_model(self) -> Optional[LatencyModel]:
        """Instantiate (and validate) the configured model, or ``None``."""
        if self.model is None:
            return None
        return latency_model_from_params(self.model, **dict(self.params))


@dataclass(frozen=True)
class MaintenanceSpec:
    """The maintenance-adaptivity policy of a scenario (mirrors :class:`LatencySpec`).

    ``policy`` names a registered maintenance preset (``fixed`` /
    ``adaptive``); ``None`` keeps whatever the resolved
    :class:`~repro.index.config.IndexConfig` already carries (the historical
    fixed timers by default).  ``params`` are flat keyword overrides for
    individual :class:`~repro.maintenance.policy.MaintenancePolicy` fields --
    e.g. ``{"redirect_cache_size": 0}`` runs adaptive cadences without the
    join-redirect cache, which is how single mechanisms are ablated.
    """

    policy: Optional[str] = None
    params: Mapping = field(default_factory=dict)

    def build_policy(self) -> Optional[MaintenancePolicy]:
        """Instantiate (and validate) the configured policy, or ``None``."""
        if self.policy is None:
            return None
        return maintenance_policy_from_params(self.policy, **dict(self.params))


@dataclass(frozen=True)
class TransportSpec:
    """The execution substrate of a scenario (mirrors :class:`LatencySpec`).

    ``name`` selects a registered transport:

    * ``"sim"`` -- the seeded discrete-event simulator (deterministic;
      latency/loss come from the spec's :class:`LatencySpec`);
    * ``"asyncio"`` -- real UDP sockets on localhost with wall-clock periods
      (latency comes from the real loopback path; one wall second per
      scenario second).

    ``None`` keeps whatever the resolved
    :class:`~repro.index.config.IndexConfig` already carries (``"sim"`` by
    default).  The ``REPRO_TRANSPORT`` environment variable and ``repro-run
    --transport`` override the spec's choice for a whole process, exactly as
    ``REPRO_ENGINE``/``--engine`` override the event engine.

    >>> TransportSpec().resolve() is None
    True
    >>> TransportSpec(name="asyncio").resolve()
    'asyncio'
    >>> TransportSpec(name="carrier-pigeon").resolve()
    Traceback (most recent call last):
        ...
    ValueError: unknown transport 'carrier-pigeon'; known: sim, asyncio
    """

    name: Optional[str] = None

    def resolve(self) -> Optional[str]:
        """Validate and return the selected transport name, or ``None``."""
        if self.name is None:
            return None
        if self.name not in TRANSPORT_NAMES:
            raise ValueError(
                f"unknown transport {self.name!r}; known: {', '.join(TRANSPORT_NAMES)}"
            )
        return self.name


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, named description of one experiment cell.

    The lifecycle is declared either *flat* (the historical shape: the
    ``workload``/``churn``/``queries`` fields plus ``settle_time``, executed
    as build -> failures -> outage -> queries) or *phased* (an explicit
    ``phases`` tuple of :class:`~repro.harness.phases.PhaseSpec`).  When
    ``phases`` is empty, :meth:`resolved_phases` synthesises the legacy
    sequence from the flat fields, so both shapes run through the same
    executor and a flat spec behaves exactly as it always did.
    """

    name: str
    description: str = ""
    peers: int = 30
    join_period: float = 3.0
    settle_time: float = 30.0
    protocols: str = "pepper"  # pepper | naive | base (keep base_config's flags)
    seed: int = 0
    workload: WorkloadSpec = WorkloadSpec()
    churn: ChurnSpec = ChurnSpec()
    queries: QueryMixSpec = QueryMixSpec()
    # Open-loop serve traffic appended as a final phase (see ServeSpec); the
    # phased shape binds a ServeSpec to any PhaseSpec directly instead.
    serve: Optional[ServeSpec] = None
    latency: LatencySpec = LatencySpec()
    maintenance: MaintenanceSpec = MaintenanceSpec()
    phases: Tuple[PhaseSpec, ...] = ()  # explicit lifecycle; () = legacy flat shape
    config: Mapping = field(default_factory=dict)  # IndexConfig field overrides
    base_config: Optional[IndexConfig] = None  # full config object (figures use this)
    # Event-engine selection: "heap" (default) or "wheel".  Both engines honor
    # the same determinism contract, so a cell's end-state metrics are
    # engine-independent; the REPRO_ENGINE environment variable overrides this
    # for the whole process.
    engine: str = "heap"
    # Transport selection: in-sim (default) or real asyncio sockets; see
    # :class:`TransportSpec`.  The ``engine`` field only applies under "sim".
    transport: TransportSpec = TransportSpec()
    # Whether :func:`run_spec` may *resume* from an existing snapshot when a
    # snapshot directory is supplied (capture always happens so later runs can
    # warm-start).  A pure runner knob: it never changes what a run computes
    # (the resume-parity matrix pins warm == cold exactly), only how much of
    # the lifecycle is re-executed, and it is excluded from the snapshot key.
    warm_start: bool = True

    # -- derived -----------------------------------------------------------
    def index_config(self, seed: Optional[int] = None) -> IndexConfig:
        """Resolve the spec into a validated :class:`IndexConfig`."""
        seed = self.seed if seed is None else seed
        if self.base_config is not None:
            config = self.base_config.copy(seed=seed, **dict(self.config))
        else:
            config = default_config(seed=seed, **dict(self.config))
        latency_model = self.latency.build_model()
        if latency_model is not None:
            config = config.copy(
                network=replace(config.network, latency_model=latency_model)
            )
        maintenance_policy = self.maintenance.build_policy()
        if maintenance_policy is not None:
            config = config.copy(maintenance=maintenance_policy)
        if self.engine != "heap":
            # Only a non-default selection overrides the resolved config, so a
            # base_config that already picked an engine keeps it.
            config = config.copy(engine=self.engine)
        transport_name = self.transport.resolve()
        if transport_name is not None:
            config = config.copy(transport=transport_name)
        if self.protocols == "pepper":
            config = config.with_pepper_protocols()
        elif self.protocols == "naive":
            config = config.with_naive_protocols()
        elif self.protocols != "base":
            raise ValueError(f"unknown protocol selection {self.protocols!r}")
        config.validate()
        return config

    def settings(self, seed: Optional[int] = None) -> ExperimentSettings:
        return ExperimentSettings(
            peers=self.peers,
            items=self.workload.items,
            peer_join_period=self.join_period,
            item_insert_rate=self.workload.insert_rate,
            settle_time=self.settle_time,
            failure_rate_per_100s=self.churn.failure_rate_per_100s,
            failure_window=self.churn.failure_window,
            seed=self.seed if seed is None else seed,
            key_distribution=self.workload.distribution,
            key_params=dict(self.workload.params),
        )

    def with_(self, **overrides) -> "ScenarioSpec":
        """A copy with the given top-level fields replaced."""
        return replace(self, **overrides)

    def resolved_phases(self) -> Tuple[PhaseSpec, ...]:
        """The phase sequence this spec executes.

        An explicit ``phases`` tuple is validated and returned as-is.  A flat
        spec resolves into the legacy lifecycle -- it reproduces the
        historical driver's event trace exactly (``tests/test_phases.py``
        pins the equivalence):

        1. ``build``: staggered arrivals + flash crowd + the item stream,
           then ``settle_time`` of quiet;
        2. ``failures`` (if a steady failure rate is set): the failure
           window;
        3. ``outage`` (if correlated failures are set): the simultaneous
           shot, then ``settle_time`` of quiet;
        4. ``queries`` (if a query mix is set): the query loop;
        5. ``serve`` (if a :class:`ServeSpec` is set): the open-loop serve
           window plus its drain.
        """
        if self.phases:
            validate_phases(self.phases)
            return tuple(self.phases)
        build_churn = ChurnSpec(
            flash_crowd_peers=self.churn.flash_crowd_peers,
            flash_crowd_at=self.churn.flash_crowd_at,
            flash_crowd_spacing=self.churn.flash_crowd_spacing,
        )
        phases = [
            PhaseSpec(
                name="build",
                arrivals=self.peers - 1,
                arrival_period=self.join_period,
                churn=build_churn,
                workload=self.workload,
                settle=self.settle_time,
            )
        ]
        if self.churn.failure_rate_per_100s > 0:
            phases.append(
                PhaseSpec(
                    name="failures",
                    churn=ChurnSpec(
                        failure_rate_per_100s=self.churn.failure_rate_per_100s,
                        failure_window=self.churn.failure_window,
                    ),
                )
            )
        if self.churn.correlated_failures > 0:
            phases.append(
                PhaseSpec(
                    name="outage",
                    churn=ChurnSpec(correlated_failures=self.churn.correlated_failures),
                    settle=self.settle_time,
                )
            )
        if self.queries.count > 0:
            phases.append(PhaseSpec(name="queries", queries=self.queries))
        if self.serve is not None:
            phases.append(PhaseSpec(name="serve", serve=self.serve))
        return tuple(phases)

    def total_items(self) -> int:
        """Items the resolved lifecycle inserts (the ``items_requested`` figure)."""
        return sum(
            phase.workload.items
            for phase in self.resolved_phases()
            if phase.workload is not None
        )


@dataclass
class ScenarioResult:
    """Everything a scenario run measured, JSON-serialisable via :meth:`as_dict`."""

    scenario: str
    seed: int
    wall_clock_s: float
    sim_time_s: float
    events_processed: int
    events_per_wall_s: float
    peers_requested: int
    ring_members: int
    free_peers: int
    items_requested: int
    items_stored: int
    rpc_calls: int
    rpc_timeouts: int
    messages_sent: int
    # RPC count per method name -- the per-method profile the maintenance
    # ablations compare (e.g. ``ring_ping`` fixed vs. adaptive cadence).
    rpc_per_method: Dict[str, int] = field(default_factory=dict)
    # Which event engine executed the cell ("heap" or "wheel"; "asyncio"
    # when the asyncio transport's wall-clock loop drove it).
    engine: str = "heap"
    # Which transport carried the cell's messages ("sim" or "asyncio").
    transport: str = "sim"
    # Scan-vs-store audit (see PRingIndex.reachability): copies a full scan
    # would return vs. copies stranded outside their holder's range.  The CI
    # bench gate asserts items_reachable == items_stored.
    items_reachable: int = 0
    items_stranded: int = 0
    queries_run: int = 0
    queries_complete: int = 0
    # Query latency summary over every executed query (count/mean/p50/p95/p99,
    # seconds); empty when the cell ran no queries.  This is the first-class
    # latency block -- the two mean fields below are kept as derived aliases
    # of it for older BENCH tooling.
    query_latency: Dict[str, float] = field(default_factory=dict)
    query_mean_elapsed_s: float = 0.0
    query_mean_hops: float = 0.0
    # Serve-phase observables (zero/absent when the cell had no serve phase):
    # open-loop queries recorded, how many returned exactly the reachable key
    # set of their window, and the population variance of per-peer read load
    # over the final ring membership (the replica_lb balancing observable).
    serve_queries: int = 0
    serve_correct: int = 0
    serve_load_variance: float = 0.0
    correlated_failures_injected: int = 0
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Site-aware network diagnostics (populated only under a lan_wan model).
    per_site_rpcs: Dict[str, int] = field(default_factory=dict)
    latency_histograms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Per-phase measurements (serialised PhaseResult dicts, execution order);
    # the event/RPC deltas sum to the scenario totals above.
    phases: List[Dict[str, Any]] = field(default_factory=list)
    # Whether this run resumed from a snapshot instead of replaying the
    # pre-boundary phases (wall_clock_s then covers only the resumed part).
    warm_start: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


# --------------------------------------------------------------------------- execution
# Metric series summarised into every result (when observed during the run).
_REPORTED_METRICS = (
    "insert_succ",
    "split",
    "merge",
    "leave",
    "route_hops",
    "join_redirect",
    "join_redirect_cached",
    "ring_ping_fresh_skip",
    "serve_read_primary",
    "serve_read_replica",
    "serve_cache_invalidate",
    "scan_window_pruned",
    INTRA_SITE_LATENCY_METRIC,
    CROSS_SITE_LATENCY_METRIC,
)

# Histogram bucket edges (seconds) for the per-message latency series: the
# first three cover the paper's LAN band, the rest the WAN round-trip band.
LATENCY_HISTOGRAM_EDGES = (0.001, 0.003, 0.01, 0.03, 0.06, 0.1)


def build_experiment(spec: ScenarioSpec, seed: Optional[int] = None) -> ClusterExperiment:
    """Materialise the spec into an (unbuilt) :class:`ClusterExperiment`."""
    extra: Optional[ChurnSchedule] = None
    if spec.churn.flash_crowd_peers > 0:
        extra = flash_crowd_schedule(
            spec.churn.flash_crowd_peers,
            at=spec.churn.flash_crowd_at,
            spacing=spec.churn.flash_crowd_spacing,
        )
    return ClusterExperiment(
        spec.index_config(seed), spec.settings(seed), extra_churn=extra
    )


def snapshot_boundary(phases: Sequence[PhaseSpec]) -> Optional[int]:
    """Index of the phase *after which* the world is captured/restored.

    An explicit ``snapshot=True`` phase wins; otherwise the boundary defaults
    to the second-to-last phase (resuming skips everything but the final
    phase, which is the one being iterated on).  ``None`` -- a single-phase
    lifecycle -- means there is nothing worth snapshotting.
    """
    for position, phase in enumerate(phases):
        if phase.snapshot:
            return position
    if len(phases) >= 2:
        return len(phases) - 2
    return None


@dataclass(frozen=True)
class _SnapshotPlan:
    """Where this run's snapshot lives and where the lifecycle splits."""

    path: Any
    key: str
    engine: str
    boundary: int


def _snapshot_plan(
    spec: ScenarioSpec, seed: int, phases: Tuple[PhaseSpec, ...], snapshot_dir
) -> Optional[_SnapshotPlan]:
    """Resolve the snapshot file for this cell, or ``None`` if not snapshotable.

    Only the simulated transport snapshots (the asyncio transport runs in
    wall-clock real time against real sockets), and the resolved engine is
    part of the key: heap and wheel produce identical end states but distinct
    event *traces*, and a snapshot resumes a trace.
    """
    boundary = snapshot_boundary(phases)
    if boundary is None:
        return None
    config = spec.index_config(seed)
    transport_name = os.environ.get(TRANSPORT_ENV_VAR) or config.transport
    if transport_name != "sim":
        return None
    engine = os.environ.get(ENGINE_ENV_VAR) or config.engine
    key = build_hash(spec, phases[: boundary + 1])
    return _SnapshotPlan(
        path=snapshot_path(snapshot_dir, spec.name, key, seed, engine),
        key=key,
        engine=engine,
        boundary=boundary,
    )


def run_spec(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    snapshot_dir=None,
    warm_start: Optional[bool] = None,
) -> ScenarioResult:
    """Execute one scenario cell and collect its measurements.

    The spec's resolved phase sequence (explicit ``phases``, or the legacy
    build -> failures -> outage -> queries decomposition of a flat spec) runs
    through :meth:`ClusterExperiment.run_phases`; the result carries both the
    historical scenario totals and the per-phase breakdown.

    With a ``snapshot_dir``, the run participates in snapshot/warm-start (see
    :mod:`repro.snapshot`): a cold run pauses at the boundary phase, steps to
    a parked instant and captures the world to disk; a later run of the same
    ``(spec, seed, engine)`` resumes from that instant and re-executes only
    the post-boundary phases, with an end state *identical* to the cold run's
    in every field.  ``warm_start`` (default: the spec's ``warm_start`` field)
    only controls whether an existing snapshot may be *used*; capturing
    happens regardless so the next run can resume.  Without a ``snapshot_dir``
    the behaviour is exactly the historical straight-through run.
    """
    seed = spec.seed if seed is None else seed
    resume_ok = spec.warm_start if warm_start is None else warm_start
    started = time.perf_counter()
    phases = spec.resolved_phases()
    plan = None if snapshot_dir is None else _snapshot_plan(spec, seed, phases, snapshot_dir)
    if plan is None:
        experiment = build_experiment(spec, seed)
        try:
            return _run_spec_on(experiment, spec, seed, started)
        finally:
            # Release transport resources (asyncio sockets and loops; a no-op
            # for the simulated transport) even when a phase raises.
            experiment.index.shutdown()

    pre, post = phases[: plan.boundary + 1], phases[plan.boundary + 1 :]

    if resume_ok:
        state = load_snapshot(plan.path, plan.key, seed, plan.engine)
        if state is not None:
            try:
                experiment = restore_world(spec, seed, state)
            except SnapshotRestoreError:
                # The world the spec builds no longer matches the snapshot
                # (e.g. the loop inventory changed under the same hash);
                # rebuild cold below, which also rewrites the file.
                pass
            else:
                try:
                    pre_results, pre_outcomes, pre_victims = harness_results(state)
                    results, outcomes, victims = experiment.run_phases(
                        post, total_peers=spec.peers
                    )
                    return _finalize_result(
                        experiment,
                        spec,
                        seed,
                        started,
                        pre_results + results,
                        pre_outcomes + outcomes,
                        pre_victims + victims,
                        warm_start=True,
                    )
                finally:
                    experiment.index.shutdown()

    # Cold run with capture: play the pre-boundary phases, step to a parked
    # instant (a no-save fallback if none is reached in bound -- a capture
    # miss costs future warm starts, never correctness), save, continue.
    experiment = build_experiment(spec, seed)
    try:
        pre_results, pre_outcomes, pre_victims = experiment.run_phases(
            pre, total_peers=spec.peers
        )
        if reach_parked_state(experiment):
            state = capture_world(experiment, pre_results, pre_outcomes, pre_victims)
            save_snapshot(plan.path, plan.key, seed, plan.engine, state)
        results, outcomes, victims = experiment.run_phases(post, total_peers=spec.peers)
        return _finalize_result(
            experiment,
            spec,
            seed,
            started,
            pre_results + results,
            pre_outcomes + outcomes,
            pre_victims + victims,
        )
    finally:
        experiment.index.shutdown()


def _run_spec_on(
    experiment: ClusterExperiment, spec: ScenarioSpec, seed: int, started: float
) -> ScenarioResult:
    phase_results, outcomes, correlated = experiment.run_phases(
        spec.resolved_phases(), total_peers=spec.peers
    )
    return _finalize_result(
        experiment, spec, seed, started, phase_results, outcomes, correlated
    )


def _finalize_result(
    experiment: ClusterExperiment,
    spec: ScenarioSpec,
    seed: int,
    started: float,
    phase_results: List[PhaseResult],
    outcomes: List,
    correlated: List[str],
    warm_start: bool = False,
) -> ScenarioResult:
    index = experiment.index
    wall = time.perf_counter() - started
    audit = index.reachability()
    elapsed = sorted(outcome.elapsed for outcome in outcomes)
    query_latency: Dict[str, float] = {}
    if elapsed:
        query_latency = {
            "count": float(len(elapsed)),
            "mean": sum(elapsed) / len(elapsed),
            "p50": nearest_rank(elapsed, 0.50),
            "p95": nearest_rank(elapsed, 0.95),
            "p99": nearest_rank(elapsed, 0.99),
        }
    serve_outcomes = [outcome for outcome in outcomes if outcome.correct is not None]
    metrics = {}
    for name in _REPORTED_METRICS:
        summary = index.metrics.summary(name)
        if summary is not None:
            metrics[name] = summary.as_dict()
    latency_histograms = {}
    for name in (INTRA_SITE_LATENCY_METRIC, CROSS_SITE_LATENCY_METRIC):
        histogram = index.metrics.histogram(name, LATENCY_HISTOGRAM_EDGES)
        if histogram:
            latency_histograms[name] = histogram

    return ScenarioResult(
        scenario=spec.name,
        seed=seed,
        wall_clock_s=wall,
        sim_time_s=index.sim.now,
        events_processed=index.sim.events_processed,
        events_per_wall_s=index.sim.events_processed / wall if wall > 0 else 0.0,
        peers_requested=spec.peers,
        ring_members=len(index.ring_members()),
        free_peers=len(index.free_peers()),
        items_requested=spec.total_items(),
        items_stored=index.total_stored_items(),
        rpc_calls=index.network.stats.rpc_calls,
        rpc_timeouts=index.network.stats.rpc_timeouts,
        messages_sent=index.network.stats.messages_sent,
        rpc_per_method=dict(index.network.stats.per_method),
        engine=index.sim.engine_name,
        transport=index.transport.name,
        items_reachable=audit.items_reachable,
        items_stranded=audit.items_stranded,
        queries_run=len(outcomes),
        queries_complete=sum(1 for outcome in outcomes if outcome.complete),
        query_latency=query_latency,
        query_mean_elapsed_s=query_latency.get("mean", 0.0),
        query_mean_hops=(
            sum(outcome.hops for outcome in outcomes) / len(outcomes) if outcomes else 0.0
        ),
        serve_queries=len(serve_outcomes),
        serve_correct=sum(1 for outcome in serve_outcomes if outcome.correct),
        serve_load_variance=index.serve_tracker.read_load_variance(
            [peer.address for peer in index.ring_members()]
        ),
        correlated_failures_injected=len(correlated),
        metrics=metrics,
        per_site_rpcs=dict(index.network.stats.per_site_rpcs),
        latency_histograms=latency_histograms,
        phases=[phase.as_dict() for phase in phase_results],
        warm_start=warm_start,
    )


# --------------------------------------------------------------------------- registry
@dataclass(frozen=True)
class ScenarioSuite:
    """A named group of scenarios run as one batch (e.g. a scaling sweep)."""

    name: str
    scenarios: Tuple[str, ...]
    description: str = ""
    bench_name: Optional[str] = None  # BENCH_<bench_name>.json override


_SCENARIOS: Dict[str, ScenarioSpec] = {}
_SUITES: Dict[str, ScenarioSuite] = {}


def register(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (idempotent only with ``replace_existing``)."""
    if spec.name in _SCENARIOS and not replace_existing:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _SCENARIOS[spec.name] = spec
    return spec


def register_suite(suite: ScenarioSuite, replace_existing: bool = False) -> ScenarioSuite:
    if suite.name in _SUITES and not replace_existing:
        raise ValueError(f"suite {suite.name!r} is already registered")
    for name in suite.scenarios:
        if name not in _SCENARIOS:
            raise ValueError(f"suite {suite.name!r} references unknown scenario {name!r}")
    _SUITES[suite.name] = suite
    return suite


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_SCENARIOS))}"
        ) from None


def get_suite(name: str) -> ScenarioSuite:
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; known: {', '.join(sorted(_SUITES))}") from None


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def suite_names() -> List[str]:
    return sorted(_SUITES)


# --------------------------------------------------------------------------- built-in scenarios
# The paper's Section 6.1 deployment, exactly.
register(
    ScenarioSpec(
        name="paper_default",
        description="the paper's 30-peer LAN deployment (Section 6.1)",
        peers=30,
        workload=WorkloadSpec(items=180),
        queries=QueryMixSpec(count=10),
    )
)

# A seconds-scale cell for CI smoke runs.
register(
    ScenarioSpec(
        name="smoke",
        description="tiny deployment used by CI to smoke-test the registry pipeline",
        peers=8,
        join_period=1.0,
        settle_time=15.0,
        workload=WorkloadSpec(items=50, insert_rate=4.0),
        queries=QueryMixSpec(count=5),
    )
)

# Zipf-skewed inserts: repeated splits concentrate in a few hot slices.
register(
    ScenarioSpec(
        name="zipf_hotspot",
        description="Zipf(1.1) keys hammer one region of the ring (split storm)",
        peers=30,
        workload=WorkloadSpec(items=220, distribution="zipf", params={"alpha": 1.1}),
        queries=QueryMixSpec(count=10, selectivity=0.01),
    )
)

# A flash crowd: most of the cohort arrives in a two-second burst.
register(
    ScenarioSpec(
        name="flash_crowd",
        description="25-peer flash crowd joins an established 6-peer ring",
        peers=6,
        join_period=1.0,
        workload=WorkloadSpec(items=200, insert_rate=4.0),
        churn=ChurnSpec(flash_crowd_peers=25, flash_crowd_at=20.0, flash_crowd_spacing=0.05),
        queries=QueryMixSpec(count=10),
    )
)

# Steady churn at the top of Figure 23's failure-rate axis.
register(
    ScenarioSpec(
        name="churn_heavy",
        description="12 failures per 100 s while items keep arriving (Figure 23 regime)",
        peers=30,
        workload=WorkloadSpec(items=180),
        churn=ChurnSpec(failure_rate_per_100s=12.0, failure_window=100.0),
        queries=QueryMixSpec(count=10),
    )
)

# A correlated rack outage after the ring settles.
register(
    ScenarioSpec(
        name="correlated_failures",
        description="five ring members fail simultaneously after the build phase",
        peers=24,
        workload=WorkloadSpec(items=150),
        churn=ChurnSpec(correlated_failures=5),
        queries=QueryMixSpec(count=10),
    )
)

# ---- scaling sweep ---------------------------------------------------------
# Production-style tuning: joins arrive as a flash crowd (free peers enter the
# ring on demand anyway), items stream in fast, and the periodic protocols run
# at a relaxed cadence so maintenance traffic scales with peer count rather
# than dominating it.  Every cell keeps churn enabled, per the acceptance bar.
#
# The lifecycle is explicitly phased (build -> settle -> stress): the build
# phase plays the join crowd and the item stream with *no* failures, the
# settle phase starts only once the split cascade has been quiescent for a
# full window, and only then does the stress phase open the failure window
# and run the query mix.  Under the old flat shape the failure window raced
# the split cascade, which made end-state membership swing ~±15% across
# seeds (the ROADMAP's "chaotically bimodal" item); gating stress on
# quiescence pins the pre-failure state and shrinks the spread to a few %.
def _scale_spec(name: str, peers: int, description: str) -> ScenarioSpec:
    items = peers * 8  # ~storage factor x 1.6 so splits pull most peers into the ring
    workload = WorkloadSpec(items=items, insert_rate=max(8.0, peers / 8.0))
    return ScenarioSpec(
        name=name,
        description=description,
        peers=peers,
        phases=(
            PhaseSpec(
                name="build",
                description="join crowd + item stream, failure-free",
                arrivals=1,  # one staggered arrival; the crowd below brings the rest
                arrival_period=1.0,
                churn=ChurnSpec(
                    flash_crowd_peers=peers - 2,
                    flash_crowd_at=1.0,
                    flash_crowd_spacing=0.02,
                ),
                workload=workload,
                settle=5.0,
            ),
            PhaseSpec(
                name="settle",
                description="wait out the split cascade (quiescence-gated)",
                start_quiescence=10.0,
                start_timeout=600.0,
                settle=2.0,
            ),
            PhaseSpec(
                name="stress",
                description="steady failure window + query mix",
                churn=ChurnSpec(
                    failure_rate_per_100s=min(12.0, peers / 25.0),
                    failure_window=60.0,
                ),
                queries=QueryMixSpec(count=10, selectivity=0.005),
                settle=10.0,
            ),
        ),
        config={
            "stabilization_period": 8.0,
            "predecessor_check_period": 8.0,
            "replication_refresh_period": 16.0,
            "router_refresh_period": 16.0,
        },
    )


register(_scale_spec("scale_100", 100, "100-peer deployment with churn"))
register(_scale_spec("scale_300", 300, "300-peer deployment with churn"))
register(_scale_spec("scale_1000", 1000, "1000-peer deployment with churn"))
register(_scale_spec("scale_3000", 3000, "3000-peer deployment with churn"))
register(_scale_spec("scale_5000", 5000, "5000-peer deployment with churn"))

# ---- adaptive maintenance --------------------------------------------------
# The same scale cells with the adaptive maintenance policy: server-side
# join-redirect caching, ring_ping validation cadence that backs off while
# validations succeed (plus per-entry freshness: recently confirmed successors
# are not re-pinged), router-refresh cadence that backs off while table walks
# run clean, and RTT-seeded stabilization/replication periods.  The fixed cell
# and its ``_adaptive`` twin differ in exactly one spec field, so ``repro-run
# adaptive_ablation`` is the fixed-vs-adaptive ablation and the per-method RPC
# profiles in the BENCH envelope carry the ``ring_ping``/``route_table_entry``
# deltas.
ADAPTIVE_MAINTENANCE = MaintenanceSpec(policy="adaptive")


def _adaptive_variant(base_name: str) -> ScenarioSpec:
    base = get_scenario(base_name)
    return base.with_(
        name=f"{base_name}_adaptive",
        description=f"{base.description}, adaptive maintenance policy",
        maintenance=ADAPTIVE_MAINTENANCE,
    )


register(_adaptive_variant("scale_100"))
register(_adaptive_variant("scale_300"))
register(_adaptive_variant("scale_1000"))
register(_adaptive_variant("scale_5000"))

# ---- global rebalancer ------------------------------------------------------
# The saturation cell with the global rebalancer: at 5000 peers the average
# store sits just under the overflow threshold, so ~800 peers finish FREE
# (dead capacity -- nothing ever overflows hard enough to recruit them).  The
# rebalancer bulk-moves range slices from the most loaded members onto free
# peers (move-then-delete via ds_bulk_get/ds_bulk_put); the BENCH envelope's
# ``free_peers`` aggregate is the observable.  Any IndexConfig flag can be set
# the same way on other cells via the spec's ``config`` mapping.
_scale_5000_adaptive = get_scenario("scale_5000_adaptive")
register(
    _scale_5000_adaptive.with_(
        name="scale_5000_rebalance",
        description="5000-peer adaptive cell with the global rebalancer harvesting FREE peers",
        config={
            **dict(_scale_5000_adaptive.config),
            "rebalance_enabled": True,
            "rebalance_batch": 64,
        },
    )
)

# ---- timer-wheel engine cells ----------------------------------------------
# The same deployments on the wheel engine.  End-state metrics are identical
# to the heap cells by the engine determinism contract (the parity CI job and
# ``tests/test_engine_parity.py`` enforce it); only the wall-clock and
# events-per-second columns may differ, which is exactly what the BENCH
# envelope is meant to show.
def _wheel_variant(base_name: str) -> ScenarioSpec:
    base = get_scenario(base_name)
    return base.with_(
        name=f"{base_name}_wheel",
        description=f"{base.description}, timer-wheel engine",
        engine="wheel",
    )


register(_wheel_variant("scale_300"))
register(_wheel_variant("scale_1000"))

register_suite(
    ScenarioSuite(
        name="scale_sweep",
        scenarios=(
            "scale_100",
            "scale_100_adaptive",
            "scale_300",
            "scale_300_adaptive",
            "scale_1000",
            "scale_1000_adaptive",
            "scale_1000_wheel",
        ),
        description="wall-clock and event-throughput across 100..1000 peers, fixed+adaptive, plus the wheel engine at 1000",
        bench_name="scale",
    )
)
register_suite(
    ScenarioSuite(
        name="scale_sweep_deep",
        scenarios=(
            "scale_3000",
            "scale_5000",
            "scale_5000_adaptive",
            "scale_5000_rebalance",
        ),
        description="the 3000/5000-peer cells (hours-scale; the weekly deep bench), including the rebalancer/reachability cell",
        bench_name="scale_deep",
    )
)
register_suite(
    ScenarioSuite(
        name="adaptive_ablation",
        scenarios=("scale_1000", "scale_1000_adaptive"),
        description="fixed vs. adaptive maintenance at 1000 peers (ring_ping profile delta)",
        bench_name="adaptive",
    )
)

# ---- WAN conditions --------------------------------------------------------
# The same scale cells under the two-tier LAN/WAN latency model: peers hash
# into 4 sites, cross-site messages pay a 20-80 ms round trip instead of the
# paper's sub-3 ms LAN.  Hop-count and maintenance-cost claims only matter if
# they survive this regime (cf. Chord's WAN evaluation); the cells also feed
# the per-site RPC counts and intra/cross-site latency histograms.
WAN_LATENCY = LatencySpec(model="lan_wan", params={"sites": 4})


def _wan_variant(base_name: str) -> ScenarioSpec:
    base = get_scenario(base_name)
    return base.with_(
        name=f"{base_name}_wan",
        description=f"{base.description}, 4-site LAN/WAN latency",
        latency=WAN_LATENCY,
    )


register(_wan_variant("scale_100"))
register(_wan_variant("scale_300"))
register(_wan_variant("scale_1000"))
register_suite(
    ScenarioSuite(
        name="scale_sweep_wan",
        scenarios=("scale_100_wan", "scale_300_wan", "scale_1000_wan"),
        description="the scaling sweep under 4-site LAN/WAN cross-site latency",
        bench_name="scale_wan",
    )
)

# The 1000-peer WAN cell under the adaptive policy: stabilization and
# replication run on round-trip-scaled periods instead of the LAN constants
# (plus adaptive validation and redirect caching), which is the remedy for WAN
# cells finishing with fewer members/items in the same simulated window.
register(
    get_scenario("scale_1000_wan").with_(
        name="scale_1000_wan_adaptive",
        description="1000-peer WAN deployment, adaptive maintenance policy",
        maintenance=ADAPTIVE_MAINTENANCE,
    )
)
register_suite(
    ScenarioSuite(
        name="adaptive_ablation_wan",
        scenarios=("scale_1000_wan", "scale_1000_wan_adaptive"),
        description="fixed vs. adaptive maintenance under 4-site WAN latency",
        bench_name="adaptive_wan",
    )
)

# ---- localhost transport cells ----------------------------------------------
# Real-network deployments: the same protocol code over asyncio UDP sockets on
# 127.0.0.1, one wall-clock second per scenario second.  Each asyncio cell has
# an in-sim twin differing in exactly the transport field, so the pair is the
# sim-fidelity referee: run both, compare end states.
#
# The cells are *saturating* by design -- the item count (12 per peer) exceeds
# the deployment's overflow capacity (10 per peer), so the split cascade must
# recruit every free peer before the pressure can stop.  The converged end
# state is therefore exact on both substrates regardless of message-timing
# jitter: all peers in the ring, zero free.  Both phases use fixed settles
# (never a quiescence gate), so the two transports run the same total
# duration and the periodic-loop RPC volumes stay directly comparable (the
# documented fidelity band is ±15% per method; see docs/SCENARIOS.md).
def _localhost_spec(
    name: str,
    peers: int,
    transport_name: str,
    insert_rate: float,
    grow_settle: float,
    description: str,
) -> ScenarioSpec:
    items = peers * 12  # > overflow capacity (2 x storage factor = 10 per peer)
    return ScenarioSpec(
        name=name,
        description=description,
        peers=peers,
        transport=TransportSpec(name=transport_name),
        phases=(
            PhaseSpec(
                name="build",
                description="join crowd + saturating item stream, failure-free",
                arrivals=1,  # one staggered arrival; the crowd below brings the rest
                arrival_period=1.0,
                churn=ChurnSpec(
                    flash_crowd_peers=peers - 2,
                    flash_crowd_at=1.0,
                    flash_crowd_spacing=0.05,
                ),
                workload=WorkloadSpec(items=items, insert_rate=insert_rate),
                settle=5.0,
            ),
            PhaseSpec(
                name="grow",
                description="fixed settle window for the split cascade (no quiescence gate)",
                settle=grow_settle,
            ),
        ),
    )


register(
    _localhost_spec(
        "localhost_20",
        20,
        "asyncio",
        24.0,
        30.0,
        "20-peer cell over real asyncio UDP sockets (CI transport smoke, ~50 wall s)",
    )
)
register(
    _localhost_spec(
        "localhost_20_sim",
        20,
        "sim",
        24.0,
        30.0,
        "in-sim twin of localhost_20 (transport-fidelity reference)",
    )
)
register(
    _localhost_spec(
        "localhost_100",
        100,
        "asyncio",
        40.0,
        45.0,
        "100-peer cell over real asyncio UDP sockets on localhost (~80 wall s)",
    )
)
register(
    _localhost_spec(
        "localhost_100_sim",
        100,
        "sim",
        40.0,
        45.0,
        "in-sim twin of localhost_100 (transport-fidelity reference)",
    )
)
register_suite(
    ScenarioSuite(
        name="localhost_fidelity",
        scenarios=("localhost_100_sim", "localhost_100"),
        description="the 100-peer sim/asyncio twin pair: the sim-fidelity referee (real wall-clock run)",
        bench_name="localhost",
    )
)

# ---- serve cells ------------------------------------------------------------
# Open-loop zipf serving on a settled deployment: the build and quiescence
# phases of the scale cells, then a serve phase with Poisson arrivals over 8
# zipf-ranked hotspot windows and *no* churn (so every query has one correct
# answer and routing policies are comparable at equal correctness).  Each size
# is a trio differing only in the routing policy -- ``replica_lb`` (the
# default cell) vs ``primary`` vs ``cached`` -- which makes the suite the
# read-routing ablation: same arrivals, same hotspots, same deployment,
# different read paths.  The observables are the ``query_latency`` block
# (open-loop p50/p99) and ``serve_load_variance`` (per-peer read-load
# spread; replica_lb's whole point is shrinking it on hot windows).
def _serve_spec(name: str, peers: int, routing: str, description: str) -> ScenarioSpec:
    base = _scale_spec(name, peers, description)
    build, settle, _stress = base.phases
    return base.with_(
        phases=(
            build,
            settle,
            PhaseSpec(
                name="serve",
                description=f"open-loop zipf serve window, routing={routing}",
                serve=ServeSpec(
                    arrival_rate=20.0,
                    duration=10.0,
                    routing=routing,
                    consistency="strong",
                    # Narrow windows: each hotspot lands on one-or-two owners,
                    # the regime where primary routing melts a single peer
                    # while its replicas idle (wide windows already spread
                    # over many owners and dilute the ablation).  Scaled with
                    # the deployment so the owner count per window stays put
                    # as per-peer range shares shrink.
                    selectivity=1.5 / peers,
                ),
                settle=2.0,
            ),
        )
    )


def _serve_trio(peers: int) -> None:
    for routing, suffix in (("replica_lb", ""), ("primary", "_primary"), ("cached", "_cached")):
        register(
            _serve_spec(
                f"serve_{peers}_zipf{suffix}",
                peers,
                routing,
                f"{peers}-peer settled ring serving open-loop zipf reads ({routing} routing)",
            )
        )


_serve_trio(300)
_serve_trio(1000)

register_suite(
    ScenarioSuite(
        name="serve_sweep",
        scenarios=(
            "serve_1000_zipf",
            "serve_1000_zipf_primary",
            "serve_1000_zipf_cached",
        ),
        description="the 1000-peer read-routing ablation: replica_lb vs primary vs cached at equal correctness",
        bench_name="serve",
    )
)
