"""Plain-text reporting of experiment results.

The benchmarks print the same rows the paper plots, so the reproduction can be
compared against the published figures at a glance; EXPERIMENTS.md embeds the
resulting tables.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(title: str, rows: Mapping, unit: str = "s") -> str:
    """Render an ``x -> value`` mapping as a small table with a title."""
    table = format_table(["x", f"value ({unit})"], sorted(rows.items()))
    return f"{title}\n{table}"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100 or abs(cell) < 0.0001:
            return f"{cell:.3g}"
        return f"{cell:.4f}"
    return str(cell)
