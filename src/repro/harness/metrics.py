"""Lightweight metric collection used by every component and the benchmarks."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of a sorted, non-empty sample.

    The single nearest-rank convention shared by metric summaries and the
    runner's cross-seed BENCH aggregates, so the two never disagree.
    """
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class MetricSummary:
    """Summary statistics of one named series."""

    name: str
    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
        }


class Metrics:
    """Named series of numeric observations (durations, counts, sizes)."""

    def __init__(self) -> None:
        self._series: Dict[str, List[float]] = {}

    def record(self, name: str, value: float) -> None:
        """Append one observation to the named series."""
        self._series.setdefault(name, []).append(float(value))

    def values(self, name: str) -> List[float]:
        """All observations of the named series (empty list if none)."""
        return list(self._series.get(name, ()))

    def count(self, name: str) -> int:
        """Number of observations in the named series."""
        return len(self._series.get(name, ()))

    def mean(self, name: str) -> Optional[float]:
        """Mean of the named series, or ``None`` if empty."""
        values = self._series.get(name)
        if not values:
            return None
        return sum(values) / len(values)

    def percentile(self, name: str, fraction: float) -> Optional[float]:
        """The ``fraction`` percentile (0..1) of the named series."""
        values = sorted(self._series.get(name, ()))
        if not values:
            return None
        return nearest_rank(values, fraction)

    def summary(self, name: str) -> Optional[MetricSummary]:
        """Summary statistics for the named series, or ``None`` if empty."""
        values = sorted(self._series.get(name, ()))
        if not values:
            return None
        return MetricSummary(
            name=name,
            count=len(values),
            mean=sum(values) / len(values),
            minimum=values[0],
            maximum=values[-1],
            p50=values[len(values) // 2],
            p95=nearest_rank(values, 0.95),
        )

    def histogram(self, name: str, bounds: Sequence[float]) -> Dict[str, int]:
        """Bucketed counts of the named series (empty dict if no observations).

        ``bounds`` are inclusive upper bucket edges; one overflow bucket
        catches everything beyond the last edge.  Bucket labels are ordered
        ``<=edge`` strings plus a final ``>edge``, so the dict renders as a
        readable histogram in BENCH JSON.
        """
        values = self._series.get(name)
        if not values:
            return {}
        edges = sorted(bounds)
        counts = [0] * (len(edges) + 1)
        for value in values:
            counts[bisect_left(edges, value)] += 1
        labels = [f"<={edge:g}" for edge in edges] + [f">{edges[-1]:g}"]
        return dict(zip(labels, counts))

    def names(self) -> List[str]:
        """All series names with at least one observation."""
        return sorted(self._series)

    def merge(self, other: "Metrics") -> None:
        """Fold another collector's observations into this one."""
        for name, values in other._series.items():
            self._series.setdefault(name, []).extend(values)
