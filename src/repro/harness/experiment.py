"""Deployment driver: builds and drives one simulated cluster.

The *shape* of a deployment (size, churn, workload, query mix, protocol
selection) is described declaratively by a
:class:`~repro.harness.scenarios.ScenarioSpec` and resolved into the plain
parameters below; :class:`ClusterExperiment` only knows how to execute them.
The paper's Section 6.1 deployment (30 peers arriving one every 3 seconds,
items inserted at 2 per second, storage factor 5, replication factor 6) is the
default, but any registry scenario -- churn-heavy, Zipf-skewed, 1000 peers --
runs through the exact same driver.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.correctness import QueryRecord
from repro.harness.phases import PhaseResult, PhaseSpec, ServeSpec, WorkloadSpec
from repro.index.config import IndexConfig
from repro.index.pring import PRingIndex
from repro.serve.workload import OpenLoopQuery, open_loop_queries
from repro.workloads.churn import (
    FAIL,
    JOIN,
    ChurnEvent,
    ChurnSchedule,
    failure_schedule,
    flash_crowd_schedule,
    join_schedule,
)
from repro.workloads.items import ItemWorkload, generate_keys
from repro.workloads.queries import QueryWorkload


@dataclass
class ExperimentSettings:
    """Deployment parameters shared by the paper's experiments (Section 6.1).

    ``key_distribution``/``key_params`` select one of the named generators in
    :mod:`repro.workloads.items` (uniform, skewed, zipf), so skewed scenarios
    are a settings change rather than a different driver.
    """

    peers: int = 30
    items: int = 180
    peer_join_period: float = 3.0
    item_insert_rate: float = 2.0
    settle_time: float = 30.0
    failure_rate_per_100s: float = 0.0
    failure_window: float = 100.0
    seed: int = 0
    key_distribution: str = "uniform"
    key_params: Mapping = field(default_factory=dict)

    def scaled(self, factor: float) -> "ExperimentSettings":
        """A proportionally smaller/larger deployment (used to keep benches fast)."""
        return replace(
            self,
            peers=max(3, int(self.peers * factor)),
            items=max(20, int(self.items * factor)),
        )


@dataclass
class QueryOutcome:
    """One executed range query plus the information needed to check/plot it."""

    lb: float
    ub: float
    hops: int
    elapsed: float
    scan_elapsed: float
    complete: bool
    keys: List[float] = field(default_factory=list)
    record: Optional[QueryRecord] = None
    strategy: str = "scan"
    # Serve-phase queries only: whether the result set matched the reachable
    # keys snapshotted at serve start (None for closed-loop queries).
    correct: Optional[bool] = None


class ClusterExperiment:
    """Builds and drives one simulated deployment.

    ``extra_churn`` (e.g. a flash-crowd join burst or a correlated-failure
    schedule from :mod:`repro.workloads.churn`) is merged into the arrival
    schedule during :meth:`build`, so scenario specs can reshape the bootstrap
    phase without subclassing the driver.
    """

    def __init__(
        self,
        config: IndexConfig,
        settings: Optional[ExperimentSettings] = None,
        extra_churn: Optional[ChurnSchedule] = None,
    ):
        self.config = config
        self.settings = settings or ExperimentSettings(seed=config.seed)
        self.extra_churn = extra_churn
        self.index = PRingIndex(config)
        self.inserted_keys: List[float] = []
        self.deleted_keys: List[float] = []

    # ------------------------------------------------------------------ building
    def build(self, extra_settle: Optional[float] = None) -> PRingIndex:
        """Bootstrap the deployment: staggered peer arrivals and item inserts.

        A thin wrapper over :meth:`run_phases`: the flat settings become one
        ``build`` phase (same arrival/workload schedules, same derived
        duration), so the legacy entry point and the phased lifecycle share a
        single driver implementation.  ``extra_churn`` rides along as the
        phase's arbitrary :class:`ChurnSchedule`.
        """
        settings = self.settings
        self.index.bootstrap()
        phase = PhaseSpec(
            name="build",
            arrivals=settings.peers - 1,
            arrival_period=settings.peer_join_period,
            schedule=self.extra_churn,
            workload=WorkloadSpec(
                items=settings.items,
                insert_rate=settings.item_insert_rate,
                distribution=settings.key_distribution,
                params=dict(settings.key_params),
            ),
            settle=settings.settle_time if extra_settle is None else extra_settle,
        )
        self.run_phases((phase,), total_peers=settings.peers)
        return self.index

    # ------------------------------------------------------------------ phased lifecycle
    def run_phases(
        self,
        phases: Sequence[PhaseSpec],
        total_peers: Optional[int] = None,
    ) -> Tuple[List[PhaseResult], List["QueryOutcome"], List[str]]:
        """Execute a declarative phase sequence (see :mod:`repro.harness.phases`).

        Phases run strictly one after another; each phase first waits for its
        start condition (offset, then membership fraction, then quiescence --
        all bounded by ``start_timeout``), then plays its bound schedules and
        settles.  Returns the per-phase measurements, the query outcomes of
        every query-bearing phase (in execution order) and the addresses of
        all correlated-failure victims.
        """
        total = self.settings.peers if total_peers is None else total_peers
        if not self.index.bootstrapped:
            self.index.bootstrap()
        results: List[PhaseResult] = []
        outcomes: List[QueryOutcome] = []
        victims: List[str] = []
        for phase in phases:
            record, phase_outcomes, phase_victims = self._execute_phase(phase, total)
            results.append(record)
            outcomes.extend(phase_outcomes)
            victims.extend(phase_victims)
        return results, outcomes, victims

    def _execute_phase(
        self, phase: PhaseSpec, total_peers: int
    ) -> Tuple[PhaseResult, List["QueryOutcome"], List[str]]:
        """Wait for the phase's start condition, then play its bound activity."""
        index = self.index
        sim = index.sim
        wall_started = time.perf_counter()
        events_before = sim.events_processed
        rpc_before = index.network.stats.rpc_calls
        per_method_before = dict(index.network.stats.per_method)
        phase_started = sim.now

        timed_out = self._wait_for_start(phase, total_peers)
        activity_started = sim.now
        members_at_start = len(index.ring_members())

        # A correlated shot fires at the instant the phase starts (rack outage).
        victims: List[str] = []
        if phase.churn.correlated_failures > 0:
            victims = self.fail_correlated(phase.churn.correlated_failures)

        joins: Optional[ChurnSchedule] = None
        if phase.arrivals > 0:
            joins = join_schedule(
                phase.arrivals, period=phase.arrival_period, start=sim.now + phase.arrival_start
            )
        if phase.churn.flash_crowd_peers > 0:
            crowd = flash_crowd_schedule(
                phase.churn.flash_crowd_peers,
                at=sim.now + phase.churn.flash_crowd_at,
                spacing=phase.churn.flash_crowd_spacing,
            )
            joins = crowd if joins is None else joins.merged_with(crowd)
        if phase.schedule is not None and len(phase.schedule) > 0:
            # Arbitrary pre-built churn: event times are phase-relative.
            shifted = ChurnSchedule(
                [ChurnEvent(sim.now + event.time, event.kind) for event in phase.schedule]
            )
            joins = shifted if joins is None else joins.merged_with(shifted)

        workload: Optional[ItemWorkload] = None
        if phase.workload is not None:
            spec = phase.workload
            keys = generate_keys(
                spec.distribution,
                spec.items,
                self.config.key_space,
                index.rngs.stream("workload"),
                **dict(spec.params),
            )
            self.inserted_keys.extend(keys)
            workload = ItemWorkload(
                keys, insert_rate=spec.insert_rate, start_time=sim.now + phase.workload_start
            )

        if joins is not None and len(joins) > 0:
            sim.process(self._membership_driver(joins), name=f"driver:{phase.name}-joins")
        if workload is not None:
            sim.process(self._item_driver(workload), name=f"driver:{phase.name}-items")
        if phase.churn.failure_rate_per_100s > 0:
            schedule = failure_schedule(
                phase.churn.failure_rate_per_100s,
                phase.churn.failure_window,
                index.rngs.stream("failures"),
                start=sim.now,
            )
            sim.process(self._membership_driver(schedule), name=f"driver:{phase.name}-failures")

        active = phase.duration
        if active is None:
            # Derived active time: long enough to play every bound schedule
            # (the same formula the legacy build phase used).
            candidates = [0.0]
            if joins is not None and len(joins) > 0:
                candidates.append(joins.duration - sim.now)
            if workload is not None:
                candidates.append(workload.duration + phase.workload_start)
            if phase.churn.failure_rate_per_100s > 0:
                candidates.append(phase.churn.failure_window)
            active = max(candidates)
        if active > 0:
            index.run(active)

        outcomes: List[QueryOutcome] = []
        if phase.queries is not None and phase.queries.count > 0:
            mix = phase.queries
            query_workload = QueryWorkload(
                count=mix.count,
                selectivity=mix.selectivity,
                key_space=self.config.key_space,
                rng=index.rngs.stream("query-mix"),
            )
            for lb, ub in query_workload.queries():
                outcomes.append(self.run_query(lb, ub))
                if mix.spacing > 0:
                    self.settle(mix.spacing)

        if phase.serve is not None:
            outcomes.extend(self._run_serve(phase))

        if phase.settle > 0:
            index.run(phase.settle)

        per_method_after = index.network.stats.per_method
        rpc_per_method = {
            method: count - per_method_before.get(method, 0)
            for method, count in per_method_after.items()
            if count - per_method_before.get(method, 0) > 0
        }
        record = PhaseResult(
            phase=phase.name,
            start_condition=phase.start_condition,
            started_at_s=phase_started,
            activity_at_s=activity_started,
            wait_s=activity_started - phase_started,
            start_timed_out=timed_out,
            sim_seconds=sim.now - phase_started,
            wall_clock_s=time.perf_counter() - wall_started,
            events_processed=sim.events_processed - events_before,
            rpc_calls=index.network.stats.rpc_calls - rpc_before,
            rpc_per_method=rpc_per_method,
            ring_members_start=members_at_start,
            ring_members=len(index.ring_members()),
            free_peers=len(index.free_peers()),
            items_stored=index.total_stored_items(),
            queries_run=len(outcomes),
            queries_complete=sum(1 for outcome in outcomes if outcome.complete),
            correlated_failures_injected=len(victims),
        )
        return record, outcomes, victims

    def _wait_for_start(self, phase: PhaseSpec, total_peers: int) -> bool:
        """Block (in simulated time) until the phase's start condition holds.

        Conditions compose: the offset elapses first, then membership
        fraction, then quiescence.  Returns whether any bounded condition gave
        up waiting (``start_timeout``) -- the phase still runs, so a wedged
        deployment degrades to the legacy wall-clock behaviour instead of
        hanging.
        """
        index = self.index
        sim = index.sim
        if phase.start_offset > 0:
            index.run(phase.start_offset)
        # One shared budget for the bounded conditions: time spent waiting for
        # the membership fraction is deducted from the quiescence wait.
        deadline = sim.now + phase.start_timeout
        timed_out = False
        if phase.start_fraction is not None:
            target = max(1, math.ceil(phase.start_fraction * total_peers))
            while len(index.ring_members()) < target:
                if sim.now >= deadline:
                    timed_out = True
                    break
                index.run(min(phase.start_poll, deadline - sim.now))
        if phase.start_quiescence is not None:
            remaining = deadline - sim.now
            if remaining <= 0:
                timed_out = True
            else:
                quiesced = self._wait_for_quiescence(
                    phase.start_quiescence, phase.start_poll, remaining
                )
                timed_out = timed_out or not quiesced
        return timed_out

    def _wait_for_quiescence(self, hold: float, poll: float, timeout: float) -> bool:
        """Wait until no joins/splits were in flight for ``hold`` seconds.

        Three signals make a poll non-quiescent: a peer mid-way into the ring
        (JOINING/INSERTING), a membership transition since the previous poll,
        or :meth:`~repro.index.pring.PRingIndex.split_pressure` (an overflowed
        store with a free peer available -- the cascade is between protocol
        rounds, not finished).  The quiet window is measured from the start of
        the wait at the earliest; any non-quiescent poll restarts it.  Returns
        ``True`` once the deployment has been quiescent for a full window,
        ``False`` on timeout.
        """
        index = self.index
        sim = index.sim
        membership = index.membership

        def quiescent_now() -> bool:
            return membership.in_flight_count() == 0 and not index.split_pressure()

        deadline = sim.now + timeout
        stamp = membership.transition_count
        quiet_since = sim.now if quiescent_now() else None
        while True:
            if quiet_since is not None and sim.now - quiet_since >= hold:
                return True
            if sim.now >= deadline:
                return False
            index.run(min(poll, deadline - sim.now))
            current = membership.transition_count
            if not quiescent_now():
                quiet_since = None
            elif current != stamp or quiet_since is None:
                quiet_since = sim.now
            stamp = current

    # ------------------------------------------------------------------ churn extras
    def fail_correlated(self, count: int) -> List[str]:
        """Kill ``count`` random ring members at the current instant (rack outage)."""
        rng = self.index.rngs.stream("correlated-failures")
        # One snapshot for the whole burst: every victim is drawn from the
        # membership as it was when the outage started, so a peer that already
        # failed earlier in the burst can never be selected again.
        pool = self.index.ring_members()
        victims: List[str] = []
        for _ in range(count):
            victim = self._draw_victim(pool, rng, floor=3)
            if victim is None:
                break
            victims.append(victim.address)
            self.index.fail_peer(victim.address)
        return victims

    @staticmethod
    def _draw_victim(pool: List, rng, floor: int):
        """Pick and remove one failure victim from a burst's snapshot pool.

        All of a burst's victims come from one membership snapshot with chosen
        peers removed (never re-picking a peer that already failed), and the
        pool is never drained below ``floor`` members.
        """
        if len(pool) <= floor:
            return None
        return pool.pop(rng.randrange(len(pool)))

    def _membership_driver(self, schedule: ChurnSchedule):
        rng = self.index.rngs.stream("churn")
        burst_time = None
        burst_pool: List = []
        for event in schedule:
            delay = event.time - self.index.sim.now
            if delay > 0:
                yield self.index.sim.timeout(delay)
            if event.kind == JOIN:
                self.index.add_peer()
            elif event.kind == FAIL:
                # FAIL events landing at one instant form a burst; victims come
                # from the snapshot taken at the burst's start (_draw_victim).
                if burst_time != self.index.sim.now:
                    burst_time = self.index.sim.now
                    burst_pool = self.index.ring_members()
                victim = self._draw_victim(burst_pool, rng, floor=2)
                if victim is not None:
                    self.index.fail_peer(victim.address)

    def _item_driver(self, workload: ItemWorkload):
        for time, key, payload in workload.insert_events():
            delay = time - self.index.sim.now
            if delay > 0:
                yield self.index.sim.timeout(delay)
            # Fire and forget so the insert rate stays steady regardless of
            # routing latency (the facade records the outcome in the history).
            self.index.sim.process(self.index.insert_item(key, payload))

    # ------------------------------------------------------------------ serve (open loop)
    def _run_serve(self, phase: PhaseSpec) -> List["QueryOutcome"]:
        """Play the phase's open-loop serve traffic and collect its outcomes.

        The whole arrival schedule is drawn up front from the ``serve`` rng
        stream (arrivals are independent of service times by definition of
        open loop), the reachable key set of every hotspot window is
        snapshotted at serve start as the correctness reference, and the
        phase then runs for the arrival window plus the drain grace.  Queries
        still in flight when the drain ends are simply not recorded -- an
        open-loop driver never waits for stragglers.
        """
        spec = phase.serve
        index = self.index
        schedule = open_loop_queries(
            spec.arrival_rate,
            spec.duration,
            self.config.key_space,
            index.rngs.stream("serve"),
            hotspots=spec.hotspots,
            alpha=spec.alpha,
            selectivity=spec.selectivity,
        )
        expected: Dict[Tuple[float, float], frozenset] = {}
        for query in schedule:
            window = (query.lb, query.ub)
            if window not in expected:
                expected[window] = frozenset(self._reachable_keys(*window))
        outcomes: List[QueryOutcome] = []
        index.sim.process(
            self._serve_arrivals(spec, schedule, expected, outcomes),
            name=f"driver:{phase.name}-serve",
        )
        index.run(spec.duration + spec.drain)
        return outcomes

    def _reachable_keys(self, lb: float, ub: float) -> set:
        """Keys in ``(lb, ub]`` a full primary scan would return right now."""
        keys = set()
        for peer in self.index.ring_members():
            for item in peer.store.local_items_in(lb, ub):
                if peer.store.owns_key(item.skv):
                    keys.add(item.skv)
        return keys

    def _serve_arrivals(self, spec: ServeSpec, schedule, expected, outcomes):
        sim = self.index.sim
        start = sim.now
        for query in schedule:
            delay = start + query.at - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            # Fire and forget: the next arrival never waits for this query.
            sim.process(self._serve_one(spec, query, expected, outcomes))

    def _serve_one(self, spec: ServeSpec, query: OpenLoopQuery, expected, outcomes):
        client = self.index.query_client(
            routing=spec.routing, consistency=spec.consistency
        )
        result = yield from client.query(query.lb, query.ub, timeout=spec.timeout)
        keys = result["keys"]
        outcomes.append(
            QueryOutcome(
                lb=query.lb,
                ub=query.ub,
                hops=result["hops"],
                elapsed=result["end_time"] - result["start_time"],
                scan_elapsed=result["scan_elapsed"],
                complete=result["complete"],
                keys=keys,
                strategy=result["strategy"],
                correct=set(keys) == expected[(query.lb, query.ub)],
            )
        )

    # ------------------------------------------------------------------ phases
    def settle(self, duration: float) -> None:
        """Let the system run with no external activity."""
        self.index.run(duration)

    def inject_failures(self, rate_per_100s: float, duration: float) -> int:
        """Run a failure phase: kill random ring members at the given rate."""
        rng = self.index.rngs.stream("failures")
        schedule = failure_schedule(rate_per_100s, duration, rng, start=self.index.sim.now)
        self.index.sim.process(self._membership_driver(schedule), name="driver:failures")
        self.index.run(duration)
        return len(schedule)

    def grow(self, peers: int, period: Optional[float] = None) -> None:
        """Add more peers at the configured arrival rate and wait for them."""
        period = period or self.settings.peer_join_period
        schedule = join_schedule(peers, period=period, start=self.index.sim.now + 0.1)
        self.index.sim.process(self._membership_driver(schedule), name="driver:grow")
        self.index.run(peers * period + self.settings.settle_time)

    def insert_items(self, keys: List[float], rate: Optional[float] = None) -> None:
        """Insert additional items at the given rate and wait for them."""
        rate = rate or self.settings.item_insert_rate
        workload = ItemWorkload(keys, insert_rate=rate, start_time=self.index.sim.now + 0.1)
        self.inserted_keys.extend(keys)
        self.index.sim.process(self._item_driver(workload), name="driver:more-items")
        self.index.run(workload.duration + 5.0)

    def delete_items(self, keys: List[float], rate: float = 2.0) -> None:
        """Delete items at the given rate (forces underflows, merges, leaves)."""
        for key in keys:
            self.index.run_process(self.index.delete_item(key))
            self.deleted_keys.append(key)
            if rate > 0:
                self.index.run(1.0 / rate)

    # ------------------------------------------------------------------ queries
    def run_query(
        self,
        lb: float,
        ub: float,
        via: Optional[str] = None,
        routing: str = "primary",
        consistency: str = "strong",
    ) -> QueryOutcome:
        """Execute one range query and wrap its outcome."""
        result = self.index.range_query_now(
            lb, ub, via=via, routing=routing, consistency=consistency
        )
        record = self.index.query_records[-1] if self.index.query_records else None
        return QueryOutcome(
            lb=lb,
            ub=ub,
            hops=result["hops"],
            elapsed=result["end_time"] - result["start_time"],
            scan_elapsed=result["scan_elapsed"],
            complete=result["complete"],
            keys=result["keys"],
            record=record,
            strategy=result["strategy"],
        )

    def run_queries_by_hops(
        self, hop_targets: List[int], queries_per_target: int = 5
    ) -> Dict[int, List[QueryOutcome]]:
        """Issue queries sized to span the requested hop counts (Figure 21)."""
        rng = self.index.rngs.stream("queries")
        outcomes: Dict[int, List[QueryOutcome]] = {}
        for target in hop_targets:
            for _ in range(queries_per_target):
                members = self.index.ring_members()  # already in ring-value order
                if len(members) < 2:
                    continue
                values = [peer.ring.value for peer in members]
                start_index = rng.randrange(len(values))
                end_index = start_index + min(target, len(values) - 1)
                lb = values[start_index]
                if end_index >= len(values):
                    continue
                ub = values[end_index]
                if ub <= lb:
                    continue
                via = members[rng.randrange(len(members))].address
                outcome = self.run_query(lb, ub, via=via)
                outcomes.setdefault(outcome.hops, []).append(outcome)
                self.index.run(0.5)
        return outcomes

    # ------------------------------------------------------------------ metric helpers
    def mean_metric(self, name: str) -> Optional[float]:
        """Mean of a named metric collected so far."""
        return self.index.metrics.mean(name)

    def metric_values(self, name: str) -> List[float]:
        return self.index.metrics.values(name)

    def expected_keys(self, lb: float, ub: float) -> List[float]:
        """Keys inserted (and not deleted) that fall in ``(lb, ub]``."""
        alive = set(self.inserted_keys) - set(self.deleted_keys)
        return sorted(k for k in alive if lb < k <= ub)
