"""Deployment driver: builds and drives one simulated cluster.

The *shape* of a deployment (size, churn, workload, query mix, protocol
selection) is described declaratively by a
:class:`~repro.harness.scenarios.ScenarioSpec` and resolved into the plain
parameters below; :class:`ClusterExperiment` only knows how to execute them.
The paper's Section 6.1 deployment (30 peers arriving one every 3 seconds,
items inserted at 2 per second, storage factor 5, replication factor 6) is the
default, but any registry scenario -- churn-heavy, Zipf-skewed, 1000 peers --
runs through the exact same driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.correctness import QueryRecord
from repro.index.config import IndexConfig
from repro.index.pring import PRingIndex
from repro.workloads.churn import FAIL, JOIN, ChurnSchedule, failure_schedule, join_schedule
from repro.workloads.items import ItemWorkload, generate_keys


@dataclass
class ExperimentSettings:
    """Deployment parameters shared by the paper's experiments (Section 6.1).

    ``key_distribution``/``key_params`` select one of the named generators in
    :mod:`repro.workloads.items` (uniform, skewed, zipf), so skewed scenarios
    are a settings change rather than a different driver.
    """

    peers: int = 30
    items: int = 180
    peer_join_period: float = 3.0
    item_insert_rate: float = 2.0
    settle_time: float = 30.0
    failure_rate_per_100s: float = 0.0
    failure_window: float = 100.0
    seed: int = 0
    key_distribution: str = "uniform"
    key_params: Mapping = field(default_factory=dict)

    def scaled(self, factor: float) -> "ExperimentSettings":
        """A proportionally smaller/larger deployment (used to keep benches fast)."""
        return replace(
            self,
            peers=max(3, int(self.peers * factor)),
            items=max(20, int(self.items * factor)),
        )


@dataclass
class QueryOutcome:
    """One executed range query plus the information needed to check/plot it."""

    lb: float
    ub: float
    hops: int
    elapsed: float
    scan_elapsed: float
    complete: bool
    keys: List[float] = field(default_factory=list)
    record: Optional[QueryRecord] = None
    strategy: str = "scan"


class ClusterExperiment:
    """Builds and drives one simulated deployment.

    ``extra_churn`` (e.g. a flash-crowd join burst or a correlated-failure
    schedule from :mod:`repro.workloads.churn`) is merged into the arrival
    schedule during :meth:`build`, so scenario specs can reshape the bootstrap
    phase without subclassing the driver.
    """

    def __init__(
        self,
        config: IndexConfig,
        settings: Optional[ExperimentSettings] = None,
        extra_churn: Optional[ChurnSchedule] = None,
    ):
        self.config = config
        self.settings = settings or ExperimentSettings(seed=config.seed)
        self.extra_churn = extra_churn
        self.index = PRingIndex(config)
        self.inserted_keys: List[float] = []
        self.deleted_keys: List[float] = []

    # ------------------------------------------------------------------ building
    def build(self, extra_settle: Optional[float] = None) -> PRingIndex:
        """Bootstrap the deployment: staggered peer arrivals and item inserts."""
        settings = self.settings
        index = self.index
        index.bootstrap()

        rng = index.rngs.stream("workload")
        keys = generate_keys(
            settings.key_distribution,
            settings.items,
            self.config.key_space,
            rng,
            **dict(settings.key_params),
        )
        self.inserted_keys = keys
        workload = ItemWorkload(keys, insert_rate=settings.item_insert_rate, start_time=1.0)
        joins = join_schedule(settings.peers - 1, period=settings.peer_join_period, start=0.5)
        if self.extra_churn is not None:
            joins = joins.merged_with(self.extra_churn)

        index.sim.process(self._membership_driver(joins), name="driver:joins")
        index.sim.process(self._item_driver(workload), name="driver:items")

        duration = max(joins.duration, workload.duration + 1.0)
        settle = settings.settle_time if extra_settle is None else extra_settle
        index.run(duration + settle)
        return index

    # ------------------------------------------------------------------ churn extras
    def fail_correlated(self, count: int) -> List[str]:
        """Kill ``count`` random ring members at the current instant (rack outage)."""
        rng = self.index.rngs.stream("correlated-failures")
        # One snapshot for the whole burst: every victim is drawn from the
        # membership as it was when the outage started, so a peer that already
        # failed earlier in the burst can never be selected again.
        pool = self.index.ring_members()
        victims: List[str] = []
        for _ in range(count):
            victim = self._draw_victim(pool, rng, floor=3)
            if victim is None:
                break
            victims.append(victim.address)
            self.index.fail_peer(victim.address)
        return victims

    @staticmethod
    def _draw_victim(pool: List, rng, floor: int):
        """Pick and remove one failure victim from a burst's snapshot pool.

        All of a burst's victims come from one membership snapshot with chosen
        peers removed (never re-picking a peer that already failed), and the
        pool is never drained below ``floor`` members.
        """
        if len(pool) <= floor:
            return None
        return pool.pop(rng.randrange(len(pool)))

    def _membership_driver(self, schedule: ChurnSchedule):
        rng = self.index.rngs.stream("churn")
        burst_time = None
        burst_pool: List = []
        for event in schedule:
            delay = event.time - self.index.sim.now
            if delay > 0:
                yield self.index.sim.timeout(delay)
            if event.kind == JOIN:
                self.index.add_peer()
            elif event.kind == FAIL:
                # FAIL events landing at one instant form a burst; victims come
                # from the snapshot taken at the burst's start (_draw_victim).
                if burst_time != self.index.sim.now:
                    burst_time = self.index.sim.now
                    burst_pool = self.index.ring_members()
                victim = self._draw_victim(burst_pool, rng, floor=2)
                if victim is not None:
                    self.index.fail_peer(victim.address)

    def _item_driver(self, workload: ItemWorkload):
        for time, key, payload in workload.insert_events():
            delay = time - self.index.sim.now
            if delay > 0:
                yield self.index.sim.timeout(delay)
            # Fire and forget so the insert rate stays steady regardless of
            # routing latency (the facade records the outcome in the history).
            self.index.sim.process(self.index.insert_item(key, payload))

    # ------------------------------------------------------------------ phases
    def settle(self, duration: float) -> None:
        """Let the system run with no external activity."""
        self.index.run(duration)

    def inject_failures(self, rate_per_100s: float, duration: float) -> int:
        """Run a failure phase: kill random ring members at the given rate."""
        rng = self.index.rngs.stream("failures")
        schedule = failure_schedule(rate_per_100s, duration, rng, start=self.index.sim.now)
        self.index.sim.process(self._membership_driver(schedule), name="driver:failures")
        self.index.run(duration)
        return len(schedule)

    def grow(self, peers: int, period: Optional[float] = None) -> None:
        """Add more peers at the configured arrival rate and wait for them."""
        period = period or self.settings.peer_join_period
        schedule = join_schedule(peers, period=period, start=self.index.sim.now + 0.1)
        self.index.sim.process(self._membership_driver(schedule), name="driver:grow")
        self.index.run(peers * period + self.settings.settle_time)

    def insert_items(self, keys: List[float], rate: Optional[float] = None) -> None:
        """Insert additional items at the given rate and wait for them."""
        rate = rate or self.settings.item_insert_rate
        workload = ItemWorkload(keys, insert_rate=rate, start_time=self.index.sim.now + 0.1)
        self.inserted_keys.extend(keys)
        self.index.sim.process(self._item_driver(workload), name="driver:more-items")
        self.index.run(workload.duration + 5.0)

    def delete_items(self, keys: List[float], rate: float = 2.0) -> None:
        """Delete items at the given rate (forces underflows, merges, leaves)."""
        for key in keys:
            self.index.run_process(self.index.delete_item(key))
            self.deleted_keys.append(key)
            if rate > 0:
                self.index.run(1.0 / rate)

    # ------------------------------------------------------------------ queries
    def run_query(self, lb: float, ub: float, via: Optional[str] = None) -> QueryOutcome:
        """Execute one range query and wrap its outcome."""
        result = self.index.range_query_now(lb, ub, via=via)
        record = self.index.query_records[-1] if self.index.query_records else None
        return QueryOutcome(
            lb=lb,
            ub=ub,
            hops=result["hops"],
            elapsed=result["end_time"] - result["start_time"],
            scan_elapsed=result["scan_elapsed"],
            complete=result["complete"],
            keys=result["keys"],
            record=record,
            strategy=result["strategy"],
        )

    def run_queries_by_hops(
        self, hop_targets: List[int], queries_per_target: int = 5
    ) -> Dict[int, List[QueryOutcome]]:
        """Issue queries sized to span the requested hop counts (Figure 21)."""
        rng = self.index.rngs.stream("queries")
        outcomes: Dict[int, List[QueryOutcome]] = {}
        for target in hop_targets:
            for _ in range(queries_per_target):
                members = self.index.ring_members()  # already in ring-value order
                if len(members) < 2:
                    continue
                values = [peer.ring.value for peer in members]
                start_index = rng.randrange(len(values))
                end_index = start_index + min(target, len(values) - 1)
                lb = values[start_index]
                if end_index >= len(values):
                    continue
                ub = values[end_index]
                if ub <= lb:
                    continue
                via = members[rng.randrange(len(members))].address
                outcome = self.run_query(lb, ub, via=via)
                outcomes.setdefault(outcome.hops, []).append(outcome)
                self.index.run(0.5)
        return outcomes

    # ------------------------------------------------------------------ metric helpers
    def mean_metric(self, name: str) -> Optional[float]:
        """Mean of a named metric collected so far."""
        return self.index.metrics.mean(name)

    def metric_values(self, name: str) -> List[float]:
        return self.index.metrics.values(name)

    def expected_keys(self, lb: float, ub: float) -> List[float]:
        """Keys inserted (and not deleted) that fall in ``(lb, ub]``."""
        alive = set(self.inserted_keys) - set(self.deleted_keys)
        return sorted(k for k in alive if lb < k <= ub)
