"""Experiment harness: metrics, the scenario registry, and figure reproductions.

Lazily exposes the heavier experiment modules so that library users who only
need :class:`~repro.harness.metrics.Metrics` do not pay for them.
"""

from typing import TYPE_CHECKING

from repro.harness.metrics import Metrics

__all__ = [
    "ClusterExperiment",
    "ExperimentSettings",
    "Metrics",
    "ScenarioSpec",
    "figures",
    "get_scenario",
    "run_spec",
    "scenarios",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.harness.experiment import ClusterExperiment, ExperimentSettings
    from repro.harness.scenarios import ScenarioSpec, get_scenario, run_spec

_EXPERIMENT_NAMES = ("ClusterExperiment", "ExperimentSettings")
_SCENARIO_NAMES = ("ScenarioSpec", "get_scenario", "run_spec")


def __getattr__(name):
    if name in _EXPERIMENT_NAMES:
        from repro.harness import experiment

        return getattr(experiment, name)
    if name in _SCENARIO_NAMES:
        from repro.harness import scenarios

        return getattr(scenarios, name)
    if name in ("figures", "scenarios"):
        import importlib

        return importlib.import_module(f"repro.harness.{name}")
    raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
