"""Experiment harness: metrics, the scenario registry, and figure reproductions.

Lazily exposes the heavier experiment modules so that library users who only
need :class:`~repro.harness.metrics.Metrics` do not pay for them.

Layer contract: the top of the stack -- the only layer (besides the CLI)
allowed to import everything below, including :class:`PRingIndex`.  Nothing
under ``src/repro`` may import the harness except :mod:`repro.cli`;
:mod:`~repro.harness.metrics` is the one exception, a leaf utility injected
downward into every component.  Experiments enter through the scenario
registry (:func:`get_scenario` / :func:`run_spec` -- see
``docs/SCENARIOS.md``), not through bespoke drivers.
"""

from typing import TYPE_CHECKING

from repro.harness.metrics import Metrics

__all__ = [
    "ClusterExperiment",
    "ExperimentSettings",
    "Metrics",
    "ScenarioSpec",
    "figures",
    "get_scenario",
    "run_spec",
    "scenarios",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.harness.experiment import ClusterExperiment, ExperimentSettings
    from repro.harness.scenarios import ScenarioSpec, get_scenario, run_spec

_EXPERIMENT_NAMES = ("ClusterExperiment", "ExperimentSettings")
_SCENARIO_NAMES = ("ScenarioSpec", "get_scenario", "run_spec")


def __getattr__(name):
    if name in _EXPERIMENT_NAMES:
        from repro.harness import experiment

        return getattr(experiment, name)
    if name in _SCENARIO_NAMES:
        from repro.harness import scenarios

        return getattr(scenarios, name)
    if name in ("figures", "scenarios"):
        import importlib

        return importlib.import_module(f"repro.harness.{name}")
    raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
