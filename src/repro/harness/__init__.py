"""Experiment harness: metrics, cluster builders, and per-figure reproductions.

Lazily exposes the heavier experiment modules so that library users who only
need :class:`~repro.harness.metrics.Metrics` do not pay for them.
"""

from typing import TYPE_CHECKING

from repro.harness.metrics import Metrics

__all__ = ["ClusterExperiment", "ExperimentSettings", "Metrics", "figures"]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.harness.experiment import ClusterExperiment, ExperimentSettings


def __getattr__(name):
    if name in ("ClusterExperiment", "ExperimentSettings"):
        from repro.harness import experiment

        return getattr(experiment, name)
    if name == "figures":
        from repro.harness import figures

        return figures
    raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
