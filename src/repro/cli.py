"""``repro-run``: execute registry scenarios, suites, figures and benchmarks.

Examples::

    repro-run --list                 # everything runnable, with descriptions
    repro-run smoke                  # one scenario cell, writes BENCH_smoke.json
    repro-run scale_sweep            # 100..5000-peer suite -> BENCH_scale.json
    repro-run figure_19              # a paper-figure reproduction
    repro-run engine_bench           # engine-vs-seed microbench -> BENCH_engine.json
    repro-run churn_heavy --seeds 0,1,2 --processes 3
    repro-run scale_sweep --seeds 0..4   # 5 seeds/cell; BENCH carries mean/p95
    repro-run scale_100_wan          # the scale cell under 4-site LAN/WAN latency
    repro-run adaptive_ablation      # fixed vs adaptive maintenance at 1000 peers
    repro-run scale_300 --engine wheel   # same cell on the timer-wheel engine
    repro-run scale_1000 --profile   # cProfile capture -> PROFILE_scale_1000.txt
    repro-run localhost_20           # same protocols over real asyncio UDP sockets
    repro-run localhost_20_sim --transport asyncio   # transport override on any cell
    repro-run scale_1000 --snapshot-dir .snapshots   # capture, then warm-start reruns
    repro-run scale_1000 --snapshot-dir .snapshots --no-warm-start  # refresh the cache
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

ENGINE_BENCH = "engine_bench"


def _parse_seeds(tokens: List[str]) -> List[int]:
    """Seed lists in any of the accepted spellings: '0 1 2', '0,1,2', '0..4'."""
    seeds: List[int] = []
    for token in tokens:
        for part in token.split(","):
            part = part.strip()
            if part == "":
                continue
            try:
                if ".." in part:
                    low, _, high = part.partition("..")
                    first, last = int(low), int(high)
                    if last < first:
                        raise ValueError
                    seeds.extend(range(first, last + 1))
                else:
                    seeds.append(int(part))
            except ValueError:
                raise SystemExit(
                    f"invalid --seeds value {part!r}; expected e.g. '0', '0,1,2' or '0..4'"
                )
    if not seeds:
        raise SystemExit("--seeds selected no seeds")
    return seeds


def _print_listing() -> None:
    from repro.harness.figures import ALL_FIGURES
    from repro.harness.scenarios import (
        get_scenario,
        get_suite,
        scenario_names,
        suite_names,
    )

    print("suites:")
    for name in suite_names():
        suite = get_suite(name)
        print(f"  {name:24s} {suite.description} [{', '.join(suite.scenarios)}]")
    print("scenarios:")
    print(f"  {'name':24s} {'peers':>5s}  {'engine':7s} {'transport':9s} description")
    for name in scenario_names():
        spec = get_scenario(name)
        transport = spec.transport.resolve() or "sim"
        print(
            f"  {name:24s} {spec.peers:5d}  {spec.engine:7s} {transport:9s} "
            f"{spec.description}"
        )
    print("figures:")
    for name in sorted(ALL_FIGURES):
        print(f"  {name:24s} {ALL_FIGURES[name].__doc__.strip().splitlines()[0]}")
    print("benchmarks:")
    print(f"  {ENGINE_BENCH:24s} event-engine microbenchmark vs. the frozen seed engine")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="run a registered scenario / suite / figure and emit BENCH_<name>.json",
    )
    parser.add_argument("scenario", nargs="?", help="name from the registry (see --list)")
    parser.add_argument("--list", action="store_true", help="list runnable names and exit")
    parser.add_argument(
        "--seeds",
        nargs="+",
        default=["0"],
        help="seeds as a list, comma list or range: '0 1 2', '0,1,2', '0..4' (default: 0)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for multi-cell runs (default: min(cells, cores))",
    )
    parser.add_argument("--out-dir", default=".", help="directory for BENCH_<name>.json")
    parser.add_argument("--no-json", action="store_true", help="print only, write nothing")
    parser.add_argument(
        "--engine",
        choices=("heap", "wheel"),
        default=None,
        help="override the event engine of every cell (default: the spec's own choice)",
    )
    parser.add_argument(
        "--transport",
        choices=("sim", "asyncio"),
        default=None,
        help="override the transport of every cell: 'sim' (discrete-event) or "
        "'asyncio' (real UDP sockets on localhost, wall-clock time)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run cells serially under cProfile; writes PROFILE_<scenario>.txt "
        "and prints the top functions by cumulative time",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="snapshot cache directory: cells capture their pre-boundary world "
        "there and later runs warm-start from it (sim transport only)",
    )
    parser.add_argument(
        "--no-warm-start",
        action="store_true",
        help="with --snapshot-dir: still capture snapshots but never resume "
        "from one (force cold runs, e.g. to regenerate a cache)",
    )
    args = parser.parse_args(argv)

    if args.list or args.scenario is None:
        _print_listing()
        return 0

    out_dir = None if args.no_json else args.out_dir
    if args.scenario == ENGINE_BENCH:
        from repro.harness.engine_bench import run_engine_bench
        from repro.harness.runner import write_bench

        payload = run_engine_bench()
        if out_dir is not None:
            path = write_bench("engine", payload, out_dir=out_dir)
            print(f"wrote {path}", file=sys.stderr)
        print(json.dumps(payload, indent=2))
        return 0

    from repro.harness.runner import known_names, run_named

    if args.scenario not in known_names():
        print(f"unknown scenario {args.scenario!r}; try: repro-run --list", file=sys.stderr)
        return 2
    try:
        payload = run_named(
            args.scenario,
            seeds=_parse_seeds(args.seeds),
            processes=args.processes,
            out_dir=out_dir,
            engine=args.engine,
            transport=args.transport,
            profile_dir=args.out_dir if args.profile else None,
            snapshot_dir=args.snapshot_dir,
            warm_start=False if args.no_warm_start else None,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(json.dumps(payload["summary"], indent=2))
    for cell in payload["results"]:
        if "scenario" in cell:
            print(
                f"{cell['scenario']}[seed={cell['seed']}]: "
                f"wall={cell['wall_clock_s']:.2f}s sim={cell['sim_time_s']:.0f}s "
                f"events={cell['events_processed']} "
                f"({cell['events_per_wall_s']:.0f}/s) ring={cell['ring_members']} "
                f"items={cell['items_stored']}/{cell['items_requested']} "
                f"reachable={cell.get('items_reachable', '?')}"
                f"{' (warm start)' if cell.get('warm_start') else ''}"
            )
            latency = cell.get("query_latency") or {}
            if latency:
                serve = (
                    f" serve={cell['serve_correct']}/{cell['serve_queries']} correct "
                    f"load_var={cell['serve_load_variance']:.2f}"
                    if cell.get("serve_queries")
                    else ""
                )
                print(
                    f"  queries: n={latency['count']:.0f} "
                    f"p50={latency['p50'] * 1000:.1f}ms p99={latency['p99'] * 1000:.1f}ms "
                    f"mean={latency['mean'] * 1000:.1f}ms{serve}"
                )
            for phase in cell.get("phases", ()):
                timed_out = " START-TIMEOUT" if phase["start_timed_out"] else ""
                print(
                    f"  {phase['phase']}: {phase['start_condition']} "
                    f"wait={phase['wait_s']:.1f}s sim={phase['sim_seconds']:.1f}s "
                    f"ring={phase['ring_members_start']}->{phase['ring_members']} "
                    f"rpcs={phase['rpc_calls']}{timed_out}"
                )
        elif "figure" in cell:
            from repro.harness.reporting import format_table

            print(f"{cell['figure']}: {cell['description']} [seed={cell.get('seed', '?')}]")
            print(format_table(cell["headers"], cell["rows"]))
    aggregates = payload.get("aggregates", {})
    if "rows" in aggregates:
        # A multi-seed figure run: print the seed-averaged rows.
        from repro.harness.reporting import format_table

        print(f"mean over seeds {payload['seeds']}:")
        print(format_table(aggregates["headers"], aggregates["rows"]))
    else:
        for scenario, stats in aggregates.items():
            wall = stats["wall_clock_s"]
            latency = ""
            if "query_latency" in stats:
                block = stats["query_latency"]
                latency = (
                    f" q_p50={block['p50']['mean'] * 1000:.1f}ms"
                    f" q_p99={block['p99']['mean'] * 1000:.1f}ms"
                )
            if "serve_load_variance" in stats:
                latency += f" load_var={stats['serve_load_variance']['mean']:.2f}"
            print(
                f"{scenario} x{len(stats['seeds'])} seeds: "
                f"wall mean={wall['mean']:.2f}s p95={wall['p95']:.2f}s "
                f"rpcs mean={stats['rpc_calls']['mean']:.0f}{latency}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution convenience
    raise SystemExit(main())
