"""repro: reproduction of "Guaranteeing Correctness and Availability in P2P Range Indices".

The package implements, on a deterministic discrete-event simulator, the full
P2P indexing framework the paper builds on (fault-tolerant ring, data store,
replication manager, content router, P2P index) together with the paper's
contributions: the PEPPER consistent ``insertSucc``, the ``scanRange`` query
primitive, the availability-preserving ``leave`` and the
replicate-to-additional-hop protocol -- plus the naive baselines the paper
compares against and history-based checkers for its correctness definitions.

Quickstart::

    from repro import PRingIndex, default_config

    index = PRingIndex(default_config(seed=7))
    index.bootstrap()
    for _ in range(5):
        index.add_peer()
    for key in range(100, 200, 10):
        index.insert_item_now(float(key))
    index.run(30.0)                       # let splits / stabilization settle
    result = index.range_query_now(100.0, 200.0)
    print(result["keys"])
"""

from repro.core import (
    CheckResult,
    History,
    HistoryRecorder,
    Operation,
    check_consistent_successor_pointers,
    check_item_availability,
    check_query_result,
    check_ring_connectivity,
    check_scan_range_correctness,
)
from repro.core.correctness import ItemTimeline, QueryRecord, count_lost_items
from repro.datastore import CircularRange, Item, ItemStore
from repro.harness.metrics import Metrics
from repro.index import IndexConfig, IndexPeer, PRingIndex
from repro.index.config import default_config

__version__ = "1.0.0"

__all__ = [
    "CheckResult",
    "CircularRange",
    "History",
    "HistoryRecorder",
    "IndexConfig",
    "IndexPeer",
    "Item",
    "ItemStore",
    "ItemTimeline",
    "Metrics",
    "Operation",
    "PRingIndex",
    "QueryRecord",
    "check_consistent_successor_pointers",
    "check_item_availability",
    "check_query_result",
    "check_ring_connectivity",
    "check_scan_range_correctness",
    "count_lost_items",
    "default_config",
    "__version__",
]
