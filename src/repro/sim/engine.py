"""Generator-based discrete-event simulation engine.

The engine follows the classic "process interaction" style popularised by
SimPy, but is intentionally small and dependency free.  Protocol code is
written as plain Python generators that ``yield`` :class:`Event` objects; the
engine resumes a generator when the event it is waiting on triggers.

Design notes
------------
* Time is a float in *simulated seconds*.  All experiments in this repository
  interpret it as wall-clock seconds on the paper's LAN cluster.
* The event queue is a binary heap keyed on ``(time, sequence)`` so that events
  scheduled for the same instant fire in scheduling order (deterministic).
* Heap entries are mutable ``[time, seq, func, arg]`` records invoked as
  ``func(arg)``.  This avoids a closure allocation per scheduled action (the
  dominant cost of the original engine) and makes entries *cancellable*:
  :meth:`Simulator.cancel` tombstones an entry in place (lazy deletion) and the
  run loop skips it for free.  Cancelled RPC timeouts -- the dominant heap
  population under churn -- therefore cost one list mutation instead of a
  scheduled no-op callback.
* When more than half of a large heap is tombstones the queue is compacted
  (filter + re-heapify), bounding memory under timeout-heavy workloads.
* Zero-delay work (event callbacks, process starts/resumes, interrupts) runs
  through a FIFO *ready queue* drained before the time-keyed heap is touched:
  same-instant causality is preserved at O(1) per action instead of an
  O(log n) heap round-trip.  Relative to the original engine this runs an
  event's callbacks before same-time heap entries that were scheduled earlier,
  which is an equally valid (and still deterministic) tie-break.
* Processes can be interrupted (used to model peer failures): an
  :class:`Interrupt` exception is thrown into the generator at its current
  suspension point.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "Timeout",
    "make_simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation primitives."""


class Interrupt(Exception):
    """Thrown into a process that has been interrupted (e.g. its peer failed).

    The ``cause`` attribute carries an arbitrary, caller-supplied reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Interrupt):
    """Interrupt variant used when a node fails and kills its processes."""


def _invoke(action: Callable[[], None]) -> None:
    """Adapter so legacy no-argument thunks fit the ``func(arg)`` entry shape."""
    action()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once; the simulator then runs all registered callbacks
    at the current simulation time.  Waiting on an already triggered event
    resumes the waiter immediately (at the same timestamp).
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Lazily allocated: most events in a large deployment have exactly one
        # waiter and many (e.g. fire-and-forget RPC replies) have none.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._triggered = False
        self._ok = True
        self._value: Any = None

    # -- inspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (vs. with an exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload of a successful event, or the exception of a failure."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            ready = self.sim._ready
            for callback in callbacks:
                ready.append((callback, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters have ``exception`` thrown in."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = None
            ready = self.sim._ready
            for callback in callbacks:
                ready.append((callback, self))
        return self

    # -- plumbing ----------------------------------------------------------
    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            # Already fired: run the callback at the current time.
            self.sim._ready.append((callback, self))
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


def _fire_timeout(timeout: "Timeout") -> None:
    timeout.succeed(timeout._pending)


def _fire_event(event: "Event") -> None:
    event.succeed(None)


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay", "_pending")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._pending = value
        # Inlined sim.schedule: timeouts are the most-allocated event kind.
        sim._sequence += 1
        heapq.heappush(sim._queue, [sim._now + delay, sim._sequence, _fire_timeout, self])


class AnyOf(Event):
    """Fires when the *first* of the given events fires.

    The payload is a ``(index, value)`` tuple identifying which event won.  If
    the winning event failed, this condition fails with the same exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self.events):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def _on_trigger(event: Event) -> None:
            if self._triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)

        return _on_trigger


class AllOf(Event):
    """Fires when *all* of the given events have fired successfully.

    The payload is the list of event values in the original order.  The first
    failing event fails the condition.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event._add_callback(self._on_trigger)

    def _on_trigger(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator.  Also an event that fires when the generator ends.

    The generator yields :class:`Event` objects.  When a yielded event fires,
    the generator is resumed with the event's value (or has the event's
    exception thrown into it).  The value returned by the generator becomes the
    process event's payload, so processes can be composed by yielding other
    processes.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_alive", "_send", "_throw_into")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.generator = generator
        self._send = generator.send
        self._throw_into = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Start the process at the current simulation time.
        sim._ready.append((self._resume, None))

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its suspension point.

        Interrupting a finished process is a no-op (peers may fail after their
        handlers complete).
        """
        if not self._alive:
            return
        exception = cause if isinstance(cause, Interrupt) else Interrupt(cause)
        self._waiting_on = None
        self.sim._ready.append((self._throw, exception))

    # -- stepping ----------------------------------------------------------
    def _resume(self, trigger: Optional[Event]) -> None:
        if not self._alive:
            return
        if trigger is not None and self._waiting_on is not trigger:
            # Stale wakeup: the process was interrupted (or already resumed)
            # while this event was pending.
            return
        self._waiting_on = None
        if trigger is None or trigger._ok:
            value = None if trigger is None else trigger._value
            try:
                target = self._send(value)
            except BaseException as stop:  # noqa: BLE001 - dispatched below
                self._stop(stop)
                return
        else:
            try:
                target = self._throw_into(trigger._value)
            except BaseException as stop:  # noqa: BLE001 - dispatched below
                self._stop(stop)
                return
        self._wait_for(target)

    def _throw(self, exception: BaseException) -> None:
        if not self._alive:
            return
        try:
            target = self._throw_into(exception)
        except BaseException as stop:  # noqa: BLE001 - dispatched below
            self._stop(stop)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._finish(
                value=None,
                error=SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                ),
            )
            return
        self._waiting_on = target
        # Inlined Event._add_callback: this is the single hottest call site.
        if target._triggered:
            self.sim._ready.append((self._resume, target))
        elif target.callbacks is None:
            target.callbacks = [self._resume]
        else:
            target.callbacks.append(self._resume)

    def _stop(self, stop: BaseException) -> None:
        """Dispatch the exception that ended the generator."""
        if isinstance(stop, StopIteration):
            self._finish(value=stop.value, error=None)
        elif isinstance(stop, Interrupt):
            # An uncaught interrupt terminates the process quietly: this is the
            # normal way a failed peer's handlers disappear.
            self._finish(value=stop, error=None)
        elif isinstance(stop, Exception):
            self._finish(value=None, error=stop)
        else:  # KeyboardInterrupt & friends propagate out of the simulation
            self._alive = False
            raise stop

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        self._alive = False
        self._waiting_on = None
        if self._triggered:
            return
        if error is None:
            self.succeed(value)
        else:
            self.fail(error)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(some_generator())
        sim.run(until=100.0)

    ``events_processed`` counts executed actions, which the harness reports as
    the engine-throughput metric of a scenario run.
    """

    # Compaction kicks in once the heap holds this many tombstones *and* they
    # outnumber the live entries (classic lazy-deletion bookkeeping).
    _COMPACT_MIN = 2048

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list = []  # entries: [time, seq, func, arg]
        self._ready: deque = deque()  # same-instant (func, arg) pairs, FIFO
        self._sequence = 0
        self._cancelled = 0
        self._running = False
        self.events_processed = 0

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, time: float) -> Event:
        """An event firing at *absolute* simulated ``time`` (payload ``None``).

        The snapshot restore arms resumed maintenance loops with this instead
        of :meth:`timeout`: re-deriving the delay as ``time - now`` and adding
        it back is not an exact float round-trip, and resume parity needs the
        timer to fire at the captured instant bit-for-bit.  Routed through
        :meth:`schedule_at`, so it works identically on the wheel engine.
        """
        event = Event(self)
        self.schedule_at(time, _fire_event, event)
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a :class:`Process`."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition firing when all ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, func: Callable[[Any], None], arg: Any = None) -> list:
        """Schedule ``func(arg)`` after ``delay`` seconds; returns a handle.

        The handle can be passed to :meth:`cancel` to tombstone the entry
        without touching the heap.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        entry = [self._now + delay, self._sequence, func, arg]
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_at(self, time: float, func: Callable[[Any], None], arg: Any = None) -> list:
        """Schedule ``func(arg)`` at absolute simulated ``time``.

        Used by the network's delivery batching, which keys pending messages on
        their exact delivery instant: computing the instant once and scheduling
        at it avoids float round-trip drift.
        """
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past (time={time})")
        self._sequence += 1
        entry = [time, self._sequence, func, arg]
        heapq.heappush(self._queue, entry)
        return entry

    def _schedule(self, delay: float, action: Callable[[], None]) -> list:
        """Schedule a no-argument thunk (compatibility shim used by tests)."""
        return self.schedule(delay, _invoke, action)

    def cancel(self, entry: Optional[list]) -> Any:
        """Tombstone a scheduled entry; the run loop skips it for free.

        Returns the entry's ``arg`` (or ``None`` if the entry already fired or
        was cancelled) so callers that recycle their argument records can
        reclaim them.  Cancelling a handle *after* its entry fired is a no-op
        here; see :class:`repro.sim.wheel.WheelSimulator` for why the shared
        engine contract nevertheless forbids it.
        """
        if entry is None or entry[2] is None:
            return None
        arg = entry[3]
        entry[2] = None
        entry[3] = None
        self._cancelled += 1
        if self._cancelled > self._COMPACT_MIN and self._cancelled * 2 > len(self._queue):
            self._compact()
        return arg

    def _compact(self) -> None:
        # In place: the run loop holds a local alias of the queue list, so the
        # compacted heap must live in the same list object.
        live = [entry for entry in self._queue if entry[2] is not None]
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    # Engine-agnostic timer API used by the network's RPC fast path.  On this
    # engine a timer is just a scheduled entry; the wheel engine overrides the
    # pair with O(1) wheel placement and tombstones that are filtered out
    # wholesale instead of sifted through a heap.
    # Contract for both engines: a handle is valid until its timer fires or is
    # cancelled, whichever comes first -- never cancel after the fire.
    schedule_timer = schedule
    cancel_timer = cancel

    # -- introspection ------------------------------------------------------
    # Used by the snapshot barrier (repro.snapshot.barrier) to step the world
    # instant by instant and decide when it is quiescent.  Not hot paths.
    def next_timed_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live timed entry, or ``None`` if idle.

        Tombstones at the heap top are popped on the way (the run loop would
        have skipped them anyway), so the answer is exact, not an upper bound.
        """
        queue = self._queue
        while queue and queue[0][2] is None:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][0] if queue else None

    def live_timer_count(self) -> int:
        """Number of pending (non-cancelled) timed entries."""
        return len(self._queue) - self._cancelled

    def iter_timers(self):
        """Yield every live timed entry as ``(time, seq, func, arg)``.

        Unordered; the caller sorts if it cares.  Snapshot capture uses this
        to classify pending timers (loop sleeps vs. inert stragglers)."""
        for entry in self._queue:
            if entry[2] is not None:
                yield entry[0], entry[1], entry[2], entry[3]

    def advance_idle(self, time: float) -> None:
        """Jump the clock to ``time`` on an idle simulator (snapshot restore).

        Processes nothing and counts nothing.  Requires that no work is
        pending, so the jump cannot silently skip over a scheduled event.
        """
        if time < self._now:
            raise SimulationError(f"cannot move the clock backwards (to {time})")
        if self._ready or self.live_timer_count():
            raise SimulationError("advance_idle requires an idle simulator")
        self._now = time

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        processed = 0
        exhausted = False
        try:
            while True:
                while ready:
                    func, arg = ready.popleft()
                    processed += 1
                    func(arg)
                if not queue:
                    exhausted = True
                    break
                entry = queue[0]
                func = entry[2]
                if func is None:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    break
                pop(queue)
                self._now = time
                arg = entry[3]
                # Mark the entry dead so a (contract-violating) late cancel
                # is a visible no-op returning None, as on the wheel engine.
                entry[2] = None
                entry[3] = None
                processed += 1
                func(arg)
            if exhausted and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self.events_processed += processed
        return self._now

    def run_until(self, event: Event, timeout: float = 1e9) -> bool:
        """Process queued events until ``event`` triggers (or ``timeout`` elapses).

        Unlike :meth:`run`, this stops as soon as the event fires, so simulated
        time only advances as far as needed.  Returns whether the event fired.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        deadline = self._now + timeout
        self._running = True
        queue = self._queue
        ready = self._ready
        pop = heapq.heappop
        processed = 0
        try:
            while not event._triggered:
                if ready:
                    func, arg = ready.popleft()
                    processed += 1
                    func(arg)
                    continue
                if not queue:
                    break
                entry = queue[0]
                func = entry[2]
                if func is None:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if time > deadline:
                    break
                pop(queue)
                self._now = time
                arg = entry[3]
                entry[2] = None
                entry[3] = None
                processed += 1
                func(arg)
        finally:
            self._running = False
            self.events_processed += processed
        return event._triggered

    # -- identity -----------------------------------------------------------
    #: Registry name of this engine implementation (see :func:`make_simulator`).
    engine_name = "heap"

    def run_process(self, generator: ProcessGenerator, timeout: float = 1e9) -> Any:
        """Convenience: run ``generator`` to completion and return its value.

        Simulated time advances only as far as the process needs (background
        periodic activity scheduled further in the future is left pending).
        Raises the process's exception if it failed, or :class:`SimulationError`
        if it did not finish within ``timeout`` simulated seconds.
        """
        proc = self.process(generator)
        self.run_until(proc, timeout=timeout)
        if not proc.triggered:
            raise SimulationError("process did not finish within the timeout")
        if not proc.ok:
            raise proc.value
        return proc.value


# --------------------------------------------------------------------------- engine selection
#: Environment knob forcing an engine for every simulator built through
#: :func:`make_simulator` (e.g. ``REPRO_ENGINE=wheel`` runs the tier-1 suite
#: on the wheel engine in CI without touching any scenario spec).
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: The selectable engine implementations.  ``heap`` is the default binary-heap
#: engine above; ``wheel`` is the hierarchical timer wheel with record
#: recycling (:mod:`repro.sim.wheel`).  Both honor the same contract:
#: ``(time, seq)`` tie-break on the time-keyed queue, FIFO same-instant ready
#: queue drained first, and deterministic execution for a given seed.
ENGINE_NAMES = ("heap", "wheel")


def make_simulator(engine: str = "heap") -> Simulator:
    """Build the engine named ``engine`` (``heap`` or ``wheel``).

    The :data:`ENGINE_ENV_VAR` environment variable, when set, overrides the
    argument -- that is the "force the wheel engine" knob the engine-parity CI
    job uses.  Unknown names raise :class:`SimulationError`.
    """
    forced = os.environ.get(ENGINE_ENV_VAR)
    if forced:
        engine = forced
    if engine == "heap":
        return Simulator()
    if engine == "wheel":
        from repro.sim.wheel import WheelSimulator  # deferred: wheel imports us

        return WheelSimulator()
    raise SimulationError(
        f"unknown simulation engine {engine!r}; known: {', '.join(ENGINE_NAMES)}"
    )
