"""Discrete-event simulation substrate.

The paper evaluates its protocols on a real 30-peer distributed deployment.
This package provides the substitute substrate: a deterministic, seeded
discrete-event simulator in which every peer runs as a cooperative process,
messages experience configurable latency, and read/write locks are simulated
objects with FIFO wait queues.

Layer contract: the bottom of the stack (stdlib-only, like
:mod:`repro.maintenance`); nothing here may import ring/datastore/index/
harness code.  Every higher layer may import the public surface below.
Periodic loops accept either a float period or a zero-argument callable
(:meth:`Node.every`), which is how the maintenance cadence controllers plug
in without an import in this direction.  Determinism is part of the contract
-- all randomness comes through :class:`~repro.sim.randomness.RngStreams`,
never the global ``random`` module.

The public surface is:

* :class:`~repro.sim.engine.Simulator` -- the event loop (binary-heap engine);
  :class:`~repro.sim.wheel.WheelSimulator` is the drop-in timer-wheel engine
  and :func:`~repro.sim.engine.make_simulator` selects between them by name
  (overridable via the ``REPRO_ENGINE`` environment variable).
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process` -- the primitives protocol code yields on.
* :class:`~repro.sim.locks.RWLock` -- simulated read/write lock.
* :class:`~repro.sim.network.Network` -- latency/loss model and RPC transport.
* ``Node`` -- alias of :class:`repro.transport.endpoint.Endpoint`, the
  transport-agnostic peer base class (kept importable from here).
* :class:`~repro.sim.randomness.RngStreams` -- named, seeded RNG streams.
"""

from repro.sim.engine import (
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
    make_simulator,
)
from repro.sim.locks import RWLock
from repro.sim.network import (
    Network,
    NetworkConfig,
    RpcError,
    RpcRequest,
    RpcTimeout,
    RpcUnreachable,
)
from repro.sim.randomness import RngStreams

from repro.sim.wheel import WheelSimulator

__all__ = [
    "AllOf",
    "AnyOf",
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "Event",
    "Interrupt",
    "Network",
    "NetworkConfig",
    "Node",
    "Process",
    "ProcessKilled",
    "RWLock",
    "RngStreams",
    "RpcError",
    "RpcRequest",
    "RpcTimeout",
    "RpcUnreachable",
    "SimulationError",
    "Simulator",
    "Timeout",
    "WheelSimulator",
    "make_simulator",
]


def __getattr__(name):
    # ``Node`` moved to ``repro.transport.endpoint`` (as ``Endpoint``); the
    # alias is lazy because the transport package itself imports this one.
    if name == "Node":
        from repro.transport.endpoint import Endpoint

        return Endpoint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
