"""Historical home of the peer base class.

The class now lives at :class:`repro.transport.endpoint.Endpoint`, where it
serves both the simulated and the real (asyncio) transport; ``Node`` remains
importable from here so existing code and tests keep working.

The alias is resolved lazily (PEP 562): the transport package imports the
engine from ``repro.sim``, so an eager import here would complete the cycle
``sim -> transport.endpoint -> sim`` before either side has finished
initialising.
"""

from __future__ import annotations

__all__ = ["Node"]


def __getattr__(name):
    if name == "Node":
        from repro.transport.endpoint import Endpoint

        return Endpoint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
