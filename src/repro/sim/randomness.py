"""Seeded random-number streams.

Every source of randomness in the simulator and the workload generators draws
from a named stream derived deterministically from a single experiment seed.
This keeps experiments reproducible while letting independent components (the
network latency model, the churn schedule, the item generator, ...) consume
randomness without perturbing each other.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A factory of named, independently seeded ``random.Random`` instances."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed mixes the experiment seed with a CRC of the name so
        that streams are stable across runs and independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        stream = random.Random(mixed)
        self._streams[name] = stream
        return stream

    def fork(self, offset: int) -> "RngStreams":
        """Return a new factory whose streams are independent of this one.

        Used by parameter sweeps: each configuration gets ``base.fork(i)`` so
        changing one sweep point does not change the randomness of the others.
        """
        return RngStreams(self.seed * 1_000_003 + offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.seed} streams={sorted(self._streams)}>"
