"""Simulated read/write locks.

The paper's algorithms (Algorithms 1-5 and the appendix pseudocode) acquire
read and write locks on a peer's ``succList`` and Data Store ``range``.  In the
simulator these are cooperative locks: ``acquire_*`` returns an
:class:`~repro.sim.engine.Event` that the calling process yields on and that
fires once the lock is granted.

Fairness is strict FIFO: a waiting writer blocks later readers, which mirrors
the blocking behaviour the paper relies on (a scan holding a read lock on a
range delays a concurrent split/merge, and vice versa).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.engine import Event, SimulationError, Simulator

_READ = "read"
_WRITE = "write"


class RWLock:
    """A reader/writer lock with FIFO queuing for simulated processes."""

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._readers = 0
        self._writer = False
        self._waiters: Deque[Tuple[str, Event]] = deque()

    # -- inspection --------------------------------------------------------
    @property
    def readers(self) -> int:
        """Number of read holders currently inside the lock."""
        return self._readers

    @property
    def write_held(self) -> bool:
        """Whether a writer currently holds the lock."""
        return self._writer

    @property
    def locked(self) -> bool:
        """Whether any holder (reader or writer) is inside the lock."""
        return self._writer or self._readers > 0

    @property
    def waiting(self) -> int:
        """Number of queued acquisition requests."""
        return len(self._waiters)

    # -- acquisition -------------------------------------------------------
    def acquire_read(self) -> Event:
        """Request shared access; the returned event fires when granted."""
        event = self.sim.event()
        self._waiters.append((_READ, event))
        self._grant()
        return event

    def acquire_write(self) -> Event:
        """Request exclusive access; the returned event fires when granted."""
        event = self.sim.event()
        self._waiters.append((_WRITE, event))
        self._grant()
        return event

    # -- release -----------------------------------------------------------
    def release_read(self) -> None:
        """Release one shared hold."""
        if self._readers <= 0:
            raise SimulationError(f"{self.name}: release_read without a holder")
        self._readers -= 1
        self._grant()

    def release_write(self) -> None:
        """Release the exclusive hold."""
        if not self._writer:
            raise SimulationError(f"{self.name}: release_write without a holder")
        self._writer = False
        self._grant()

    # -- internals ---------------------------------------------------------
    def _grant(self) -> None:
        while self._waiters:
            kind, event = self._waiters[0]
            if kind == _WRITE:
                if self._writer or self._readers:
                    return
                self._waiters.popleft()
                self._writer = True
                event.succeed(self)
                return
            # kind == _READ: grant as long as no writer holds the lock.  A
            # queued writer blocks this reader (strict FIFO), which prevents
            # writer starvation.
            if self._writer:
                return
            self._waiters.popleft()
            self._readers += 1
            event.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RWLock {self.name} readers={self._readers} "
            f"writer={self._writer} waiting={len(self._waiters)}>"
        )
