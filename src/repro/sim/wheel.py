"""Hierarchical timer-wheel event engine with record recycling.

:class:`WheelSimulator` is a drop-in replacement for the binary-heap
:class:`~repro.sim.engine.Simulator` that targets the measured hot path of
churn experiments: the time-keyed queue is dominated by ``rpc_timeout``
timers that are armed on every call and cancelled milliseconds later when the
reply lands.  On the heap engine each of those costs an O(log n) push, a
tombstone, an O(log n) tombstone pop and a share of the periodic compaction
passes; here it costs an O(1) bucket append and an O(1) tombstone that never
takes part in any ordering work again (dead records are dropped by C-level
filters at harvest or sweep time, not sifted through a heap), and the
``[time, seq, func, arg]`` record itself is recycled through a freelist, so
the steady-state allocation rate of the timer path is ~zero.

Design
------
* Time is quantised into *ticks* of ``2**-8`` seconds (~3.9 ms).  The
  multiplication by a power of two is exact in binary floating point, which
  keeps the tick of a given timestamp stable no matter when it is computed.
  Resolution does not affect ordering (a slot's entries are sorted by
  ``(time, seq)`` at harvest); it trades harvest frequency against near-list
  length.
* Four wheel levels cover [now, now + ~73 simulated hours): level 0 has 256
  one-tick slots, levels 1..3 have 64 slots each spanning 256x the level
  below.  A timer lands in the finest level whose slot distance from the
  cursor fits (one compare per level); when the cursor reaches a coarse slot
  its entries *cascade* down.  The paper's workloads sit entirely inside
  level 1: RPC latencies and the 0.5 s RPC timeout are level-0 (one slot
  harvest, no cascade), maintenance periods (4-16 s) are level-1.
* Timers beyond the top level's horizon go to a small *overflow heap*; it is
  empty in every workload this repository runs, but keeps ``schedule``
  correct for arbitrary delays.
* Due entries are harvested a slot at a time into ``_near`` -- a list kept
  sorted by ``(time, seq)`` (the records compare lexicographically; sequence
  numbers are unique so comparison never reaches the callback).  The run
  loop consumes ``_near`` through an index cursor, so a harvest costs one
  C-level ``sort`` and draining costs no pops.
* Each level keeps an *occupancy bitmask* (one bit per slot), so advancing to
  the next pending timer is a couple of shift/bit-length operations instead
  of a slot scan -- the wheel is fast even when sparse.

Determinism contract (shared with the heap engine, pinned by
``tests/test_engine_parity.py``):

* timers fire in ``(time, seq)`` order -- scheduling order breaks ties;
* same-instant work (event callbacks, process resumes) runs through the FIFO
  ready queue inherited from the base engine, drained before the time-keyed
  queue is touched;
* ``events_processed`` counts executed actions identically.

Handle contract
---------------
``schedule``/``schedule_timer`` return the entry record; it may be passed to
``cancel``/``cancel_timer`` *until the timer fires or is cancelled*, after
which the record returns to the freelist and may be re-armed for an unrelated
timer.  Cancelling a stale handle whose record was already recycled would
therefore cancel the wrong timer.  The one hot-path caller that keeps handles
(:class:`~repro.sim.network.Network`) is safe by construction: it cancels an
RPC expiry only after checking that the reply event has *not* triggered,
which implies the timer has not fired.  (On the heap engine a stale cancel is
a silent no-op, so code honoring this contract runs identically on both.)
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Optional

from repro.sim.engine import (
    Event,
    SimulationError,
    Simulator,
    Timeout,
    _fire_timeout,
)

__all__ = ["WheelSimulator"]

# One tick is 2**-8 s (~3.9 ms).  Powers of two make tick computation an
# exact float operation (mantissa untouched), so `int(time * _INV_RESOLUTION)`
# is a stable floor for any representable time.  The resolution only controls
# *batching* -- entries sharing a slot are sorted by (time, seq) at harvest --
# so it is a pure throughput knob: coarse enough that a slot harvest amortizes
# over many entries (and that the 0.5 s RPC timeout lands in level 0, no
# cascade), fine enough that the near list stays short.
_TICK_BITS = 8
_INV_RESOLUTION = float(1 << _TICK_BITS)  # ticks per second
_RESOLUTION = 1.0 / _INV_RESOLUTION  # seconds per tick

# Level geometry: (shift, mask) per level; level k slots span 2**shift ticks.
# Level 0: 256 slots x 1 tick      -> covers    256 ticks (~1 s)
# Level 1:  64 slots x 256 ticks   -> covers  2**14 ticks (~64 s)
# Level 2:  64 slots x 2**14 ticks -> covers  2**20 ticks (~68 min)
# Level 3:  64 slots x 2**20 ticks -> covers  2**26 ticks (~73 h)
#
# An entry is filed into the finest level where its *slot number* is within
# one revolution of the cursor's (1..mask slots ahead).  Slot distance -- not
# raw tick delta -- is the safe criterion: an entry almost a full span ahead
# can land `mask + 1` slots onward, which the slot index wraps onto the
# cursor's own slot, and a cascade would then re-file it into the slot being
# drained, forever.
_L0_SLOTS = 256
_LN_SLOTS = 64
_LEVEL_SHIFTS = (0, 8, 14, 20)
_LEVEL_MASKS = (_L0_SLOTS - 1, _LN_SLOTS - 1, _LN_SLOTS - 1, _LN_SLOTS - 1)
_TOP_SHIFT = _LEVEL_SHIFTS[-1]
_TOP_MASK = _LEVEL_MASKS[-1]


class _WheelTimeout(Timeout):
    """A :class:`Timeout` scheduled on the wheel instead of the heap.

    The base class inlines a heap push into ``Simulator._queue``; this variant
    routes through the wheel's recycled-record scheduler instead.  Everything
    observable (``delay``, payload, trigger semantics) is identical.
    """

    __slots__ = ()

    def __init__(self, sim: "WheelSimulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        Event.__init__(self, sim)
        self.delay = delay
        self._pending = value
        sim.schedule(delay, _fire_timeout, self)


class WheelSimulator(Simulator):
    """The timer-wheel engine.  See the module docstring for the design."""

    engine_name = "wheel"

    def __init__(self) -> None:
        super().__init__()
        # The base class's `_queue` heap stays permanently empty; everything
        # time-keyed goes through the wheel.  The ready deque, sequence
        # counter and `events_processed` are inherited unchanged.
        self._tick = 0  # absolute tick of the last harvested slot
        self._levels = [
            [[] for _ in range(mask + 1)] for mask in _LEVEL_MASKS
        ]  # buckets: lists of entry records
        self._occupancy = [0, 0, 0, 0]  # one bitmask per level
        self._overflow: list = []  # heap of records beyond the horizon
        self._near: list = []  # records due at/before the cursor, (time, seq)-sorted
        self._near_pos = 0  # consumed prefix of _near
        self._free: list = []  # record freelist (slab recycling)
        # `self._cancelled` (inherited) counts resident tombstones; when they
        # outnumber live records a sweep recycles them (see `_sweep`).

    # -- factories ----------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout firing ``delay`` seconds from now (wheel-backed)."""
        return _WheelTimeout(self, delay, value)

    # -- scheduling ---------------------------------------------------------
    def _place(self, record: list, time: float) -> None:
        """File ``record`` into the wheel / near list / overflow heap."""
        tick = int(time * _INV_RESOLUTION)
        delta = tick - self._tick
        if 0 < delta <= 255:
            index = tick & 255
            self._levels[0][index].append(record)
            self._occupancy[0] |= 1 << index
        elif delta <= 0:
            # Due in the already-harvested present: merge into the sorted
            # near list.
            insort(self._near, record, lo=self._near_pos)
        else:
            self._place_far(record, tick)

    def _place_far(self, record: list, tick: int) -> None:
        """File a beyond-level-0 ``record`` (slow path of :meth:`_place`)."""
        cursor = self._tick
        if (tick >> 8) - (cursor >> 8) <= _LN_SLOTS - 1:
            level = 1
        elif (tick >> 14) - (cursor >> 14) <= _LN_SLOTS - 1:
            level = 2
        elif (tick >> _TOP_SHIFT) - (cursor >> _TOP_SHIFT) <= _TOP_MASK:
            level = 3
        else:
            heapq.heappush(self._overflow, record)
            return
        index = (tick >> _LEVEL_SHIFTS[level]) & _LEVEL_MASKS[level]
        self._levels[level][index].append(record)
        self._occupancy[level] |= 1 << index

    def schedule(self, delay: float, func: Callable[[Any], None], arg: Any = None) -> list:
        """Schedule ``func(arg)`` after ``delay`` seconds; returns a handle.

        The handle may be passed to :meth:`cancel` *before* the entry fires
        (see the module docstring's handle contract).  The level-0 placement
        (nearly every timer the workloads arm) is inlined here -- this is the
        single hottest entry point of the engine.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        self._sequence = sequence = self._sequence + 1
        free = self._free
        if free:
            record = free.pop()
            record[0] = time
            record[1] = sequence
            record[2] = func
            record[3] = arg
        else:
            record = [time, sequence, func, arg]
        tick = int(time * _INV_RESOLUTION)
        delta = tick - self._tick
        if 0 < delta <= 255:
            index = tick & 255
            self._levels[0][index].append(record)
            self._occupancy[0] |= 1 << index
        elif delta <= 0:
            insort(self._near, record, lo=self._near_pos)
        else:
            self._place_far(record, tick)
        return record

    def schedule_at(self, time: float, func: Callable[[Any], None], arg: Any = None) -> list:
        """Schedule ``func(arg)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past (time={time})")
        self._sequence += 1
        free = self._free
        if free:
            record = free.pop()
            record[0] = time
            record[1] = self._sequence
            record[2] = func
            record[3] = arg
        else:
            record = [time, self._sequence, func, arg]
        self._place(record, time)
        return record

    # The engine-agnostic timer API is the same entry points on this engine.
    schedule_timer = schedule

    def cancel(self, record: Optional[list]) -> Any:
        """Cancel a scheduled entry; returns its ``arg`` (or ``None`` if dead).

        O(1): the record is tombstoned in place (``func = None``) wherever it
        sits -- wheel bucket, near list or overflow heap -- and recycled when
        a harvest, the run loop or a sweep next touches it.  Unlike the heap
        engine's tombstones, a dead wheel record never participates in any
        ordering work again: it is dropped by a C-level filter, not sifted.
        """
        if record is None or record[2] is None:
            return None
        arg = record[3]
        record[2] = None
        record[3] = None
        self._cancelled = dead = self._cancelled + 1
        if dead > 2048 and not (dead & 1023) and dead * 2 > self._resident():
            self._sweep()
        return arg

    cancel_timer = cancel

    def _resident(self) -> int:
        """Total records currently filed anywhere (live + tombstoned)."""
        total = len(self._near) - self._near_pos + len(self._overflow)
        for level in self._levels:
            for bucket in level:
                total += len(bucket)
        return total

    def _sweep(self) -> None:
        """Recycle resident tombstones (the wheel's analog of heap compaction).

        Memory bound, not a correctness requirement: cancelled records are
        otherwise reclaimed only when their slot harvests, which for long
        watchdog-style timers re-armed at a high rate would accumulate without
        bound.  Occupancy bits of emptied slots are deliberately left stale --
        the harvest loop already tolerates them (cursor-monotone guard).
        """
        free = self._free
        for level in self._levels:
            for bucket in level:
                if bucket:
                    live = [r for r in bucket if r[2] is not None]
                    if len(live) != len(bucket):
                        for r in bucket:
                            if r[2] is None:
                                r[3] = None
                                free.append(r)
                        bucket[:] = live
        near = self._near
        position = self._near_pos
        if position < len(near):
            live = [r for r in near[position:] if r[2] is not None]
            if len(live) != len(near) - position:
                for r in near[position:]:
                    if r[2] is None:
                        r[3] = None
                        free.append(r)
                near[position:] = live
        overflow = self._overflow
        if overflow:
            live = [r for r in overflow if r[2] is not None]
            if len(live) != len(overflow):
                for r in overflow:
                    if r[2] is None:
                        r[3] = None
                        free.append(r)
                overflow[:] = live
                heapq.heapify(overflow)
        self._cancelled = 0

    # -- introspection -------------------------------------------------------
    def next_timed_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live record anywhere in the wheel.

        Snapshot-barrier support (not a hot path): scans the pending near
        list, every level bucket and the overflow heap for the minimum live
        ``record[0]``.  The near list is (time, seq)-sorted so its first live
        record is its minimum; buckets are unsorted and scanned in full.
        """
        best: Optional[float] = None
        for record in self._near[self._near_pos :]:
            if record[2] is not None:
                best = record[0]
                break
        for level in self._levels:
            for bucket in level:
                for record in bucket:
                    if record[2] is not None and (best is None or record[0] < best):
                        best = record[0]
        for record in self._overflow:
            if record[2] is not None and (best is None or record[0] < best):
                best = record[0]
        return best

    def live_timer_count(self) -> int:
        """Number of pending (non-tombstoned) records filed anywhere."""
        return self._resident() - self._cancelled

    def iter_timers(self):
        """Yield every live record as ``(time, seq, func, arg)`` (unordered)."""
        for record in self._near[self._near_pos :]:
            if record[2] is not None:
                yield record[0], record[1], record[2], record[3]
        for level in self._levels:
            for bucket in level:
                for record in bucket:
                    if record[2] is not None:
                        yield record[0], record[1], record[2], record[3]
        for record in self._overflow:
            if record[2] is not None:
                yield record[0], record[1], record[2], record[3]

    def advance_idle(self, time: float) -> None:
        """Jump the clock on an idle wheel; the cursor follows the clock.

        Without the cursor jump, every record placed after a restore would
        compute its slot from tick 0 and land in the coarse levels or the
        overflow heap -- correct but slow.  With it, placement deltas are
        relative to the restored instant, exactly as after a normal harvest.
        """
        super().advance_idle(time)
        self._tick = int(time * _INV_RESOLUTION)

    # -- wheel advancement ---------------------------------------------------
    def _next_slot_tick(self, level: int) -> Optional[int]:
        """Absolute tick of this level's next occupied slot, or ``None``."""
        occupancy = self._occupancy[level]
        if not occupancy:
            return None
        shift = _LEVEL_SHIFTS[level]
        mask = _LEVEL_MASKS[level]
        base = self._tick >> shift
        position = base & mask
        ahead = occupancy >> position
        if ahead:
            offset = (ahead & -ahead).bit_length() - 1
            return (base + offset) << shift
        # All occupied slots have wrapped into the next revolution.
        lowest = (occupancy & -occupancy).bit_length() - 1
        return (base - position + mask + 1 + lowest) << shift

    def _harvest_next(self) -> bool:
        """Advance the cursor to the next pending timers, filling ``_near``.

        Returns ``False`` when no timer is pending anywhere.  On return the
        near list holds *every* record due at the earliest pending instant's
        slot (later insorts may still land between them; the run loop reads
        the near list through its index so that stays correct).
        """
        near = self._near
        levels = self._levels
        occupancy = self._occupancy
        overflow = self._overflow
        while True:
            best_tick: Optional[int] = None
            best_level = -1  # -1 = overflow heap
            for level in (3, 2, 1, 0):
                tick = self._next_slot_tick(level)
                if tick is not None and (best_tick is None or tick < best_tick):
                    # Strict `<`: at equal ticks the *coarser* level (iterated
                    # first) wins, so a coarse slot starting at a tick cascades
                    # its entries down before any fine slot at that tick is
                    # harvested.  The fine harvest then merges everything due
                    # at the instant in (time, seq) order.
                    best_tick = tick
                    best_level = level
            while overflow:
                head = overflow[0]
                if head[2] is None:  # tombstoned in the overflow heap
                    heapq.heappop(overflow)
                    self._cancelled -= 1
                    self._free.append(head)
                    continue
                head_tick = int(head[0] * _INV_RESOLUTION)
                if best_tick is None or head_tick <= best_tick:
                    # `<=`: overflow wins ties so its entries insort into the
                    # near list before a same-tick wheel slot is harvested.
                    best_tick = head_tick
                    best_level = -1
                break
            if best_tick is None:
                return self._near_pos < len(near)
            if near and self._near_pos < len(near) and best_tick > self._tick:
                # Pending near entries are all due at/before the cursor; the
                # next wheel slot is strictly later, so the batch is complete.
                return True
            if best_tick > self._tick:
                self._tick = best_tick
            # (best_tick <= cursor only via a stale occupancy bit left by a
            # cancel-emptied slot: the cursor must not regress, and the slot
            # below is guaranteed empty -- live entries always sit strictly
            # ahead of the cursor at their level.)
            if best_level == -1:
                # Drain every overflow record sharing the minimal tick.
                while overflow:
                    head = overflow[0]
                    if head[2] is None:
                        heapq.heappop(overflow)
                        self._cancelled -= 1
                        self._free.append(head)
                        continue
                    if int(head[0] * _INV_RESOLUTION) != best_tick:
                        break
                    insort(near, heapq.heappop(overflow), lo=self._near_pos)
                continue
            shift = _LEVEL_SHIFTS[best_level]
            index = (best_tick >> shift) & _LEVEL_MASKS[best_level]
            bucket = levels[best_level][index]
            occupancy[best_level] &= ~(1 << index)
            if not bucket:
                continue  # stale occupancy bit (slot emptied by cancels)
            levels[best_level][index] = []
            if best_level == 0:
                if near and self._near_pos < len(near):
                    for record in bucket:
                        insort(near, record, lo=self._near_pos)
                else:
                    bucket.sort()
                    near.extend(bucket)
                return True
            # Coarse slot: cascade its live entries down (their delta from the
            # new cursor is strictly inside this level's span); recycle the
            # tombstones instead of cascading them.
            place = self._place
            free = self._free
            for record in bucket:
                if record[2] is not None:
                    place(record, record[0])
                else:
                    self._cancelled -= 1
                    free.append(record)

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or simulated time reaches ``until``."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        ready = self._ready
        near = self._near
        free = self._free
        processed = 0
        exhausted = False
        try:
            while True:
                while ready:
                    func, arg = ready.popleft()
                    processed += 1
                    func(arg)
                position = self._near_pos
                if position >= len(near):
                    if near:
                        near.clear()
                    self._near_pos = 0
                    if not self._harvest_next():
                        exhausted = True
                        break
                    position = self._near_pos
                record = near[position]
                func = record[2]
                if func is None:
                    # Tombstoned after harvest: skip and recycle.
                    self._near_pos = position + 1
                    self._cancelled -= 1
                    free.append(record)
                    continue
                time = record[0]
                if until is not None and time > until:
                    self._now = until
                    break
                self._near_pos = position + 1
                self._now = time
                arg = record[3]
                record[2] = None
                record[3] = None
                free.append(record)
                processed += 1
                func(arg)
            if exhausted and until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self.events_processed += processed
            self._trim_near()
        return self._now

    def run_until(self, event: Event, timeout: float = 1e9) -> bool:
        """Process queued events until ``event`` triggers (or ``timeout``)."""
        if self._running:
            raise SimulationError("simulator is already running")
        deadline = self._now + timeout
        self._running = True
        ready = self._ready
        near = self._near
        free = self._free
        processed = 0
        try:
            while not event._triggered:
                if ready:
                    func, arg = ready.popleft()
                    processed += 1
                    func(arg)
                    continue
                position = self._near_pos
                if position >= len(near):
                    if near:
                        near.clear()
                    self._near_pos = 0
                    if not self._harvest_next():
                        break
                    position = self._near_pos
                record = near[position]
                func = record[2]
                if func is None:
                    self._near_pos = position + 1
                    self._cancelled -= 1
                    free.append(record)
                    continue
                time = record[0]
                if time > deadline:
                    break
                self._near_pos = position + 1
                self._now = time
                arg = record[3]
                record[2] = None
                record[3] = None
                free.append(record)
                processed += 1
                func(arg)
        finally:
            self._running = False
            self.events_processed += processed
            self._trim_near()
        return event._triggered

    def _trim_near(self) -> None:
        """Drop the consumed prefix of the near list between run calls."""
        if self._near_pos:
            del self._near[: self._near_pos]
            self._near_pos = 0

