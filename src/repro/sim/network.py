"""Message transport with latency, loss, and RPC semantics.

Peers in the paper communicate over a LAN with "known bounded delay"
(Section 2.1).  The :class:`Network` models that channel:

* every message experiences a latency drawn from a pluggable
  :class:`LatencyModel` (constant, uniform, or LAN-vs-WAN two-tier);
* messages may be dropped with probability ``drop_probability``;
* a request to a failed (or departed) peer is silently lost, so the caller
  observes an :class:`RpcTimeout` after ``rpc_timeout`` seconds -- this is how
  failure detection costs enter the latency measurements (Figure 23).

The only communication primitive higher layers use is :meth:`Network.call`:
request/response RPC addressed by peer address and handler name.

Scenario specs select the model declaratively: a
:class:`~repro.harness.scenarios.LatencySpec` (model name + flat JSON-able
parameters) resolves through :func:`latency_model_from_params` into
``NetworkConfig.latency_model``, so e.g. the 4-site ``lan_wan`` WAN cells are
registry entries rather than bespoke network wiring.  The network also feeds
the adaptive maintenance subsystem: :meth:`Network.observed_rtt` reports the
mean measured round trip (seeded from the model's nominal latency until real
samples exist), which the RTT-scaled cadence controllers in
:mod:`repro.maintenance.cadence` consult before every maintenance round.

Scalability notes
-----------------
* The RPC expiry timer goes through the engine-agnostic
  ``schedule_timer``/``cancel_timer`` API and is cancelled as soon as the
  reply is delivered.  Under churn-free operation nearly every call completes
  in milliseconds while its timer spans the full ``rpc_timeout``; without
  cancellation those dead timers dominate the event queue of large
  deployments.  On the heap engine a cancel tombstones the entry; on the
  wheel engine it removes and recycles the record outright.
* The per-RPC bookkeeping records -- expiry arguments, delivery/reply
  transfer records, reply continuations and :class:`RpcRequest` objects --
  are recycled through freelists, so steady-state RPC traffic allocates only
  the caller-visible reply :class:`Event`.
* Messages due at exactly the same instant are *batched*: one engine entry
  drains the whole batch.  With a constant-latency model every message sent
  within one action shares a delivery slot, so a replication fan-out to ``k``
  successors costs one queue operation instead of ``k``.
* :meth:`Network.cast` is a fire-and-forget fast path for messages nobody
  waits on (replication refreshes, delete propagation): no reply event, no
  expiry timer, no reply message.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.engine import Event, Simulator

# The RPC failure hierarchy, request record and stats counters are shared by
# every transport; they live in the dependency-free contract module and are
# re-exported here so historical ``repro.sim.network`` imports keep working.
from repro.transport.api import (  # noqa: F401  (re-exported)
    NetworkStats,
    RpcError,
    RpcRemoteError,
    RpcRequest,
    RpcTimeout,
    RpcUnreachable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.transport.endpoint import Endpoint as Node


# --------------------------------------------------------------------------- latency models
class LatencyModel:
    """Per-message latency as a function of the two endpoint addresses."""

    def sample(self, rng, source: str, destination: str) -> float:
        raise NotImplementedError

    def nominal_latency(self) -> float:
        """Expected one-way latency of a typical message (no rng involved).

        Used to seed RTT-aware maintenance cadences before enough real
        messages have been observed to average over.
        """
        raise NotImplementedError

    def validate(self) -> None:
        """Raise ``ValueError`` for physically meaningless settings."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` seconds (fully batchable)."""

    value: float = 0.001

    def sample(self, rng, source: str, destination: str) -> float:
        return self.value

    def nominal_latency(self) -> float:
        return self.value

    def validate(self) -> None:
        if self.value < 0:
            raise ValueError("constant latency must be >= 0")


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` (the paper's LAN model)."""

    low: float = 0.0005
    high: float = 0.003

    def sample(self, rng, source: str, destination: str) -> float:
        if self.high <= self.low:
            return self.low
        return rng.uniform(self.low, self.high)

    def nominal_latency(self) -> float:
        return (self.low + self.high) / 2.0

    def validate(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("latency bounds must satisfy 0 <= low <= high")


@dataclass(frozen=True)
class LanWanLatency(LatencyModel):
    """Two-tier model: peers hash into ``sites``; cross-site messages pay WAN cost.

    Addresses are assigned to sites by a stable CRC hash, so the site layout is
    a pure function of the deployment's addresses (reproducible across runs and
    processes).
    """

    sites: int = 4
    lan: UniformLatency = UniformLatency(0.0005, 0.003)
    wan: UniformLatency = UniformLatency(0.02, 0.08)

    def site_of(self, address: str) -> int:
        return zlib.crc32(address.encode("utf-8")) % self.sites

    def sample(self, rng, source: str, destination: str) -> float:
        if self.site_of(source) == self.site_of(destination):
            return self.lan.sample(rng, source, destination)
        return self.wan.sample(rng, source, destination)

    def nominal_latency(self) -> float:
        # Expected latency for uniformly random endpoint pairs: a message
        # crosses sites with probability (sites - 1) / sites.
        if self.sites <= 1:
            return self.lan.nominal_latency()
        cross = (self.sites - 1) / self.sites
        return cross * self.wan.nominal_latency() + (1 - cross) * self.lan.nominal_latency()

    def validate(self) -> None:
        if self.sites < 1:
            raise ValueError("LanWanLatency needs at least one site")
        self.lan.validate()
        self.wan.validate()


LATENCY_MODELS = {
    "constant": ConstantLatency,
    "uniform": UniformLatency,
    "lan_wan": LanWanLatency,
}


def latency_model_from_params(name: str, **params) -> LatencyModel:
    """Instantiate a registered latency model from flat keyword parameters.

    Scenario specs describe the network as JSON-able mappings, so the nested
    :class:`UniformLatency` objects of ``lan_wan`` cannot appear there
    directly; this factory accepts the flattened ``lan_low`` / ``lan_high`` /
    ``wan_low`` / ``wan_high`` bounds instead.  The returned model is
    validated.
    """
    if name not in LATENCY_MODELS:
        raise ValueError(
            f"unknown latency model {name!r}; known: {', '.join(sorted(LATENCY_MODELS))}"
        )
    if name == "lan_wan":
        defaults = LanWanLatency()
        model: LatencyModel = LanWanLatency(
            sites=params.pop("sites", defaults.sites),
            lan=UniformLatency(
                params.pop("lan_low", defaults.lan.low),
                params.pop("lan_high", defaults.lan.high),
            ),
            wan=UniformLatency(
                params.pop("wan_low", defaults.wan.low),
                params.pop("wan_high", defaults.wan.high),
            ),
        )
        if params:
            raise ValueError(f"unknown lan_wan parameters: {', '.join(sorted(params))}")
    else:
        model = LATENCY_MODELS[name](**params)
    model.validate()
    return model


@dataclass
class NetworkConfig:
    """Tunable parameters of the message channel.

    The defaults approximate the paper's LAN cluster: sub-millisecond to a few
    milliseconds per message, no loss.  ``latency_model`` overrides the
    ``latency_min``/``latency_max`` pair; the legacy fields are kept so every
    existing experiment config keeps meaning what it meant.
    """

    latency_min: float = 0.0005
    latency_max: float = 0.003
    drop_probability: float = 0.0
    rpc_timeout: float = 0.5
    latency_model: Optional[LatencyModel] = None

    def resolved_latency_model(self) -> LatencyModel:
        """The effective model: explicit one, or uniform over the legacy bounds."""
        if self.latency_model is not None:
            return self.latency_model
        if self.latency_max <= self.latency_min:
            return ConstantLatency(self.latency_min)
        return UniformLatency(self.latency_min, self.latency_max)

    def validate(self) -> None:
        """Raise ``ValueError`` for physically meaningless settings."""
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ValueError("latency bounds must satisfy 0 <= min <= max")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.latency_model is not None:
            self.latency_model.validate()


class _ReplyHandle:
    """The reply continuation handed to :meth:`Node._handle_rpc`.

    Replaces the per-RPC closure the network used to allocate; instances are
    recycled through ``Network._reply_free`` after their single invocation.
    A handle abandoned without being called (its node died mid-handler) is
    simply dropped to the garbage collector.
    """

    __slots__ = ("net", "request", "result", "timer")

    def __init__(self, net: "Network"):
        self.net = net
        self.request: Optional[RpcRequest] = None
        self.result: Optional[Event] = None
        self.timer: Optional[list] = None

    def __call__(self, value: Any, error: Optional[BaseException]) -> None:
        net = self.net
        request, result, timer = self.request, self.result, self.timer
        self.request = self.result = self.timer = None
        net._reply_free.append(self)
        net._transmit_reply(request, result, timer, value, error)


# Metric series fed to an attached collector under a LanWanLatency model.
INTRA_SITE_LATENCY_METRIC = "net_latency_intra_site"
CROSS_SITE_LATENCY_METRIC = "net_latency_cross_site"


class Network:
    """Connects :class:`~repro.sim.node.Node` instances by address.

    ``metrics`` is an optional collector (anything with a
    ``record(name, value)`` method, e.g. :class:`repro.harness.metrics.Metrics`).
    When the resolved latency model is site-aware (:class:`LanWanLatency`),
    every message's sampled latency is recorded into the intra-site or
    cross-site series so WAN experiments can report latency histograms, and
    ``stats.per_site_rpcs`` counts RPCs by originating site.  Other models pay
    no per-message overhead.
    """

    def __init__(
        self,
        sim: Simulator,
        rng,
        config: Optional[NetworkConfig] = None,
        metrics=None,
    ):
        self.sim = sim
        self.rng = rng
        self.metrics = metrics
        self.config = config or NetworkConfig()
        self.config.validate()
        self.reconfigure()
        self.stats = NetworkStats()
        self._nodes: Dict[str, "Node"] = {}
        self._next_request_id = 0
        # Pending same-instant delivery batches, keyed on absolute delivery time.
        self._batches: Dict[float, List[Tuple[Callable[[Any], None], Any]]] = {}
        # Engine-agnostic timer API, bound once: it sits on the per-RPC path.
        self._schedule_timer = sim.schedule_timer
        self._cancel_timer = sim.cancel_timer
        # Freelists recycling the per-RPC bookkeeping records, so steady-state
        # traffic allocates only the caller-visible reply Event.
        self._expiry_free: List[list] = []  # [result, method, destination]
        self._transfer_free: List[list] = []  # 4-slot delivery/reply records
        self._reply_free: List[_ReplyHandle] = []
        self._request_free: List[RpcRequest] = []
        # Optional RPC observer: anything with ``rpc_issued(source,
        # destination, method)`` / ``rpc_completed(destination)``.  Every
        # ``call`` issues exactly one completion -- on reply delivery or on
        # expiry, whichever settles the caller's event -- so an observer can
        # maintain per-destination in-flight counts (the serve layer's
        # :class:`~repro.serve.tracker.InFlightTracker` does).  Casts are not
        # observed: they have no completion signal.
        self.observer = None

    # -- membership --------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Attach ``node`` so other peers can address it."""
        self._nodes[node.address] = node

    def unregister(self, address: str) -> None:
        """Detach the node at ``address`` (it becomes unreachable)."""
        self._nodes.pop(address, None)

    def node(self, address: str) -> Optional["Node"]:
        """Return the node registered at ``address``, if any."""
        return self._nodes.get(address)

    def known_addresses(self) -> list[str]:
        """Addresses of all registered nodes (dead or alive)."""
        return list(self._nodes)

    # -- latency model -----------------------------------------------------
    def reconfigure(self) -> None:
        """Re-resolve the latency model after mutating ``config`` mid-run.

        ``drop_probability`` and ``rpc_timeout`` are read live on every call;
        the latency model (and its constant-value fast path) is resolved here
        once, so experiments that switch latency regimes mid-run must call
        this after changing the latency fields.
        """
        self.latency_model = self.config.resolved_latency_model()
        # Fast path: a constant model needs no rng and no per-message dispatch.
        self._fixed_latency: Optional[float] = (
            self.latency_model.value
            if isinstance(self.latency_model, ConstantLatency)
            else None
        )
        # Site-aware instrumentation only exists under a two-tier model.
        self._site_of: Optional[Callable[[str], int]] = (
            self.latency_model.site_of
            if isinstance(self.latency_model, LanWanLatency)
            else None
        )

    def _latency(self, source: str, destination: str) -> float:
        fixed = self._fixed_latency
        if fixed is not None:
            return fixed
        latency = self.latency_model.sample(self.rng, source, destination)
        stats = self.stats
        stats.latency_sum += latency
        stats.latency_samples += 1
        site_of = self._site_of
        if site_of is not None and self.metrics is not None:
            self.metrics.record(
                INTRA_SITE_LATENCY_METRIC
                if site_of(source) == site_of(destination)
                else CROSS_SITE_LATENCY_METRIC,
                latency,
            )
        return latency

    # Minimum sampled messages before the observed mean outweighs the model's
    # nominal latency in :meth:`observed_rtt`.
    _RTT_WARMUP_SAMPLES = 32

    def observed_rtt(self) -> float:
        """Mean observed round trip (2x the mean one-way latency).

        Until enough messages have been sampled the model's nominal latency is
        reported instead, so RTT-seeded maintenance cadences are sensible from
        the first round of a deployment's life.
        """
        stats = self.stats
        if stats.latency_samples >= self._RTT_WARMUP_SAMPLES:
            return 2.0 * stats.latency_sum / stats.latency_samples
        return 2.0 * self.latency_model.nominal_latency()

    def _dropped(self) -> bool:
        prob = self.config.drop_probability
        return prob > 0 and self.rng.random() < prob

    # -- batched delivery ---------------------------------------------------
    def _schedule_delivery(self, delay: float, func: Callable[[Any], None], arg: Any) -> None:
        """Deliver ``func(arg)`` after ``delay``; same-instant messages share one heap entry."""
        time = self.sim.now + delay
        batch = self._batches.get(time)
        if batch is None:
            self._batches[time] = batch = []
            self.sim.schedule_at(time, self._run_batch, time)
            self.stats.delivery_batches += 1
        batch.append((func, arg))

    def _run_batch(self, time: float) -> None:
        for func, arg in self._batches.pop(time):
            func(arg)

    # -- RPC ----------------------------------------------------------------
    def call(
        self,
        source: str,
        destination: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Issue an RPC and return the event carrying the reply.

        The event succeeds with the handler's return value, or fails with an
        :class:`RpcError` subclass.  Callers are simulated processes and simply
        ``yield`` the returned event.
        """
        timeout = self.config.rpc_timeout if timeout is None else timeout
        result = self.sim.event()
        self.stats.record_call(method)
        site_of = self._site_of
        if site_of is not None:
            key = f"site{site_of(source)}"
            per_site = self.stats.per_site_rpcs
            per_site[key] = per_site.get(key, 0) + 1
        self._next_request_id += 1
        free = self._expiry_free
        if free:
            pending = free.pop()
            pending[0] = result
            pending[1] = method
            pending[2] = destination
        else:
            pending = [result, method, destination]
        timer = self._schedule_timer(timeout, self._expire, pending)
        if self.observer is not None:
            self.observer.rpc_issued(source, destination, method)
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
        else:
            request = self._make_request(source, destination, method, payload)
            transfer = self._make_transfer(request, result, timer, None)
            self._schedule_delivery(
                self._latency(source, destination), self._deliver_request, transfer
            )
        return result

    def cast(self, source: str, destination: str, method: str, payload: Any = None) -> None:
        """Send a one-way message: no reply event, no expiry timer, no reply.

        The fire-and-forget fast path for traffic nobody waits on (replication
        refresh fan-outs, delete propagation).  The message still pays latency
        and loss like any other, still counts in the per-method call stats,
        and a dead destination swallows it silently -- exactly what a caller
        that discards the reply event of :meth:`call` observed, minus the
        event, timer and reply-message overhead.
        """
        self.stats.record_call(method)
        site_of = self._site_of
        if site_of is not None:
            key = f"site{site_of(source)}"
            per_site = self.stats.per_site_rpcs
            per_site[key] = per_site.get(key, 0) + 1
        self._next_request_id += 1
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
            return
        request = self._make_request(source, destination, method, payload)
        transfer = self._make_transfer(request, None, None, None)
        self._schedule_delivery(
            self._latency(source, destination), self._deliver_cast, transfer
        )

    # -- internals ----------------------------------------------------------
    def _make_request(
        self, source: str, destination: str, method: str, payload: Any
    ) -> RpcRequest:
        free = self._request_free
        if free:
            request = free.pop()
            request.source = source
            request.destination = destination
            request.method = method
            request.payload = payload
            request.request_id = self._next_request_id
            return request
        return RpcRequest(source, destination, method, payload, self._next_request_id)

    def _recycle_request(self, request: RpcRequest) -> None:
        request.payload = None
        self._request_free.append(request)

    def _make_transfer(self, a: Any, b: Any, c: Any, d: Any) -> list:
        free = self._transfer_free
        if free:
            transfer = free.pop()
            transfer[0] = a
            transfer[1] = b
            transfer[2] = c
            transfer[3] = d
            return transfer
        return [a, b, c, d]

    def _expire(self, pending: list) -> None:
        result, method, destination = pending
        pending[0] = None
        pending[2] = None
        self._expiry_free.append(pending)
        if not result.triggered:
            if self.observer is not None:
                self.observer.rpc_completed(destination)
            self.stats.rpc_timeouts += 1
            result.fail(RpcTimeout(f"{method} -> {destination} timed out"))

    def _deliver_request(self, transfer: list) -> None:
        request, result, timer = transfer[0], transfer[1], transfer[2]
        transfer[0] = transfer[1] = transfer[2] = None
        self._transfer_free.append(transfer)
        node = self._nodes.get(request.destination)
        if node is None or not node.alive:
            # A dead or missing peer never answers; the caller times out.
            self._recycle_request(request)
            return
        free = self._reply_free
        reply = free.pop() if free else _ReplyHandle(self)
        reply.request = request
        reply.result = result
        reply.timer = timer
        node._handle_rpc(request, reply)

    def _deliver_cast(self, transfer: list) -> None:
        request = transfer[0]
        transfer[0] = None
        self._transfer_free.append(transfer)
        node = self._nodes.get(request.destination)
        if node is None or not node.alive:
            self._recycle_request(request)
            return
        if node._handle_cast(request):
            # Handled synchronously: nothing can still reference the record.
            self._recycle_request(request)

    def _transmit_reply(
        self,
        request: RpcRequest,
        result: Event,
        timer: list,
        value: Any,
        error: Optional[BaseException],
    ) -> None:
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
            self._recycle_request(request)
            return
        latency = self._latency(request.destination, request.source)
        self._recycle_request(request)
        self._schedule_delivery(
            latency, self._deliver_reply, self._make_transfer(result, timer, value, error)
        )

    def _deliver_reply(self, transfer: list) -> None:
        result, timer, value, error = transfer
        transfer[0] = transfer[1] = transfer[2] = transfer[3] = None
        self._transfer_free.append(transfer)
        if result.triggered:
            # The expiry timer won the race; it already fired (and the engine
            # may have recycled its record), so the handle must not be
            # cancelled -- see the engine contract.
            return
        # The reply made it first: reclaim the timer and its expiry record.
        pending = self._cancel_timer(timer)
        if pending is not None:
            if self.observer is not None:
                self.observer.rpc_completed(pending[2])
            pending[0] = None
            pending[2] = None
            self._expiry_free.append(pending)
        if error is None:
            result.succeed(value)
        else:
            result.fail(error)
