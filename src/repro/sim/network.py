"""Message transport with latency, loss, and RPC semantics.

Peers in the paper communicate over a LAN with "known bounded delay"
(Section 2.1).  The :class:`Network` models that channel:

* every message experiences a latency drawn uniformly from
  ``[latency_min, latency_max]`` seconds;
* messages may be dropped with probability ``drop_probability``;
* a request to a failed (or departed) peer is silently lost, so the caller
  observes an :class:`RpcTimeout` after ``rpc_timeout`` seconds -- this is how
  failure detection costs enter the latency measurements (Figure 23).

The only communication primitive higher layers use is :meth:`Network.call`:
request/response RPC addressed by peer address and handler name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.node import Node


class RpcError(Exception):
    """Base class for RPC failures observed by callers."""


class RpcTimeout(RpcError):
    """The callee did not answer within the RPC timeout.

    Seen when the callee has failed, left the system, or the request/reply was
    dropped by the network.
    """


class RpcUnreachable(RpcError):
    """The destination address was never registered with the network."""


class RpcRemoteError(RpcError):
    """The remote handler raised an exception; its repr is carried along."""


@dataclass
class NetworkConfig:
    """Tunable parameters of the message channel.

    The defaults approximate the paper's LAN cluster: sub-millisecond to a few
    milliseconds per message, no loss.
    """

    latency_min: float = 0.0005
    latency_max: float = 0.003
    drop_probability: float = 0.0
    rpc_timeout: float = 0.5

    def validate(self) -> None:
        """Raise ``ValueError`` for physically meaningless settings."""
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise ValueError("latency bounds must satisfy 0 <= min <= max")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")


@dataclass
class RpcRequest:
    """A request in flight.  Exposed to handlers for tracing/diagnostics."""

    source: str
    destination: str
    method: str
    payload: Any
    request_id: int


@dataclass
class NetworkStats:
    """Counters used by the experiment harness."""

    messages_sent: int = 0
    messages_dropped: int = 0
    rpc_calls: int = 0
    rpc_timeouts: int = 0
    per_method: Dict[str, int] = field(default_factory=dict)

    def record_call(self, method: str) -> None:
        self.rpc_calls += 1
        self.per_method[method] = self.per_method.get(method, 0) + 1


class Network:
    """Connects :class:`~repro.sim.node.Node` instances by address."""

    def __init__(self, sim: Simulator, rng, config: Optional[NetworkConfig] = None):
        self.sim = sim
        self.rng = rng
        self.config = config or NetworkConfig()
        self.config.validate()
        self.stats = NetworkStats()
        self._nodes: Dict[str, "Node"] = {}
        self._next_request_id = 0

    # -- membership --------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Attach ``node`` so other peers can address it."""
        self._nodes[node.address] = node

    def unregister(self, address: str) -> None:
        """Detach the node at ``address`` (it becomes unreachable)."""
        self._nodes.pop(address, None)

    def node(self, address: str) -> Optional["Node"]:
        """Return the node registered at ``address``, if any."""
        return self._nodes.get(address)

    def known_addresses(self) -> list[str]:
        """Addresses of all registered nodes (dead or alive)."""
        return list(self._nodes)

    # -- latency model -----------------------------------------------------
    def _latency(self) -> float:
        low, high = self.config.latency_min, self.config.latency_max
        if high <= low:
            return low
        return self.rng.uniform(low, high)

    def _dropped(self) -> bool:
        prob = self.config.drop_probability
        return prob > 0 and self.rng.random() < prob

    # -- RPC ----------------------------------------------------------------
    def call(
        self,
        source: str,
        destination: str,
        method: str,
        payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Event:
        """Issue an RPC and return the event carrying the reply.

        The event succeeds with the handler's return value, or fails with an
        :class:`RpcError` subclass.  Callers are simulated processes and simply
        ``yield`` the returned event.
        """
        timeout = self.config.rpc_timeout if timeout is None else timeout
        result = self.sim.event()
        self.stats.record_call(method)
        self._next_request_id += 1
        request = RpcRequest(
            source=source,
            destination=destination,
            method=method,
            payload=payload,
            request_id=self._next_request_id,
        )

        def _expire() -> None:
            if not result.triggered:
                self.stats.rpc_timeouts += 1
                result.fail(RpcTimeout(f"{method} -> {destination} timed out"))

        self.sim._schedule(timeout, _expire)
        self._transmit_request(request, result)
        return result

    # -- internals ----------------------------------------------------------
    def _transmit_request(self, request: RpcRequest, result: Event) -> None:
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
            return
        self.sim._schedule(self._latency(), lambda: self._deliver_request(request, result))

    def _deliver_request(self, request: RpcRequest, result: Event) -> None:
        node = self._nodes.get(request.destination)
        if node is None or not node.alive:
            # A dead or missing peer never answers; the caller times out.
            return
        node._handle_rpc(request, lambda value, error: self._transmit_reply(result, value, error))

    def _transmit_reply(self, result: Event, value: Any, error: Optional[BaseException]) -> None:
        self.stats.messages_sent += 1
        if self._dropped():
            self.stats.messages_dropped += 1
            return

        def _deliver() -> None:
            if result.triggered:
                return
            if error is None:
                result.succeed(value)
            else:
                result.fail(error)

        self.sim._schedule(self._latency(), _deliver)
