"""Hierarchical (P-Ring style) content router.

The P-Ring Content Router indexes the ring itself with a hierarchy of rings so
that the peer responsible for any search key value is reached in a logarithmic
number of hops even under skewed key distributions.  We implement the same
capability with the classic pointer-doubling construction: every peer maintains
a table whose level-``i`` pointer is (approximately) ``2**i`` ring positions
away, refreshed periodically by asking the level-``i-1`` peer for *its*
level-``i-1`` pointer.  Routing repeatedly jumps to the farthest table entry
that does not overshoot the target key, falling back to plain successor hops
whenever a pointer is stale or its peer has failed.

The construction differs from the paper's hierarchy-of-rings in mechanism but
matches it in the property the rest of the system relies on: O(log N) routing
over an order-preserving, skew-tolerant key assignment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.index.config import IndexConfig
from repro.ring.chord import RingListener
from repro.router.linear import LinearRouter
from repro.transport import RpcError


class _RefreshTightener(RingListener):
    """Feed ring neighbourhood changes back into the refresh cadence.

    A changed successor or predecessor means membership moved right next to
    this peer -- exactly when a backed-off routing table is most likely to be
    stale -- so the refresh controller is reset to its base period.
    """

    def __init__(self, cadence):
        self.cadence = cadence

    def on_successor_changed(self, ring, new_address: str) -> None:
        self.cadence.note_change()

    def on_predecessor_changed(self, ring, old_address, old_value, new_address, new_value) -> None:
        self.cadence.note_change()

    def on_predecessor_failed(self, ring, old_address, old_value) -> None:
        self.cadence.note_failure()


class HierarchicalRingRouter(LinearRouter):
    """Logarithmic-hop router built by pointer doubling."""

    def __init__(self, node, ring, store, config: IndexConfig, metrics=None, history=None):
        super().__init__(node, ring, store, config, metrics=metrics, history=history)
        # table[i] = (address, value) of the peer ~2**i positions clockwise.
        self.table: List[Tuple[str, float]] = []
        # Refresh cadence (``config.maintenance``; fixed by default).  Under
        # the adaptive policy the loop backs off while consecutive refreshes
        # validate clean -- same pointers, no RPC errors -- and tightens the
        # moment the table changes or the ring reports a neighbourhood change.
        self._cadence = config.maintenance_policy.router_controller(
            config.router_refresh_period
        )
        ring.add_listener(_RefreshTightener(self._cadence))
        node.register_handler("route_table_entry", self._handle_table_entry)
        node.every(
            self._cadence.interval,
            self._refresh_table,
            jitter=config.stabilization_jitter,
            name="router-refresh",
            initial_delay=config.router_refresh_period,
        )

    # ------------------------------------------------------------------ table maintenance
    def _handle_table_entry(self, payload, request):
        """RPC: return a slice of our routing table starting at ``level``.

        ``span`` entries are returned per request (pointer doubling used to ask
        for one level per round trip; batching the reply halves the refresh
        traffic, the dominant RPC at 1000+ peers).  Past the end of our table
        the reply falls back to our first live successor, as before.
        """
        level = payload.get("level", 0)
        span = max(1, payload.get("span", 1))
        entries = [
            {"address": address, "value": value}
            for address, value in self.table[level : level + span]
        ]
        if not entries:
            successor = self.ring.first_live_successor()
            if successor is not None:
                entries.append({"address": successor, "value": None})
        return {"entries": entries}

    def _refresh_table(self):
        """Rebuild the pointer table by (batched) doubling along the ring.

        Each contacted peer returns two consecutive table entries, so the
        pointer spread stays geometric (ratios alternate ~2x and ~1.5x) at half
        the round trips.  The walk also stops as soon as a pointer's clockwise
        distance stops growing -- the doubling has wrapped around the ring, and
        levels beyond that add traffic without shortening any route.

        The refresh outcome feeds the cadence controller: a walk that
        completes without hitting a dead pointer validated clean (the loop may
        back off).  Exact pointer equality is deliberately *not* required --
        far pointers drift between rounds because every peer rebuilds its
        table asynchronously from everyone else's, and that drift is benign
        (the pointer spread stays geometric over live peers).  Staleness
        proper is what tightens the cadence: a failed refresh hop here, a
        failed table jump during routing, or a ring neighbourhood change via
        :class:`_RefreshTightener`.
        """
        if not self.ring.is_joined:
            return
        successor = self.ring.first_live_successor()
        if successor is None:
            self.table = []
            return
        new_table: List[Tuple[str, float]] = []
        seen = {self.node.address}
        current = successor
        current_value = None
        for entry in self.ring.succ_list:
            if entry.address == successor:
                current_value = entry.value
                break
        own_value = self.ring.value
        last_distance = -1.0
        rpc_failed = False
        while len(new_table) < self.config.router_table_size:
            if current is None or current in seen:
                break
            if current_value is not None:
                distance = self._clockwise(own_value, current_value)
                if distance <= last_distance:
                    break  # wrapped past our own position
                last_distance = distance
            seen.add(current)
            new_table.append((current, current_value))
            if len(new_table) >= self.config.router_table_size:
                break
            try:
                response = yield self.node.call(
                    current, "route_table_entry", {"level": len(new_table) - 1, "span": 2}
                )
            except RpcError:
                rpc_failed = True
                break
            entries = response.get("entries") or []
            for entry in entries[:-1]:
                address, value = entry.get("address"), entry.get("value")
                if (
                    address is None
                    or address in seen
                    or len(new_table) >= self.config.router_table_size
                ):
                    break
                if value is not None:
                    distance = self._clockwise(own_value, value)
                    if distance <= last_distance:
                        break
                    last_distance = distance
                seen.add(address)
                new_table.append((address, value))
            tail = entries[-1] if entries else None
            current = tail.get("address") if tail else None
            current_value = tail.get("value") if tail else None
        self.table = new_table
        if rpc_failed:
            self._cadence.note_failure()
        else:
            self._cadence.note_success()

    # ------------------------------------------------------------------ routing
    def find_responsible(self, key: float, max_hops: int = 512):
        """Generator: route to the responsible peer using the pointer table.

        Jumps to the farthest known pointer that does not overshoot the key,
        then continues from that peer's perspective (iterative routing); falls
        back to successor-by-successor walking when the table is empty or
        stale.
        """
        if self._local_owner(key):
            self._record_route(key, 0, self.node.address)
            return self.node.address

        hops = 0
        current = self._best_jump(key) or self.ring.first_live_successor()
        visited = set()
        while current is not None and hops < max_hops:
            hops += 1
            try:
                probe = yield self.node.call(current, "ds_probe", {"key": key})
            except RpcError:
                # A dead hop is first-hand staleness evidence: revalidate the
                # table at the base cadence until the walk runs clean again.
                self._cadence.note_failure()
                current = self.ring.first_live_successor()
                continue
            if probe.get("owns"):
                self._record_route(key, hops, current)
                return current
            if current in visited:
                # We are looping (stale ranges); fall back to a linear walk.
                break
            visited.add(current)
            current = probe.get("successor")
        # Fallback: plain successor walk from our own position.
        result = yield from super().find_responsible(key, max_hops=max_hops)
        return result

    def _best_jump(self, key: float) -> Optional[str]:
        """The farthest table pointer that does not pass the target key."""
        own_value = self.ring.value
        best: Optional[str] = None
        best_distance = -1.0
        for address, value in self.table:
            if value is None or address == self.node.address:
                continue
            distance = self._clockwise(own_value, value)
            target_distance = self._clockwise(own_value, key)
            if distance <= target_distance and distance > best_distance:
                best = address
                best_distance = distance
        return best

    def _clockwise(self, start: float, end: float) -> float:
        """Clockwise distance from ``start`` to ``end`` on the key space."""
        if end >= start:
            return end - start
        return self.config.key_space - start + end
