"""Content Router implementations.

The Content Router's job (Section 2.2) is to deliver a message to the peer
responsible for a given search key value -- here, to find the peer at which a
range scan must start or an item must be stored.  The paper's P-Ring Content
Router builds a hierarchy of rings; its details are explicitly out of scope
("not relevant here"), so this package provides two faithful-in-spirit
implementations:

* :class:`~repro.router.linear.LinearRouter` -- follow successors, O(N) hops.
* :class:`~repro.router.hierarchical.HierarchicalRingRouter` -- each peer keeps
  a table of exponentially spaced pointers built by pointer doubling and routes
  in O(log N) hops.

Layer contract: builds on :mod:`repro.sim`, :mod:`repro.ring` and
:mod:`repro.datastore` (range ownership checks).  Neighbors select an
implementation through :func:`make_router` (driven by ``config.router``)
rather than instantiating router classes directly.
"""

from repro.router.linear import LinearRouter
from repro.router.hierarchical import HierarchicalRingRouter


def make_router(node, ring, store, config, metrics=None, history=None):
    """Instantiate the router selected by ``config.router``."""
    if config.router == "linear":
        return LinearRouter(node, ring, store, config, metrics=metrics, history=history)
    return HierarchicalRingRouter(node, ring, store, config, metrics=metrics, history=history)


__all__ = ["HierarchicalRingRouter", "LinearRouter", "make_router"]
