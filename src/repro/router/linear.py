"""Linear (successor-walking) content router.

The baseline router: probe peers one ring hop at a time until the peer whose
Data Store range contains the key is found.  O(N) messages, but simple and
robust; it is also the fallback path of the hierarchical router.
"""

from __future__ import annotations

from typing import Optional

from repro.index.config import IndexConfig
from repro.transport import RpcError


class LinearRouter:
    """Find the peer responsible for a key by walking the ring."""

    def __init__(self, node, ring, store, config: IndexConfig, metrics=None, history=None):
        self.node = node
        self.ring = ring
        self.store = store
        self.config = config
        self.metrics = metrics
        self.history = history

    # ------------------------------------------------------------------ helpers
    def _record_route(self, key: float, hops: int, found: Optional[str]) -> None:
        if self.history is not None:
            self.history.record(
                "route", peer=self.node.address, key=key, hops=hops, found=found
            )
        if self.metrics is not None:
            self.metrics.record("route_hops", hops)

    def _local_owner(self, key: float) -> bool:
        return self.store.owns_key(key)

    # ------------------------------------------------------------------ routing
    def find_responsible(self, key: float, max_hops: int = 512):
        """Generator: the address of the peer responsible for ``key``, or ``None``."""
        if self._local_owner(key):
            self._record_route(key, 0, self.node.address)
            return self.node.address
        current = self.ring.first_live_successor()
        if current is None:
            self._record_route(key, 0, None)
            return None
        hops = 0
        visited = set()
        while current is not None and hops < max_hops:
            hops += 1
            if current in visited:
                break
            visited.add(current)
            try:
                probe = yield self.node.call(current, "ds_probe", {"key": key})
            except RpcError:
                # The peer died mid-route; restart from our own successor.
                current = self.ring.first_live_successor()
                visited.clear()
                continue
            if probe.get("owns"):
                self._record_route(key, hops, current)
                return current
            next_hop = probe.get("successor")
            if next_hop is None or next_hop == current:
                break
            current = next_hop
        self._record_route(key, hops, None)
        return None
