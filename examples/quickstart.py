"""Quickstart: build a small P-Ring deployment, insert items, run range queries.

Run with::

    python examples/quickstart.py
"""

from repro import (
    PRingIndex,
    check_consistent_successor_pointers,
    check_ring_connectivity,
    default_config,
)


def main() -> None:
    # A deployment with the paper's default parameters (successor lists of
    # length 4, stabilization every 4 s, storage factor 5, replication 6) and
    # all of the paper's correctness/availability protocols enabled.
    config = default_config(seed=7)
    index = PRingIndex(config)

    # The first peer owns the whole key space; further peers arrive as *free*
    # peers and are pulled into the ring by Data Store splits as items arrive.
    index.bootstrap()
    for _ in range(10):
        index.add_peer()

    print("Inserting items...")
    keys = [float(k) for k in range(100, 1000, 10)]
    for key in keys:
        index.insert_item_now(key, payload=f"object-{key:.0f}")
        index.run(0.3)  # paper's insert rate: a couple of items per second

    # Let stabilization, replication and routing tables settle.
    index.run(30.0)

    print(f"Ring members: {len(index.ring_members())}, free peers: {len(index.free_peers())}")
    for peer in index.ring_members():
        print(f"  {peer.address}: range {peer.store.range}, {peer.store.item_count()} items")

    # Range query (lb, ub]: all objects with keys in (300, 600].
    result = index.range_query_now(300.0, 600.0)
    print(f"\nQuery (300, 600] -> {len(result['keys'])} items over {result['hops']} ring hops")
    print("First five results:", [item.payload for item in result["items"][:5]])

    # The correctness checkers from the paper's definitions.
    print("\nConsistent successor pointers:", check_consistent_successor_pointers(index.live_peers()).ok)
    print("Ring connectivity:", check_ring_connectivity(index.live_peers()).ok)


if __name__ == "__main__":
    main()
