"""Quickstart: define a scenario, run it through the registry, inspect the ring.

This is the registry-first workflow described in ``docs/SCENARIOS.md``: a
deployment is a declarative :class:`ScenarioSpec`, one shared driver executes
it, and the same spec can also be *materialised* for peer-level inspection.

Run with::

    python examples/quickstart.py
"""

from repro import check_consistent_successor_pointers, check_ring_connectivity
from repro.harness.scenarios import (
    QueryMixSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_experiment,
    register,
    run_spec,
)

# A small deployment with the paper's default parameters (successor lists of
# length 4, stabilization every 4 s, storage factor 5, replication 6) and all
# of the paper's correctness/availability protocols enabled.
SPEC = register(
    ScenarioSpec(
        name="quickstart",
        description="11 peers, 90 uniform items, 3 range queries",
        peers=11,
        join_period=1.0,
        settle_time=30.0,
        seed=7,
        workload=WorkloadSpec(items=90, insert_rate=3.0),
        queries=QueryMixSpec(count=3, selectivity=0.03),
    )
)


def main() -> None:
    # One call runs the whole cell: build phase (arrivals + item stream),
    # settle, query mix -- and returns the measurements as a ScenarioResult.
    print("Running the 'quickstart' scenario through the registry...")
    result = run_spec(SPEC, seed=7)
    print(
        f"  ring={result.ring_members} members, items={result.items_stored}/"
        f"{result.items_requested}, queries={result.queries_complete}/{result.queries_run} "
        f"complete ({result.query_mean_hops:.1f} mean hops)"
    )
    print(f"  {result.rpc_calls} RPCs in {result.sim_time_s:.0f} simulated seconds;")
    print(f"  per-method profile: {dict(sorted(result.rpc_per_method.items()))}")

    # The same spec can be materialised when you want to poke at the peers
    # directly instead of (or in addition to) the packaged phases.
    print("\nMaterialising the same spec for inspection...")
    experiment = build_experiment(SPEC, seed=7)
    index = experiment.index
    experiment.build()

    print(f"Ring members: {len(index.ring_members())}, free peers: {len(index.free_peers())}")
    for peer in index.ring_members():
        print(f"  {peer.address}: range {peer.store.range}, {peer.store.item_count()} items")

    # Range query (lb, ub]: all objects with keys in (300, 600].
    outcome = experiment.run_query(300.0, 600.0)
    print(f"\nQuery (300, 600] -> {len(outcome.keys)} items over {outcome.hops} ring hops")

    # The correctness checkers from the paper's definitions.
    print("Consistent successor pointers:", check_consistent_successor_pointers(index.live_peers()).ok)
    print("Ring connectivity:", check_ring_connectivity(index.live_peers()).ok)


if __name__ == "__main__":
    main()
