"""Side-by-side demonstration of the paper's correctness and availability claims.

Runs the same churny workload twice -- once with every naive baseline protocol
(Section 6.2) and once with the paper's PEPPER protocols -- and reports, for
each run:

* violations of consistent successor pointers (Definition 5) sampled during
  peer insertions;
* range queries that missed live items (Definition 4);
* items lost after merges followed by a failure (Definition 7).

Run with::

    python examples/correctness_demo.py
"""

from repro import (
    PRingIndex,
    check_consistent_successor_pointers,
    check_query_result,
    count_lost_items,
    default_config,
)
from repro.core.correctness import ItemTimeline


def run_scenario(label: str, naive: bool) -> None:
    config = default_config(seed=77, replication_factor=1)
    if naive:
        config = config.with_naive_protocols()
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(11):
        index.add_peer()

    keys = [float(k) for k in range(100, 1000, 12)]
    pointer_violations = 0
    samples = 0
    for key in keys:
        index.insert_item_now(key)
        index.run(0.25)
        # Sample Definition 5 while the system reorganises (splits -> inserts).
        samples += 1
        if not check_consistent_successor_pointers(index.live_peers()).ok:
            pointer_violations += 1
    index.run(25.0)

    # Queries racing with deletions/re-insertions (splits, merges, redistributions).
    rng = index.rngs.stream("demo-churn")

    def churn():
        while True:
            yield index.sim.timeout(0.4)
            victim = rng.choice(keys)
            yield from index.delete_item(victim)
            yield index.sim.timeout(0.4)
            yield from index.insert_item(victim)

    index.sim.process(churn())
    query_violations = 0
    for number in range(10):
        lb, ub = keys[5 + number], keys[40 + number]
        index.range_query_now(lb, ub)
        index.run(1.0)
        timeline = ItemTimeline(index.history.history())
        if not check_query_result(timeline, index.query_records[-1]).ok:
            query_violations += 1

    # Merges followed by a single failure (Figure 17's availability scenario).
    for key in keys[:40]:
        index.delete_item_now(key)
        index.run(0.4)
    index.run(8.0)
    members = index.ring_members()
    if len(members) > 2:
        index.fail_peer(members[len(members) // 2].address)
    index.run(50.0)
    lost = count_lost_items(index.history.history(), index.live_peers())

    print(f"--- {label}")
    print(f"  inconsistent-successor samples : {pointer_violations:3d} / {samples}")
    print(f"  incorrect range queries        : {query_violations:3d} / 10")
    print(f"  items lost after merges+failure: {len(lost):3d}")
    print()


def main() -> None:
    print("Same workload, two protocol stacks (Section 6.2 comparison):\n")
    run_scenario("naive baselines (no guarantees)", naive=True)
    run_scenario("PEPPER protocols (this paper)", naive=False)
    print("The PEPPER run should report zero violations in every category.")


if __name__ == "__main__":
    main()
