"""Digital-library workload: skewed publication dates and date-range queries.

The paper's second motivating application class (Section 1) is digital
libraries: articles are indexed by publication date, queries ask for date
ranges, and the key distribution is heavily skewed (most insertions hit recent
dates).  Hash-based placement would balance storage but destroy range locality;
the order-preserving Data Store keeps ranges contiguous and relies on splits,
merges and redistributions to stay balanced -- which this example makes visible.

Run with::

    python examples/digital_library.py
"""

from collections import Counter

from repro import PRingIndex, default_config
from repro.workloads.items import skewed_keys


def main() -> None:
    config = default_config(seed=11)
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(16):
        index.add_peer()

    # Keys are "days since epoch" over ~27 years; 80% of insertions fall in the
    # most recent 10% of the timeline (hot region at the low end of the space).
    rng = index.rngs.stream("library")
    dates = skewed_keys(220, config.key_space, rng, hot_fraction=0.8, hot_region=0.1)
    print(f"Ingesting {len(dates)} articles with a skewed date distribution...")
    for number, date in enumerate(dates):
        index.insert_item_now(date, payload=f"article-{number:04d}")
        index.run(0.3)
    index.run(40.0)

    members = index.ring_members()
    print(f"\nThe skew forced {len(members)} peers into the ring:")
    for peer in members:
        width = peer.store.range.span(config.key_space)
        print(
            f"  {peer.address}: {peer.store.item_count():3d} articles, "
            f"range width {width:8.1f} ({100 * width / config.key_space:5.2f}% of the key space)"
        )
    counts = [peer.store.item_count() for peer in members]
    print(
        f"Storage balance despite skew: min={min(counts)}, max={max(counts)}, "
        f"storage factor bounds are [{config.storage_factor}, {config.overflow_threshold}]"
    )

    # Date-range queries of different widths.
    print("\nDate-range queries:")
    hot_edge = config.key_space * 0.1
    for label, lb, ub in (
        ("last week of the hot region", hot_edge * 0.93, hot_edge),
        ("whole hot region", 0.0, hot_edge),
        ("one cold decade", hot_edge * 3, hot_edge * 6),
        ("entire collection", 0.0, config.key_space),
    ):
        result = index.range_query_now(lb, ub)
        expected = len([d for d in dates if lb < d <= ub])
        print(
            f"  {label:28s} ({lb:8.1f}, {ub:8.1f}] -> {len(result['keys']):3d} articles "
            f"(expected {expected:3d}), {result['hops']} hops, complete={result['complete']}"
        )

    # How the maintenance operations distributed the load.
    history = index.history.history()
    operations = Counter(op.kind for op in history)
    print(
        f"\nData Store maintenance performed: {operations['split_finished']} splits, "
        f"{operations.get('redistribute', 0)} redistributions, "
        f"{operations.get('merge_finished', 0)} merges"
    )


if __name__ == "__main__":
    main()
