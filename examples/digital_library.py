"""Digital-library workload: skewed publication dates and date-range queries.

The paper's second motivating application class (Section 1) is digital
libraries: articles are indexed by publication date, queries ask for date
ranges, and the key distribution is heavily skewed (most insertions hit recent
dates).  Hash-based placement would balance storage but destroy range
locality; the order-preserving Data Store keeps ranges contiguous and relies
on splits, merges and redistributions to stay balanced -- which this example
makes visible.

The workload is expressed as a registered :class:`ScenarioSpec` (the
``skewed`` key generator with a hot recent region), exactly as described in
``docs/SCENARIOS.md``; the spec is then materialised so the storage balance
and maintenance operations can be inspected peer by peer.

Run with::

    python examples/digital_library.py
"""

from collections import Counter

from repro.harness.scenarios import (
    QueryMixSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_experiment,
    register,
)

# Keys are "days since epoch" over ~27 years; 80% of insertions fall in the
# most recent 10% of the timeline (hot region at the low end of the space).
SPEC = register(
    ScenarioSpec(
        name="digital_library",
        description="skewed publication dates: 80% of 220 articles hit 10% of the timeline",
        peers=36,
        join_period=1.0,
        settle_time=40.0,
        seed=11,
        workload=WorkloadSpec(
            items=220,
            insert_rate=3.0,
            distribution="skewed",
            params={"hot_fraction": 0.8, "hot_region": 0.1},
        ),
        queries=QueryMixSpec(count=0),  # queries below are hand-picked ranges
    )
)


def main() -> None:
    experiment = build_experiment(SPEC, seed=11)
    index = experiment.index
    config = index.config
    print(f"Ingesting {SPEC.workload.items} articles with a skewed date distribution...")
    experiment.build()
    dates = experiment.inserted_keys

    members = index.ring_members()
    print(f"\nThe skew forced {len(members)} peers into the ring:")
    for peer in members:
        width = peer.store.range.span(config.key_space)
        print(
            f"  {peer.address}: {peer.store.item_count():3d} articles, "
            f"range width {width:8.1f} ({100 * width / config.key_space:5.2f}% of the key space)"
        )
    counts = [peer.store.item_count() for peer in members]
    print(
        f"Storage balance despite skew: min={min(counts)}, max={max(counts)}, "
        f"storage factor bounds are [{config.storage_factor}, {config.overflow_threshold}]"
    )

    # Date-range queries of different widths.
    print("\nDate-range queries:")
    hot_edge = config.key_space * 0.1
    for label, lb, ub in (
        ("last week of the hot region", hot_edge * 0.93, hot_edge),
        ("whole hot region", 0.0, hot_edge),
        ("one cold decade", hot_edge * 3, hot_edge * 6),
        ("entire collection", 0.0, config.key_space),
    ):
        outcome = experiment.run_query(lb, ub)
        expected = len([d for d in dates if lb < d <= ub])
        print(
            f"  {label:28s} ({lb:8.1f}, {ub:8.1f}] -> {len(outcome.keys):3d} articles "
            f"(expected {expected:3d}), {outcome.hops} hops, complete={outcome.complete}"
        )

    # How the maintenance operations distributed the load.
    operations = Counter(op.kind for op in index.history.history())
    print(
        f"\nData Store maintenance performed: {operations['split_finished']} splits, "
        f"{operations.get('redistribute', 0)} redistributions, "
        f"{operations.get('merge_finished', 0)} merges"
    )


if __name__ == "__main__":
    main()
