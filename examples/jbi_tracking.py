"""JBI-style object tracking: range queries over object positions under churn.

The paper motivates P2P range indices with the Joint Battlespace Infosphere
(Section 1): information objects are stored with their geographic position as
the search key, commanders query regions, and the infrastructure must keep
working -- and keep every object findable -- while peers come, go and fail.

This example linearises positions to one dimension (e.g. kilometres along a
corridor), streams position updates (delete + re-insert), injects peer
failures, and shows that region queries stay correct throughout.

Run with::

    python examples/jbi_tracking.py
"""

from repro import (
    PRingIndex,
    check_item_availability,
    count_lost_items,
    default_config,
)


def main() -> None:
    config = default_config(seed=42)
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(14):
        index.add_peer()

    # 150 tracked objects spread over a 10,000 "km" corridor.
    rng = index.rngs.stream("jbi")
    objects = {}
    for number in range(150):
        position = round(rng.uniform(1.0, config.key_space - 1.0), 3)
        objects[f"vehicle-{number:03d}"] = position
        index.insert_item_now(position, payload=f"vehicle-{number:03d}")
        index.run(0.3)
    index.run(30.0)
    print(f"Tracking {len(objects)} objects on {len(index.ring_members())} live peers")

    # Operational phase: objects move (delete + reinsert at the new position),
    # peers fail, and commanders run region queries the whole time.
    moved, failed_peers, queries = 0, 0, 0
    for round_number in range(12):
        # A few objects move.
        for name in list(objects)[round_number::25]:
            old_position = objects[name]
            new_position = round(rng.uniform(1.0, config.key_space - 1.0), 3)
            index.delete_item_now(old_position)
            index.insert_item_now(new_position, payload=name)
            objects[name] = new_position
            moved += 1
        # Occasionally a peer fails (fail-stop).  Give the replication manager
        # a refresh period first so freshly moved objects have replicas -- the
        # paper's guarantee is that *maintenance* never reduces availability,
        # not that an object survives a failure in the instant after insertion.
        index.run(config.replication_refresh_period)
        if round_number % 4 == 3 and len(index.ring_members()) > 4:
            victim = index.ring_members()[round_number % len(index.ring_members())]
            index.fail_peer(victim.address)
            failed_peers += 1
        index.run(8.0)

        # Region query: objects in a 1,500 km window.
        window_start = rng.uniform(0.0, config.key_space - 1500.0)
        result = index.range_query_now(window_start, window_start + 1500.0)
        expected = sorted(
            position
            for position in objects.values()
            if window_start < position <= window_start + 1500.0
        )
        queries += 1
        status = "OK" if result["keys"] == expected else "MISMATCH"
        print(
            f"round {round_number:2d}: region ({window_start:7.1f}, {window_start + 1500.0:7.1f}] "
            f"-> {len(result['keys'])} objects ({status}, {result['hops']} hops)"
        )

    index.run(40.0)  # allow replica revival after the failures
    lost = count_lost_items(index.history.history(), index.live_peers())
    print(f"\nObjects moved: {moved}, peer failures: {failed_peers}, region queries: {queries}")
    print(f"Objects lost: {len(lost)}")
    print("Item availability check:", check_item_availability(index.history.history()).ok)


if __name__ == "__main__":
    main()
