"""Tests for the metrics collector and text reporting."""

import pytest

from repro.harness.metrics import Metrics
from repro.harness.reporting import format_series, format_table


def test_record_and_basic_stats():
    metrics = Metrics()
    for value in (1.0, 2.0, 3.0, 4.0):
        metrics.record("latency", value)
    assert metrics.count("latency") == 4
    assert metrics.mean("latency") == pytest.approx(2.5)
    assert metrics.values("latency") == [1.0, 2.0, 3.0, 4.0]


def test_empty_series_returns_none():
    metrics = Metrics()
    assert metrics.mean("missing") is None
    assert metrics.summary("missing") is None
    assert metrics.percentile("missing", 0.5) is None
    assert metrics.count("missing") == 0


def test_summary_statistics():
    metrics = Metrics()
    for value in range(1, 101):
        metrics.record("x", float(value))
    summary = metrics.summary("x")
    assert summary.count == 100
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert summary.mean == pytest.approx(50.5)
    assert 45.0 <= summary.p50 <= 56.0
    assert 90.0 <= summary.p95 <= 100.0
    assert set(summary.as_dict()) == {"count", "mean", "min", "max", "p50", "p95"}


def test_percentile_bounds():
    metrics = Metrics()
    for value in (5.0, 1.0, 3.0):
        metrics.record("x", value)
    assert metrics.percentile("x", 0.0) == 1.0
    assert metrics.percentile("x", 1.0) == 5.0


def test_histogram_buckets_and_labels():
    metrics = Metrics()
    for value in (0.0005, 0.001, 0.002, 0.05, 0.5):
        metrics.record("latency", value)
    histogram = metrics.histogram("latency", (0.001, 0.01, 0.1))
    assert list(histogram) == ["<=0.001", "<=0.01", "<=0.1", ">0.1"]
    # Edges are inclusive: 0.001 lands in the first bucket.
    assert histogram == {"<=0.001": 2, "<=0.01": 1, "<=0.1": 1, ">0.1": 1}


def test_histogram_empty_series_is_empty_dict():
    assert Metrics().histogram("missing", (1.0, 2.0)) == {}


def test_names_and_merge():
    first = Metrics()
    first.record("a", 1.0)
    second = Metrics()
    second.record("a", 2.0)
    second.record("b", 3.0)
    first.merge(second)
    assert first.names() == ["a", "b"]
    assert first.values("a") == [1.0, 2.0]


def test_format_table_alignment_and_floats():
    table = format_table(["name", "value"], [["insertSucc", 0.12345], ["leave", 1234.5]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "insertSucc" in lines[2]
    assert "0.1234" in table or "0.1235" in table
    assert "1.23e+03" in table or "1230" in table


def test_format_table_handles_empty_rows():
    table = format_table(["a", "b"], [])
    assert "a" in table and "b" in table


def test_format_series():
    text = format_series("Title", {1: 0.5, 2: 0.75}, unit="s")
    assert text.startswith("Title")
    assert "0.5" in text and "0.75" in text
