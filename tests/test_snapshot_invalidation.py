"""Stale-snapshot invalidation: edits rebuild, corruption never crashes.

Three layers of defence are pinned here:

* **keying** -- any spec edit that shapes the pre-boundary world changes the
  build hash, so the old file is simply never looked up again (a later run
  captures the new world alongside it); identity knobs (seed, engine,
  ``warm_start``) are normalised out of the hash and live in the filename
  instead;
* **the paranoid loader** -- a truncated, corrupted, version-bumped or
  key-mismatched file loads as ``None`` and the scenario silently rebuilds
  cold (and re-captures over the bad file);
* **the restore guard** -- a snapshot that decodes fine but disagrees with
  the world the spec builds (e.g. the periodic-loop inventory changed)
  raises :class:`SnapshotRestoreError` internally and the run falls back to
  cold, never crashing and never producing a half-restored world.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import replace

import pytest

from repro.harness.scenarios import get_scenario, run_spec, snapshot_boundary
from repro.snapshot import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    build_hash,
    load_snapshot,
    save_snapshot,
    snapshot_path,
)


def _smoke():
    return get_scenario("smoke")


def _pre_phases(spec):
    phases = spec.resolved_phases()
    return phases[: snapshot_boundary(phases) + 1]


# ------------------------------------------------------------------ build hash
def test_spec_edits_change_the_hash():
    spec = _smoke()
    base = build_hash(spec, _pre_phases(spec))
    assert base == build_hash(spec, _pre_phases(spec))  # deterministic
    edits = [
        spec.with_(peers=spec.peers + 1),
        spec.with_(workload=replace(spec.workload, items=spec.workload.items + 5)),
        spec.with_(description="edited"),
    ]
    for edited in edits:
        assert build_hash(edited, _pre_phases(spec)) != base


def test_pre_phase_edits_change_the_hash():
    spec = _smoke()
    pre = _pre_phases(spec)
    longer = list(pre)
    longer[-1] = replace(longer[-1], settle=longer[-1].settle + 1.0)
    assert build_hash(spec, longer) != build_hash(spec, pre)


def test_identity_knobs_do_not_change_the_hash():
    """seed/engine/warm_start select a *file*, not a build: same hash."""
    spec = _smoke()
    pre = _pre_phases(spec)
    base = build_hash(spec, pre)
    assert build_hash(spec.with_(seed=99), pre) == base
    assert build_hash(spec.with_(engine="wheel"), pre) == base
    assert build_hash(spec.with_(warm_start=False), pre) == base


def test_post_boundary_edits_keep_the_cache(tmp_path, monkeypatch):
    """Editing only the phase *after* the boundary -- the one being iterated
    on -- keeps the snapshot valid: that is the workflow the cache exists
    for.  The hash covers the spec minus its phase list plus the pre-boundary
    phases, so the post-boundary tail is free to change."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    spec = _smoke()
    cold = run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
    phases = list(spec.resolved_phases())
    mix = replace(phases[-1].queries, count=phases[-1].queries.count + 3)
    phases[-1] = replace(phases[-1], queries=mix)
    edited = spec.with_(phases=tuple(phases))
    assert build_hash(edited, _pre_phases(edited)) == build_hash(spec, _pre_phases(spec))
    rerun = run_spec(edited, seed=0, snapshot_dir=str(tmp_path))
    assert rerun.warm_start  # resumed from the *unedited* spec's capture
    assert rerun.queries_run == cold.queries_run + 3
    assert len(list(tmp_path.glob(f"*{SNAPSHOT_SUFFIX}"))) == 1


def test_spec_edit_rebuilds_instead_of_resuming(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    spec = _smoke()
    run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
    assert len(list(tmp_path.glob(f"*{SNAPSHOT_SUFFIX}"))) == 1
    edited = spec.with_(workload=replace(spec.workload, items=spec.workload.items + 1))
    rerun = run_spec(edited, seed=0, snapshot_dir=str(tmp_path))
    # The stale file was ignored, a cold build ran, and the *new* key's
    # snapshot now sits alongside the old one.
    assert not rerun.warm_start
    assert rerun.items_stored == spec.workload.items + 1
    assert len(list(tmp_path.glob(f"*{SNAPSHOT_SUFFIX}"))) == 2
    assert run_spec(edited, seed=0, snapshot_dir=str(tmp_path)).warm_start


# ------------------------------------------------------------------ the loader
@pytest.fixture
def written(tmp_path):
    """A real captured smoke snapshot plus its lookup key, on disk."""
    import os

    forced = os.environ.pop("REPRO_ENGINE", None)
    try:
        spec = _smoke()
        run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
        key = build_hash(spec, _pre_phases(spec))
        path = snapshot_path(tmp_path, spec.name, key, 0, "heap")
        assert path.exists()
        return path, key
    finally:
        if forced is not None:
            os.environ["REPRO_ENGINE"] = forced


def test_loader_round_trips(written):
    path, key = written
    state = load_snapshot(path, key, 0, "heap")
    assert state is not None and state["peers"]


def test_loader_rejects_wrong_identity(written):
    path, key = written
    assert load_snapshot(path, "0" * 16, 0, "heap") is None
    assert load_snapshot(path, key, 1, "heap") is None
    assert load_snapshot(path, key, 0, "wheel") is None
    assert load_snapshot(path.with_name("absent" + SNAPSHOT_SUFFIX), key, 0, "heap") is None


def test_loader_rejects_version_mismatch(written, tmp_path):
    path, key = written
    state = load_snapshot(path, key, 0, "heap")
    save_snapshot(path, key, 0, "heap", state)
    raw = json.loads(gzip.decompress(path.read_bytes()))
    raw["format_version"] = FORMAT_VERSION + 1
    path.write_bytes(gzip.compress(json.dumps(raw).encode()))
    assert load_snapshot(path, key, 0, "heap") is None


@pytest.mark.parametrize(
    "corruption",
    [
        lambda raw: raw[: len(raw) // 2],  # truncated mid-stream
        lambda raw: b"not gzip at all",
        lambda raw: gzip.compress(b"{not json"),
        lambda raw: gzip.compress(b'["a list, not an envelope"]'),
        lambda raw: b"",
    ],
    ids=["truncated", "not-gzip", "bad-json", "wrong-shape", "empty"],
)
def test_loader_survives_corruption(written, corruption):
    path, key = written
    path.write_bytes(corruption(path.read_bytes()))
    assert load_snapshot(path, key, 0, "heap") is None


def test_corrupted_file_rebuilds_cold_and_recaptures(written, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    path, key = written
    path.write_bytes(path.read_bytes()[:100])  # torn file
    rerun = run_spec(_smoke(), seed=0, snapshot_dir=str(tmp_path))
    assert not rerun.warm_start  # fell back cold, no crash
    # ... and the cold run re-captured a healthy file over the torn one.
    assert load_snapshot(path, key, 0, "heap") is not None
    assert run_spec(_smoke(), seed=0, snapshot_dir=str(tmp_path)).warm_start


# ------------------------------------------------------------------ restore guard
def test_structural_mismatch_falls_back_cold(written, tmp_path, monkeypatch):
    """A snapshot whose loop inventory disagrees with the built world is
    rejected by the restorer (SnapshotRestoreError), not half-applied."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    path, key = written
    state = load_snapshot(path, key, 0, "heap")
    state["loops"] = state["loops"][:-1]  # drop one armed loop
    save_snapshot(path, key, 0, "heap", state)
    rerun = run_spec(_smoke(), seed=0, snapshot_dir=str(tmp_path))
    assert not rerun.warm_start
    assert rerun.items_stored == _smoke().workload.items  # the cold run is intact
