"""Serve layer: QueryClient routing, in-flight tracking, replica-read safety."""

import pytest

from repro.serve.tracker import READ_METHODS, InFlightTracker
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=81, peers=9)


def expected_keys(keys, lb, ub):
    return sorted(k for k in keys if lb < k <= ub)


# ----------------------------------------------------------------- routing policies
def test_all_routing_policies_return_identical_results(cluster):
    index, keys = cluster
    for lb, ub in ((keys[4], keys[30]), (keys[0], keys[-1])):
        results = {
            routing: index.range_query_now(lb, ub, routing=routing)
            for routing in ("primary", "replica_lb", "cached")
        }
        for routing, result in results.items():
            assert result["complete"], routing
            assert result["keys"] == expected_keys(keys, lb, ub), routing
            assert result["routing"] == routing


def test_unknown_routing_policy_is_rejected(cluster):
    index, _keys = cluster
    with pytest.raises(ValueError):
        index.query_client(routing="telepathy")


def test_query_client_is_cached_per_entry_and_policy(cluster):
    index, _keys = cluster
    a = index.query_client(routing="cached")
    b = index.query_client(routing="cached")
    c = index.query_client(routing="primary")
    assert a is b
    assert a is not c


# ----------------------------------------------------------------- tracker accounting
def test_tracker_settles_to_zero_in_flight(cluster):
    index, keys = cluster
    index.range_query_now(keys[2], keys[40], routing="replica_lb")
    index.run(5.0)  # let any expiry timers of dropped messages fire
    tracker = index.serve_tracker
    assert tracker.issued == tracker.completed
    assert sum(tracker.in_flight.values()) == 0


def test_replica_lb_spreads_reads_over_the_replica_set(cluster):
    index, keys = cluster
    before = dict(index.serve_tracker.read_load)
    for _ in range(10):
        index.range_query_now(keys[10], keys[14], routing="replica_lb")
        index.run(0.2)
    deltas = {
        address: count - before.get(address, 0)
        for address, count in index.serve_tracker.read_load.items()
        if count - before.get(address, 0) > 0
    }
    # A 10x-repeated single-owner window lands on more than one peer.
    assert len(deltas) >= 2, deltas


def test_least_loaded_breaks_ties_by_cumulative_load_then_position():
    tracker = InFlightTracker()
    assert tracker.least_loaded(["a", "b", "c"]) == "a"
    tracker.rpc_issued("x", "a", "serve_read")
    tracker.rpc_completed("a")  # not in flight, but cumulatively served
    assert tracker.least_loaded(["a", "b", "c"]) == "b"
    tracker.rpc_issued("x", "b", "serve_read")  # b now in flight
    assert tracker.least_loaded(["a", "b", "c"]) == "c"


def test_tracker_ignores_non_read_methods_for_read_load():
    tracker = InFlightTracker()
    tracker.rpc_issued("x", "a", "ring_ping")
    assert tracker.read_load == {}
    assert tracker.outstanding("a") == 1
    tracker.rpc_completed("a")
    assert tracker.outstanding("a") == 0
    assert "serve_read" in READ_METHODS and "serve_meta" not in READ_METHODS


def test_read_load_variance_counts_idle_peers_as_zero():
    tracker = InFlightTracker()
    for _ in range(4):
        tracker.rpc_issued("x", "hot", "serve_read")
    # {4, 0}: mean 2, population variance 4.
    assert tracker.read_load_variance(["hot", "idle"]) == pytest.approx(4.0)
    assert tracker.read_load_variance([]) == 0.0


# ----------------------------------------------------------------- cached routing
def test_cached_routing_revalidates_and_invalidates_on_writes():
    index, keys = build_cluster(seed=82, peers=8)
    lb, ub = keys[5], keys[25]
    first = index.range_query_now(lb, ub, routing="cached")
    assert first["cached"] is False
    second = index.range_query_now(lb, ub, routing="cached")
    assert second["cached"] is True
    assert second["hops"] == 0
    assert second["keys"] == first["keys"]
    # A write inside the window bumps the owner's store version; the next
    # cached read must miss and see the new key.
    new_key = (keys[10] + keys[11]) / 2.0
    assert index.insert_item_now(new_key)
    third = index.range_query_now(lb, ub, routing="cached")
    assert third["cached"] is False
    assert new_key in third["keys"]
    assert index.metrics.count("serve_cache_invalidate") >= 1


# ----------------------------------------------------------------- replica-read safety
def _replica_of(index, owner):
    """A live peer holding a pushed replica set for ``owner``."""
    for peer in index.ring_members():
        if peer.address == owner.address:
            continue
        if owner.address in peer.replication._push_state:
            return peer
    return None


def _serve_read(index, caller, target, payload):
    def proc():
        return (yield caller.call(target.address, "serve_read", payload))

    return index.run_process(proc())


def test_replica_refuses_reads_at_a_version_it_never_saw():
    index, keys = build_cluster(seed=83, peers=8)
    owner = index.ring_members()[2]
    replica = _replica_of(index, owner)
    assert replica is not None
    lo, hi, _full = owner.store.range.as_tuple()
    # Mutate the owner after its last push: the recorded push version is now
    # behind the primary's live version.  The 0.25 offset keeps the probe off
    # the 15-spaced workload key grid, so the insert is a genuinely new item.
    probe = ((lo + hi) / 2.0 if lo < hi else hi - 1.0) + 0.25
    assert index.insert_item_now(probe)
    assert owner.store.owns_key(probe)
    assert owner.store.items.version > replica.replication._push_state[owner.address][0]
    response = _serve_read(
        index,
        index.ring_members()[0],
        replica,
        {
            "owner": owner.address,
            "lb": lo,
            "ub": hi,
            "version": owner.store.items.version,
        },
    )
    assert response["ok"] is False
    assert response["reason"] in ("stale", "missing")
    # The end-to-end strong read is nevertheless correct: the client falls
    # back to the primary on the refusal.
    result = index.range_query_now(lo, hi, routing="replica_lb", consistency="strong")
    assert result["complete"]
    assert probe in result["keys"]


def test_replica_never_serves_a_tombstoned_copy():
    index, keys = build_cluster(seed=84, peers=8)
    owner = index.ring_members()[3]
    replica = _replica_of(index, owner)
    assert replica is not None
    version, _stamp, pushed = replica.replication._push_state[owner.address]
    assert pushed, "settled cluster must have pushed replica keys"
    victim = pushed[0]
    assert index.delete_item_now(victim)
    index.run(1.0)  # let the tombstone cast land on the replica
    assert replica.replication._tombstoned(victim)
    # Eventual-consistency read (no version check): the tombstoned copy must
    # be refused, never returned as a live item.
    response = _serve_read(
        index,
        index.ring_members()[0],
        replica,
        {"owner": owner.address, "lb": victim - 1.0, "ub": victim + 1.0, "version": None},
    )
    assert response["ok"] is False
    assert response["reason"] == "tombstoned"
    # End to end, the deleted key is gone under every routing policy.
    for routing in ("primary", "replica_lb"):
        result = index.range_query_now(
            victim - 1.0, victim + 1.0, routing=routing, consistency="eventual"
        )
        assert victim not in result["keys"], routing


def test_replica_failure_mid_query_falls_back_and_stays_correct():
    """Killing the chosen replica mid-read degrades to the primary, never to
    a wrong answer: every query over the owner's own window stays exact."""
    index, keys = build_cluster(seed=85, peers=9)
    owner = index.ring_members()[2]
    replica = _replica_of(index, owner)
    assert replica is not None
    lo, hi, full = owner.store.range.as_tuple()
    assert not full
    want = expected_keys(keys, lo, hi)
    assert want, "owner must hold workload keys"

    def fail_replica_mid_query():
        yield index.sim.timeout(0.003)  # inside the first hops of the query
        index.fail_peer(replica.address)

    index.sim.process(fail_replica_mid_query())
    # The owner's primary copy never moves, so replica_lb must return the
    # exact window contents on every attempt -- during the failure, and
    # through failure detection and replica revival afterwards.
    for attempt in range(8):
        result = index.range_query_now(lo, hi, routing="replica_lb", timeout=90.0)
        assert result["complete"], attempt
        assert sorted(result["keys"]) == want, attempt
        index.run(2.0)
