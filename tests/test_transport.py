"""Unit tests for the transport layer: contract, codec, asyncio substrate.

Four groups:

* ``Network.cast`` failure paths and per-method stats, parametrized over both
  event engines -- a cast to a dead, unknown, or mid-flight-failing
  destination is silently swallowed (the caller of :meth:`Node.call` that
  discarded the reply observed exactly the same), while the per-method
  counters still record the attempt;
* the JSON wire codec (tuple round-tripping, non-string-key rejection);
* the :class:`AsyncioClock` engine surface (timeout, run_until, the
  schedule_timer/cancel_timer contract);
* an end-to-end :class:`AsyncioTransport` exchange over real UDP sockets:
  call, generator handler, remote error, timeout to a dead peer, cast.
"""

from __future__ import annotations

import os

import pytest

from repro.index.config import default_config
from repro.sim.engine import ENGINE_NAMES, make_simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.randomness import RngStreams
from repro.transport import (
    Endpoint,
    RpcRemoteError,
    RpcTimeout,
    make_transport,
)
from repro.transport.api import TRANSPORT_ENV_VAR
from repro.transport.codec import decode_message, encode_message


class EchoEndpoint(Endpoint):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.casts_received = []

    def rpc_echo(self, payload, request):
        return {"echo": payload, "me": self.address}

    def rpc_slow(self, payload, request):
        yield self.sim.timeout(payload["delay"])
        return {"done": True}

    def rpc_broken(self, payload, request):
        raise ValueError("handler exploded")

    def rpc_note(self, payload, request):
        self.casts_received.append(payload)


# --------------------------------------------------------------------- cast paths
@pytest.fixture(params=ENGINE_NAMES)
def sim_env(request, monkeypatch):
    # REPRO_ENGINE would collapse the parametrization onto one engine.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    sim = make_simulator(request.param)
    network = Network(sim, RngStreams(3).stream("net"), NetworkConfig())
    a = EchoEndpoint(sim, network, "a")
    b = EchoEndpoint(sim, network, "b")
    return sim, network, a, b


def test_cast_delivers_and_counts(sim_env):
    sim, network, a, b = sim_env
    a.cast("b", "note", {"n": 1})
    a.cast("b", "note", {"n": 2})
    sim.run(until=1.0)
    # Each cast draws its own latency, so arrival order may differ from send
    # order; delivery of both is the guarantee.
    assert sorted(b.casts_received, key=lambda p: p["n"]) == [{"n": 1}, {"n": 2}]
    assert network.stats.per_method["note"] == 2
    assert network.stats.rpc_calls == 2
    assert network.stats.messages_sent == 2


def test_cast_to_dead_destination_is_swallowed(sim_env):
    sim, network, a, b = sim_env
    b.fail()
    a.cast("b", "note", {"n": 1})
    sim.run(until=1.0)
    assert b.casts_received == []
    # The attempt is still visible in the traffic stats: the message was
    # sent and the method was counted; only delivery silently evaporated.
    assert network.stats.per_method["note"] == 1
    assert network.stats.messages_sent == 1
    assert network.stats.messages_dropped == 0


def test_cast_to_unknown_destination_is_swallowed(sim_env):
    sim, network, a, _b = sim_env
    a.cast("ghost", "note", {})
    sim.run(until=1.0)
    assert network.stats.per_method["note"] == 1
    assert network.stats.messages_sent == 1


def test_cast_to_destination_failing_mid_flight(sim_env):
    sim, network, a, b = sim_env
    a.cast("b", "note", {"n": 1})
    # The message is in flight (latency >= latency_min > 0); the destination
    # fails before it lands, so the handler must never run.
    assert network.config.latency_min > 0
    b.fail()
    sim.run(until=1.0)
    assert b.casts_received == []
    assert network.stats.per_method["note"] == 1


def test_call_and_cast_share_per_method_stats(sim_env):
    sim, network, a, b = sim_env

    def proc():
        yield a.call("b", "echo", {})
        a.cast("b", "note", {})
        yield a.call("b", "echo", {})

    sim.run_process(proc())
    sim.run(until=sim.now + 1.0)
    assert network.stats.per_method == {"echo": 2, "note": 1}
    assert network.stats.rpc_calls == 3


# --------------------------------------------------------------------------- codec
def test_codec_round_trips_plain_json():
    message = {"k": "q", "id": 7, "m": "echo", "p": {"x": [1, 2.5, None, True, "s"]}}
    assert decode_message(encode_message(message)) == message


def test_codec_round_trips_tuples():
    message = {"p": {"range": (0.0, 250.0), "nested": [(1, 2), {"t": (None, "x")}]}}
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert isinstance(decoded["p"]["range"], tuple)
    assert isinstance(decoded["p"]["nested"][0], tuple)
    assert isinstance(decoded["p"]["nested"][1]["t"], tuple)


def test_codec_rejects_non_string_keys():
    # json.dumps would silently coerce the key to "1" and the reply would
    # come back shaped differently than the sim transport delivered it.
    with pytest.raises(TypeError):
        encode_message({"p": {1: "a"}})


def test_codec_output_is_compact_bytes():
    wire = encode_message({"a": 1, "b": [1, 2]})
    assert isinstance(wire, bytes)
    assert b" " not in wire


# --------------------------------------------------------------------- AsyncioClock
@pytest.fixture
def aclock():
    from repro.transport.asyncio_transport import AsyncioClock

    clock = AsyncioClock()
    yield clock
    clock.close()


def test_asyncio_clock_timeout_fires(aclock):
    fired = []
    event = aclock.timeout(0.01, value="v")
    event._add_callback(lambda e: fired.append(e.value))
    aclock.run(until=aclock.now + 0.05)
    assert fired == ["v"]
    assert aclock.events_processed >= 1


def test_asyncio_clock_run_until_event(aclock):
    event = aclock.timeout(0.01, value=42)
    assert aclock.run_until(event, timeout=1.0) is True
    assert event.value == 42


def test_asyncio_clock_run_until_times_out(aclock):
    event = aclock.event()  # never triggered
    assert aclock.run_until(event, timeout=0.02) is False
    assert not event.triggered


def test_asyncio_clock_timer_cancel_contract(aclock):
    fired = []
    handle = aclock.schedule_timer(0.01, fired.append, "a")
    keeper = aclock.schedule_timer(0.01, fired.append, "b")
    # Cancel before expiry returns the argument and suppresses the firing.
    assert aclock.cancel_timer(handle) == "a"
    aclock.run(until=aclock.now + 0.05)
    assert fired == ["b"]
    # Cancelling an already-fired record returns None (engine contract).
    assert aclock.cancel_timer(keeper) is None


def test_asyncio_clock_run_process(aclock):
    def proc():
        start = aclock.now
        yield aclock.timeout(0.01)
        return aclock.now - start

    elapsed = aclock.run_process(proc(), timeout=5.0)
    assert elapsed >= 0.009


# ----------------------------------------------------------------- asyncio transport
@pytest.fixture
def asyncio_env(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
    config = default_config(transport="asyncio")
    config.network.rpc_timeout = 0.5
    transport = make_transport(config)
    a = EchoEndpoint(transport.clock, transport.network, "a")
    b = EchoEndpoint(transport.clock, transport.network, "b")
    yield transport, a, b
    transport.shutdown()


def test_asyncio_transport_call_round_trip(asyncio_env):
    transport, a, b = asyncio_env
    sim = transport.clock

    def proc():
        response = yield a.call("b", "echo", {"x": 1, "pair": (1, 2)})
        return response

    response = sim.run_process(proc(), timeout=10.0)
    # Tuples survive the JSON framing via the codec's tuple tag.
    assert response == {"echo": {"x": 1, "pair": (1, 2)}, "me": "b"}
    assert transport.network.stats.rpc_calls == 1
    assert transport.network.stats.per_method["echo"] == 1


def test_asyncio_transport_generator_handler(asyncio_env):
    transport, a, b = asyncio_env
    sim = transport.clock

    def proc():
        return (yield a.call("b", "slow", {"delay": 0.02}, timeout=5.0))

    assert sim.run_process(proc(), timeout=10.0) == {"done": True}


def test_asyncio_transport_remote_error(asyncio_env):
    transport, a, b = asyncio_env
    sim = transport.clock

    def proc():
        try:
            yield a.call("b", "broken", {})
        except RpcRemoteError as error:
            return str(error)

    assert "exploded" in sim.run_process(proc(), timeout=10.0)


def test_asyncio_transport_dead_peer_times_out(asyncio_env):
    transport, a, b = asyncio_env
    sim = transport.clock
    b.fail()

    def proc():
        try:
            yield a.call("b", "echo", {}, timeout=0.1)
        except RpcTimeout:
            return "timed out"

    assert sim.run_process(proc(), timeout=10.0) == "timed out"
    assert transport.network.stats.rpc_timeouts == 1


def test_asyncio_transport_cast(asyncio_env):
    transport, a, b = asyncio_env
    sim = transport.clock
    a.cast("b", "note", {"n": 1})
    sim.run(until=sim.now + 0.2)
    assert b.casts_received == [{"n": 1}]
    assert transport.network.stats.per_method["note"] == 1


def test_asyncio_transport_every_runs_on_wall_clock(asyncio_env):
    transport, a, _b = asyncio_env
    sim = transport.clock
    ticks = []
    a.every(0.03, lambda: ticks.append(sim.now), jitter=0.0, initial_delay=0.0)
    sim.run(until=sim.now + 0.2)
    assert len(ticks) >= 3


# ------------------------------------------------------------------- selection
def test_make_transport_selects_sim_by_default():
    transport = make_transport(default_config())
    assert transport.name == "sim"
    assert transport.clock.engine_name in ENGINE_NAMES


def test_make_transport_env_override(monkeypatch):
    monkeypatch.setenv(TRANSPORT_ENV_VAR, "asyncio")
    transport = make_transport(default_config())
    try:
        assert transport.name == "asyncio"
        assert transport.clock.engine_name == "asyncio"
    finally:
        transport.shutdown()


def test_make_transport_rejects_unknown(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
    with pytest.raises(ValueError):
        make_transport(default_config().copy(transport="pigeon"))


def test_run_cell_transport_override():
    from repro.harness.runner import run_cell

    forced = os.environ.pop("REPRO_ENGINE", None)
    try:
        cell = run_cell(("smoke", 0, None, "sim"))
    finally:
        if forced is not None:
            os.environ["REPRO_ENGINE"] = forced
    assert cell["transport"] == "sim"
    assert cell["engine"] == "heap"


def test_run_cell_engine_override(monkeypatch):
    from repro.harness.runner import run_cell

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    cell = run_cell(("smoke", 0, "wheel"))
    assert cell["engine"] == "wheel"
    assert cell["transport"] == "sim"
    # The override reaches the actual event engine, not just the label: the
    # wheel run must still agree with the heap run on the end state (the
    # engines share one determinism contract).
    heap_cell = run_cell(("smoke", 0, "heap"))
    assert cell["ring_members"] == heap_cell["ring_members"]
    assert cell["items_stored"] == heap_cell["items_stored"]


def test_run_cell_short_and_long_tuples_agree(monkeypatch):
    """The 2-tuple and the full 6-tuple (all-default slots) run identically."""
    from repro.harness.runner import run_cell

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    short = run_cell(("smoke", 0))
    long = run_cell(("smoke", 0, None, None, None, None))
    assert long["events_processed"] == short["events_processed"]
    assert long["rpc_per_method"] == short["rpc_per_method"]
    assert long["warm_start"] is False  # no snapshot dir -> never resumes
