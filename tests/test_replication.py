"""Tests for the Replication Manager: refresh, revive, tombstones, extra hop."""

from tests.conftest import build_cluster


def test_items_are_replicated_to_successors():
    index, keys = build_cluster(seed=51, peers=8)
    index.run(2 * index.config.replication_refresh_period)
    replicated = set()
    for peer in index.live_peers():
        replicated.update(peer.replication.replica_keys())
    # With replication factor 6 on a ~8-member ring every item has replicas.
    assert set(keys) <= replicated


def test_failed_peer_items_are_revived():
    index, keys = build_cluster(seed=52, peers=8)
    index.run(2 * index.config.replication_refresh_period)
    victim = index.ring_members()[2]
    lost_keys = set(victim.store.items.keys())
    assert lost_keys
    index.fail_peer(victim.address)
    index.run(40.0)
    stored = set()
    for peer in index.ring_members():
        stored.update(peer.store.items.keys())
    assert lost_keys <= stored


def test_two_failures_tolerated_with_default_replication():
    index, keys = build_cluster(seed=53, peers=10)
    index.run(2 * index.config.replication_refresh_period)
    victims = index.ring_members()[2:4]
    for victim in victims:
        index.fail_peer(victim.address)
    index.run(60.0)
    stored = set()
    for peer in index.ring_members():
        stored.update(peer.store.items.keys())
    assert stored == set(keys)


def test_deleted_items_are_not_resurrected_by_failures():
    index, keys = build_cluster(seed=54, peers=8)
    index.run(2 * index.config.replication_refresh_period)
    victims = keys[:5]
    for key in victims:
        assert index.delete_item_now(key)
        index.run(0.5)
    # Fail the peer that owned those keys' range: replicas elsewhere must not
    # bring the deleted items back.
    index.run(2.0)
    owner = None
    for peer in index.ring_members():
        if any(peer.store.range.contains(k) for k in victims):
            owner = peer
            break
    if owner is not None and len(index.ring_members()) > 2:
        index.fail_peer(owner.address)
    index.run(40.0)
    stored = set()
    for peer in index.ring_members():
        stored.update(peer.store.items.keys())
    assert not (stored & set(victims))


def test_replica_counts_do_not_include_primaries():
    index, keys = build_cluster(seed=55, peers=8)
    index.run(2 * index.config.replication_refresh_period)
    for peer in index.ring_members():
        primaries = set(peer.store.items.keys())
        replicas = set(peer.replication.replica_keys())
        assert not (primaries & replicas)


def test_clear_drops_replicas():
    index, keys = build_cluster(seed=56, peers=6)
    index.run(2 * index.config.replication_refresh_period)
    peer = index.ring_members()[1]
    assert peer.replication.replica_count() > 0
    peer.replication.clear()
    assert peer.replication.replica_count() == 0


def test_tombstone_blocks_and_then_expires():
    index, keys = build_cluster(seed=57, peers=6)
    peer = index.ring_members()[1]
    manager = peer.replication
    skv = 4242.5
    manager._tombstones[skv] = index.sim.now
    assert manager._tombstoned(skv)
    # After three refresh periods the tombstone expires automatically.
    index.run(3 * index.config.replication_refresh_period + 1.0)
    assert not manager._tombstoned(skv)


def test_extra_hop_push_reports_acknowledgements():
    index, keys = build_cluster(seed=58, peers=8)
    index.run(2 * index.config.replication_refresh_period)
    peer = index.ring_members()[2]
    count = index.run_process(peer.replication.push_extra_hop())
    assert count >= 1
