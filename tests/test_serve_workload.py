"""The open-loop serve workload: schedule generation, specs, BENCH plumbing."""

import random

import pytest

from repro.harness.phases import ServeSpec
from repro.harness.runner import aggregate_cells
from repro.harness.scenarios import (
    QueryMixSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_spec,
)
from repro.serve.workload import open_loop_queries, zipf_hotspot_windows


# --------------------------------------------------------------------------- generator
def test_open_loop_schedule_is_deterministic():
    first = open_loop_queries(50.0, 5.0, 1000.0, random.Random(7))
    second = open_loop_queries(50.0, 5.0, 1000.0, random.Random(7))
    assert first == second
    assert first != open_loop_queries(50.0, 5.0, 1000.0, random.Random(8))


def test_open_loop_schedule_respects_bounds():
    schedule = open_loop_queries(80.0, 5.0, 1000.0, random.Random(3), selectivity=0.05)
    assert schedule, "~400 expected arrivals cannot be empty"
    previous = 0.0
    for query in schedule:
        assert previous < query.at <= 5.0
        previous = query.at
        assert 0.0 <= query.lb < query.ub <= 1000.0
        assert query.ub - query.lb == pytest.approx(50.0)  # key_space * selectivity


def test_open_loop_arrivals_are_zipf_skewed_by_rank():
    schedule = open_loop_queries(
        300.0, 10.0, 1000.0, random.Random(11), hotspots=8, alpha=1.1
    )
    by_rank = [0] * 8
    for query in schedule:
        by_rank[query.hotspot] += 1
    # Rank 0 dominates and the tail ranks see far less traffic.
    assert by_rank[0] == max(by_rank)
    assert by_rank[0] > 3 * min(by_rank)
    assert sum(by_rank) == len(schedule)


def test_open_loop_generator_rejects_bad_settings():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        open_loop_queries(0.0, 5.0, 1000.0, rng)
    with pytest.raises(ValueError):
        open_loop_queries(10.0, -1.0, 1000.0, rng)
    with pytest.raises(ValueError):
        zipf_hotspot_windows(0, 1000.0, 20.0, rng)
    with pytest.raises(ValueError):
        zipf_hotspot_windows(4, 1000.0, 0.0, rng)


# --------------------------------------------------------------------------- specs
def test_serve_spec_validation():
    ServeSpec().validate()
    for bad in (
        ServeSpec(arrival_rate=0.0),
        ServeSpec(duration=-1.0),
        ServeSpec(routing="telepathy"),
        ServeSpec(consistency="eventual-ish"),
        ServeSpec(selectivity=0.0),
        ServeSpec(hotspots=0),
        ServeSpec(alpha=-0.1),
        ServeSpec(timeout=0.0),
        ServeSpec(drain=-1.0),
    ):
        with pytest.raises(ValueError):
            bad.validate()


def test_flat_spec_with_serve_resolves_to_trailing_serve_phase():
    spec = ScenarioSpec(
        name="serve-resolve",
        peers=6,
        workload=WorkloadSpec(items=20, insert_rate=4.0),
        serve=ServeSpec(arrival_rate=5.0, duration=2.0),
    )
    phases = spec.resolved_phases()
    assert phases[-1].name == "serve"
    assert phases[-1].serve is spec.serve
    without = spec.with_(serve=None)
    assert all(phase.serve is None for phase in without.resolved_phases())


# --------------------------------------------------------------------------- end to end
SERVE_TINY = ScenarioSpec(
    name="serve-tiny-cell",
    peers=6,
    join_period=1.0,
    settle_time=10.0,
    workload=WorkloadSpec(items=40, insert_rate=4.0),
    queries=QueryMixSpec(count=0),
    serve=ServeSpec(arrival_rate=10.0, duration=4.0, routing="replica_lb"),
)


def test_run_spec_executes_serve_phase_and_reports_latency():
    result = run_spec(SERVE_TINY, seed=3)
    assert result.serve_queries > 0
    # No churn during the serve window: every open-loop query is exact.
    assert result.serve_correct == result.serve_queries
    latency = result.query_latency
    assert latency["count"] == float(result.serve_queries)
    assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
    assert latency["mean"] > 0.0
    assert result.query_mean_elapsed_s == latency["mean"]
    assert result.serve_load_variance >= 0.0
    serve_phase = result.phases[-1]
    assert serve_phase["phase"] == "serve"
    assert serve_phase["queries_run"] == result.serve_queries


# --------------------------------------------------------------------------- aggregation
def _fake_cell(seed, p50, p99, variance):
    return {
        "scenario": "serve_fake",
        "seed": seed,
        "serve_load_variance": variance,
        "query_latency": {
            "count": 100.0,
            "mean": (p50 + p99) / 2,
            "p50": p50,
            "p95": p99,
            "p99": p99,
        },
    }


def test_aggregate_cells_summarises_latency_block_and_load_variance():
    aggregate = aggregate_cells([_fake_cell(0, 0.01, 0.05, 4.0), _fake_cell(1, 0.03, 0.07, 2.0)])
    entry = aggregate["serve_fake"]
    assert entry["serve_load_variance"]["mean"] == pytest.approx(3.0)
    assert entry["query_latency"]["p50"]["mean"] == pytest.approx(0.02)
    assert entry["query_latency"]["p99"]["max"] == pytest.approx(0.07)
    assert entry["query_latency"]["count"]["min"] == 100.0


def test_aggregate_cells_omits_latency_when_any_cell_lacks_it():
    bare = {"scenario": "serve_fake", "seed": 2, "serve_load_variance": 1.0}
    aggregate = aggregate_cells([_fake_cell(0, 0.01, 0.05, 4.0), bare])
    assert "query_latency" not in aggregate["serve_fake"]
