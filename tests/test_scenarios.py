"""Tests for the scenario registry, spec resolution and the cell runner."""

import json

import pytest

from repro.harness.runner import known_names, run_cells, run_named, write_bench
from repro.harness.scenarios import (
    ChurnSpec,
    QueryMixSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_experiment,
    get_scenario,
    get_suite,
    register,
    run_spec,
    scenario_names,
    suite_names,
)


TINY = ScenarioSpec(
    name="tiny-test-cell",
    peers=6,
    join_period=1.0,
    settle_time=10.0,
    workload=WorkloadSpec(items=40, insert_rate=4.0),
    queries=QueryMixSpec(count=3),
)


# --------------------------------------------------------------------------- registry basics
def test_builtin_scenarios_registered():
    names = scenario_names()
    for expected in (
        "paper_default",
        "smoke",
        "zipf_hotspot",
        "flash_crowd",
        "churn_heavy",
        "correlated_failures",
        "scale_100",
        "scale_300",
        "scale_1000",
    ):
        assert expected in names


def test_scale_sweep_suite_composition():
    assert "scale_sweep" in suite_names()
    suite = get_suite("scale_sweep")
    assert suite.scenarios == ("scale_100", "scale_300", "scale_1000", "scale_3000")
    assert suite.bench_name == "scale"


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="paper_default"):
        get_scenario("no_such_scenario")


def test_duplicate_registration_rejected():
    spec = get_scenario("smoke")
    with pytest.raises(ValueError, match="already registered"):
        register(spec)
    register(spec, replace_existing=True)  # idempotent escape hatch


def test_runner_known_names_cover_figures():
    names = known_names()
    assert "scale_sweep" in names
    assert "figure_19" in names


# --------------------------------------------------------------------------- spec resolution
def test_spec_resolves_protocol_selection():
    pepper = TINY.with_(protocols="pepper").index_config()
    naive = TINY.with_(protocols="naive").index_config()
    assert pepper.consistent_insert and pepper.use_scan_range
    assert not naive.consistent_insert and not naive.use_scan_range
    with pytest.raises(ValueError):
        TINY.with_(protocols="bogus").index_config()


def test_spec_config_overrides_apply():
    spec = TINY.with_(config={"successor_list_length": 7, "stabilization_period": 9.0})
    config = spec.index_config(seed=5)
    assert config.successor_list_length == 7
    assert config.stabilization_period == 9.0
    assert config.seed == 5


def test_spec_settings_carry_workload_shape():
    spec = TINY.with_(workload=WorkloadSpec(items=33, distribution="zipf", params={"alpha": 1.3}))
    settings = spec.settings(seed=2)
    assert settings.items == 33
    assert settings.key_distribution == "zipf"
    assert settings.key_params == {"alpha": 1.3}
    assert settings.seed == 2


def test_flash_crowd_spec_merges_into_build_schedule():
    spec = TINY.with_(churn=ChurnSpec(flash_crowd_peers=4, flash_crowd_at=2.0))
    experiment = build_experiment(spec)
    assert experiment.extra_churn is not None
    assert len(experiment.extra_churn) == 4


# --------------------------------------------------------------------------- execution
def test_run_spec_produces_complete_result():
    result = run_spec(TINY, seed=0)
    assert result.scenario == "tiny-test-cell"
    assert result.ring_members >= 3
    assert result.items_stored == 40
    assert result.queries_run == 3
    assert result.queries_complete == 3
    assert result.events_processed > 0
    assert result.wall_clock_s > 0
    assert "route_hops" in result.metrics
    payload = result.as_dict()
    json.dumps(payload)  # JSON-serialisable end to end


def test_run_spec_is_deterministic_per_seed():
    first = run_spec(TINY, seed=3)
    second = run_spec(TINY, seed=3)
    assert first.events_processed == second.events_processed
    assert first.sim_time_s == second.sim_time_s
    assert first.metrics == second.metrics
    different = run_spec(TINY, seed=4)
    assert different.events_processed != first.events_processed


def test_correlated_failures_phase_kills_members():
    spec = TINY.with_(
        name="tiny-corr",
        peers=10,
        workload=WorkloadSpec(items=60, insert_rate=4.0),
        churn=ChurnSpec(correlated_failures=2),
        queries=QueryMixSpec(count=0),
    )
    result = run_spec(spec, seed=1)
    assert result.correlated_failures_injected == 2


# --------------------------------------------------------------------------- runner + BENCH emission
def test_run_cells_serial_and_bench_write(tmp_path):
    cells = run_cells(["smoke"], seeds=[0, 1], processes=1)
    assert [cell["seed"] for cell in cells] == [0, 1]
    path = write_bench("unit", {"results": cells}, out_dir=tmp_path)
    document = json.loads(path.read_text())
    assert document["bench"] == "unit"
    assert len(document["results"]) == 2
    assert document["environment"]["python"]


def test_run_named_scenario_writes_bench_json(tmp_path):
    payload = run_named("smoke", seeds=[0], out_dir=str(tmp_path))
    assert (tmp_path / "BENCH_smoke.json").exists()
    assert payload["summary"]["cells"] == 1


def test_run_named_unknown_name_raises():
    with pytest.raises(KeyError):
        run_named("definitely_not_registered", out_dir=None)
