"""Tests for the scenario registry, spec resolution and the cell runner."""

import json

import pytest

from repro.cli import _parse_seeds
from repro.harness.figures import FigureResult
from repro.harness.runner import (
    _cells_summary,
    aggregate_cells,
    known_names,
    run_cells,
    run_named,
    write_bench,
)
from repro.harness.scenarios import (
    ChurnSpec,
    LatencySpec,
    QueryMixSpec,
    ScenarioSpec,
    WorkloadSpec,
    build_experiment,
    get_scenario,
    get_suite,
    register,
    run_spec,
    scenario_names,
    suite_names,
)
from repro.sim.network import LanWanLatency, UniformLatency


TINY = ScenarioSpec(
    name="tiny-test-cell",
    peers=6,
    join_period=1.0,
    settle_time=10.0,
    workload=WorkloadSpec(items=40, insert_rate=4.0),
    queries=QueryMixSpec(count=3),
)


# --------------------------------------------------------------------------- registry basics
def test_builtin_scenarios_registered():
    names = scenario_names()
    for expected in (
        "paper_default",
        "smoke",
        "zipf_hotspot",
        "flash_crowd",
        "churn_heavy",
        "correlated_failures",
        "scale_100",
        "scale_300",
        "scale_1000",
    ):
        assert expected in names


def test_scale_sweep_suite_composition():
    assert "scale_sweep" in suite_names()
    suite = get_suite("scale_sweep")
    assert suite.scenarios == (
        "scale_100",
        "scale_100_adaptive",
        "scale_300",
        "scale_300_adaptive",
        "scale_1000",
        "scale_1000_adaptive",
        "scale_1000_wheel",
    )
    assert suite.bench_name == "scale"
    deep = get_suite("scale_sweep_deep")
    assert deep.scenarios == (
        "scale_3000",
        "scale_5000",
        "scale_5000_adaptive",
        "scale_5000_rebalance",
    )
    assert deep.bench_name == "scale_deep"


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="paper_default"):
        get_scenario("no_such_scenario")


def test_duplicate_registration_rejected():
    spec = get_scenario("smoke")
    with pytest.raises(ValueError, match="already registered"):
        register(spec)
    register(spec, replace_existing=True)  # idempotent escape hatch


def test_runner_known_names_cover_figures():
    names = known_names()
    assert "scale_sweep" in names
    assert "figure_19" in names


# --------------------------------------------------------------------------- spec resolution
def test_spec_resolves_protocol_selection():
    pepper = TINY.with_(protocols="pepper").index_config()
    naive = TINY.with_(protocols="naive").index_config()
    assert pepper.consistent_insert and pepper.use_scan_range
    assert not naive.consistent_insert and not naive.use_scan_range
    with pytest.raises(ValueError):
        TINY.with_(protocols="bogus").index_config()


def test_spec_config_overrides_apply():
    spec = TINY.with_(config={"successor_list_length": 7, "stabilization_period": 9.0})
    config = spec.index_config(seed=5)
    assert config.successor_list_length == 7
    assert config.stabilization_period == 9.0
    assert config.seed == 5


def test_spec_settings_carry_workload_shape():
    spec = TINY.with_(workload=WorkloadSpec(items=33, distribution="zipf", params={"alpha": 1.3}))
    settings = spec.settings(seed=2)
    assert settings.items == 33
    assert settings.key_distribution == "zipf"
    assert settings.key_params == {"alpha": 1.3}
    assert settings.seed == 2


def test_wan_scenarios_and_suite_registered():
    for expected in ("scale_100_wan", "scale_300_wan", "scale_1000_wan"):
        assert expected in scenario_names()
    suite = get_suite("scale_sweep_wan")
    assert suite.scenarios == ("scale_100_wan", "scale_300_wan", "scale_1000_wan")
    assert suite.bench_name == "scale_wan"


def test_latency_spec_resolves_into_network_config():
    spec = TINY.with_(
        latency=LatencySpec(
            model="lan_wan",
            params={"sites": 3, "wan_low": 0.04, "wan_high": 0.09},
        )
    )
    config = spec.index_config()
    model = config.network.latency_model
    assert isinstance(model, LanWanLatency)
    assert model.sites == 3
    assert (model.wan.low, model.wan.high) == (0.04, 0.09)
    # The default spec leaves the network untouched (legacy uniform bounds).
    assert TINY.index_config().network.latency_model is None
    with pytest.raises(ValueError, match="unknown latency model"):
        TINY.with_(latency=LatencySpec(model="bogus")).index_config()


def test_latency_spec_uniform_model():
    spec = TINY.with_(latency=LatencySpec(model="uniform", params={"low": 0.001, "high": 0.002}))
    model = spec.index_config().network.latency_model
    assert isinstance(model, UniformLatency)
    assert (model.low, model.high) == (0.001, 0.002)


def test_flash_crowd_spec_merges_into_build_schedule():
    spec = TINY.with_(churn=ChurnSpec(flash_crowd_peers=4, flash_crowd_at=2.0))
    experiment = build_experiment(spec)
    assert experiment.extra_churn is not None
    assert len(experiment.extra_churn) == 4


# --------------------------------------------------------------------------- execution
def test_run_spec_produces_complete_result():
    result = run_spec(TINY, seed=0)
    assert result.scenario == "tiny-test-cell"
    assert result.ring_members >= 3
    assert result.items_stored == 40
    assert result.queries_run == 3
    assert result.queries_complete == 3
    assert result.events_processed > 0
    assert result.wall_clock_s > 0
    assert "route_hops" in result.metrics
    payload = result.as_dict()
    json.dumps(payload)  # JSON-serialisable end to end


def test_run_spec_is_deterministic_per_seed():
    first = run_spec(TINY, seed=3)
    second = run_spec(TINY, seed=3)
    assert first.events_processed == second.events_processed
    assert first.sim_time_s == second.sim_time_s
    assert first.metrics == second.metrics
    different = run_spec(TINY, seed=4)
    assert different.events_processed != first.events_processed


def test_correlated_failures_phase_kills_members():
    spec = TINY.with_(
        name="tiny-corr",
        peers=10,
        workload=WorkloadSpec(items=60, insert_rate=4.0),
        churn=ChurnSpec(correlated_failures=2),
        queries=QueryMixSpec(count=0),
    )
    result = run_spec(spec, seed=1)
    assert result.correlated_failures_injected == 2


def test_run_spec_wan_records_site_diagnostics():
    spec = TINY.with_(
        name="tiny-wan",
        latency=LatencySpec(model="lan_wan", params={"sites": 3}),
    )
    result = run_spec(spec, seed=0)
    # RPCs are attributed to originating sites and sum to the RPC total.
    assert result.per_site_rpcs
    assert all(key.startswith("site") for key in result.per_site_rpcs)
    assert sum(result.per_site_rpcs.values()) == result.rpc_calls
    # Cross-site latency stats are summarised and histogrammed.
    assert "net_latency_cross_site" in result.metrics
    assert result.metrics["net_latency_cross_site"]["mean"] >= 0.02
    assert "net_latency_intra_site" in result.metrics
    assert result.metrics["net_latency_intra_site"]["mean"] <= 0.003
    assert "net_latency_cross_site" in result.latency_histograms
    histogram = result.latency_histograms["net_latency_cross_site"]
    assert sum(histogram.values()) == result.metrics["net_latency_cross_site"]["count"]
    json.dumps(result.as_dict())


def test_run_spec_lan_results_carry_no_site_diagnostics():
    result = run_spec(TINY, seed=0)
    assert result.per_site_rpcs == {}
    assert result.latency_histograms == {}
    assert "net_latency_cross_site" not in result.metrics


# --------------------------------------------------------------------------- runner + BENCH emission
def test_run_cells_serial_and_bench_write(tmp_path):
    cells = run_cells(["smoke"], seeds=[0, 1], processes=1)
    assert [cell["seed"] for cell in cells] == [0, 1]
    path = write_bench("unit", {"results": cells}, out_dir=tmp_path)
    document = json.loads(path.read_text())
    assert document["bench"] == "unit"
    assert len(document["results"]) == 2
    assert document["environment"]["python"]


def test_run_named_scenario_writes_bench_json(tmp_path):
    payload = run_named("smoke", seeds=[0], out_dir=str(tmp_path))
    assert (tmp_path / "BENCH_smoke.json").exists()
    assert payload["summary"]["cells"] == 1


def test_run_named_unknown_name_raises():
    with pytest.raises(KeyError):
        run_named("definitely_not_registered", out_dir=None)


# --------------------------------------------------------------------------- multi-seed aggregation
def test_cells_summary_reports_both_throughput_views():
    cells = [
        {"wall_clock_s": 2.0, "events_processed": 1000},
        {"wall_clock_s": 2.0, "events_processed": 1000},
    ]
    # Two cells that ran concurrently: 4 s of per-cell clock, 2 s of real time.
    summary = _cells_summary(cells, elapsed_s=2.0)
    assert summary["total_wall_clock_s"] == 4.0
    assert summary["events_per_cell_wall_s"] == 500
    assert summary["elapsed_wall_clock_s"] == 2.0
    assert summary["events_per_wall_s"] == 1000  # real pool throughput
    # Without a measured elapsed time only the per-cell view is reported.
    assert "events_per_wall_s" not in _cells_summary(cells)


def test_aggregate_cells_per_scenario_stats():
    def cell(scenario, seed, wall):
        return {
            "scenario": scenario,
            "seed": seed,
            "wall_clock_s": wall,
            "events_processed": 100 * (seed + 1),
            "events_per_wall_s": 10.0,
            "rpc_calls": 50,
            "rpc_timeouts": seed,
            "messages_sent": 200,
            "query_mean_elapsed_s": 0.1 * (seed + 1),
            "query_mean_hops": 2.0,
        }

    cells = [cell("a", 0, 1.0), cell("a", 1, 3.0), cell("b", 0, 2.0)]
    aggregates = aggregate_cells(cells)
    assert set(aggregates) == {"a", "b"}
    assert aggregates["a"]["seeds"] == [0, 1]
    assert aggregates["a"]["wall_clock_s"] == {
        "mean": 2.0, "p95": 3.0, "min": 1.0, "max": 3.0,
    }
    assert aggregates["a"]["query_mean_elapsed_s"]["mean"] == pytest.approx(0.15)
    assert aggregates["b"]["seeds"] == [0]
    assert aggregates["b"]["wall_clock_s"]["p95"] == 2.0


def test_run_named_multi_seed_envelope(tmp_path):
    payload = run_named("smoke", seeds=[0, 1], processes=1, out_dir=str(tmp_path))
    assert payload["seeds"] == [0, 1]
    aggregate = payload["aggregates"]["smoke"]
    assert aggregate["seeds"] == [0, 1]
    for measurement in ("wall_clock_s", "events_processed", "rpc_calls"):
        stats = aggregate[measurement]
        assert set(stats) == {"mean", "p95", "min", "max"}
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["min"] <= stats["p95"] <= stats["max"]
    document = json.loads((tmp_path / "BENCH_smoke.json").read_text())
    assert document["aggregates"]["smoke"]["seeds"] == [0, 1]


def test_run_named_figure_honours_seeds_and_offsets(monkeypatch):
    from repro.harness import figures

    calls = []

    def fake_figure(seed=7):
        calls.append(seed)
        return FigureResult(
            figure="Fake",
            description="stub for seed-offset testing",
            headers=["x", "y"],
            rows=[(1, float(seed))],
        )

    monkeypatch.setitem(figures.ALL_FIGURES, "fake_figure", fake_figure)
    payload = run_named("fake_figure", seeds=[0, 2], processes=1, out_dir=None)
    # Offsets are applied on top of the figure's default seed.
    assert calls == [7, 9]
    assert payload["seeds"] == [7, 9]
    assert [cell["seed_offset"] for cell in payload["results"]] == [0, 2]
    # Matching rows are averaged across the seed runs.
    assert payload["aggregates"]["rows"] == [[1, 8.0]]
    assert payload["summary"]["figure_runs"] == 2


def test_run_named_figure_single_seed_keeps_historical_shape(monkeypatch):
    from repro.harness import figures

    calls = []

    def fake_figure(seed=19):
        calls.append(seed)
        return FigureResult(figure="Fake", description="", headers=["x"], rows=[(1,)])

    monkeypatch.setitem(figures.ALL_FIGURES, "fake_figure", fake_figure)
    payload = run_named("fake_figure", out_dir=None)
    assert calls == [19]  # seeds=[0] resolves to the figure's own default seed
    assert len(payload["results"]) == 1
    assert "aggregates" not in payload


# --------------------------------------------------------------------------- CLI seed parsing
def test_parse_seeds_accepts_lists_commas_and_ranges():
    assert _parse_seeds(["0"]) == [0]
    assert _parse_seeds(["0", "1", "2"]) == [0, 1, 2]
    assert _parse_seeds(["0,1,2"]) == [0, 1, 2]
    assert _parse_seeds(["0..4"]) == [0, 1, 2, 3, 4]
    assert _parse_seeds(["0..1", "5,7"]) == [0, 1, 5, 7]


def test_parse_seeds_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_seeds(["zebra"])
    with pytest.raises(SystemExit):
        _parse_seeds(["4..1"])
    with pytest.raises(SystemExit):
        _parse_seeds([","])
