"""Unit tests for the adaptive maintenance subsystem (:mod:`repro.maintenance`).

The cadence controllers are deterministic state machines, so their back-off /
tighten transitions, bounds and RTT seeding are pinned down exactly; the
redirect cache's ring geometry (closest predecessor, wrap-around, TTL and
eviction) is covered against hand-computed distances; and the policy factory
plus the ``MaintenanceSpec -> IndexConfig`` resolution mirror the LatencySpec
tests in ``tests/test_scenarios.py``.
"""

import pytest

from repro.harness.scenarios import MaintenanceSpec
from repro.index.config import default_config
from repro.maintenance import (
    FIXED_MAINTENANCE,
    AdaptiveCadence,
    FixedCadence,
    MaintenancePolicy,
    RedirectCache,
    RttScaledCadence,
    backward_distance,
    maintenance_policy_from_params,
    rtt_scaled_period,
)
from repro.sim.engine import Simulator
from repro.sim.network import LanWanLatency, Network, NetworkConfig, UniformLatency
from repro.sim.node import Node
from repro.sim.randomness import RngStreams


# --------------------------------------------------------------------------- cadence controllers
def test_fixed_cadence_is_constant_and_ignores_feedback():
    cadence = FixedCadence(4.0)
    assert cadence.interval() == 4.0
    cadence.note_success()
    cadence.note_failure()
    cadence.note_change()
    assert cadence.interval() == 4.0


def test_adaptive_cadence_backs_off_after_threshold_successes():
    cadence = AdaptiveCadence(8.0, growth=2.0, max_factor=4.0, success_threshold=2)
    assert cadence.interval() == 8.0
    cadence.note_success()
    assert cadence.interval() == 8.0  # one success is below the threshold
    cadence.note_success()
    assert cadence.interval() == 16.0
    cadence.note_success()
    cadence.note_success()
    assert cadence.interval() == 32.0


def test_adaptive_cadence_is_bounded_by_max_factor():
    cadence = AdaptiveCadence(8.0, growth=2.0, max_factor=4.0, success_threshold=1)
    for _ in range(10):
        cadence.note_success()
    assert cadence.interval() == 32.0  # 8.0 * 4


def test_adaptive_cadence_tightens_to_base_on_failure_and_change():
    cadence = AdaptiveCadence(8.0, success_threshold=1)
    cadence.note_success()
    assert cadence.interval() > 8.0
    cadence.note_failure()
    assert cadence.interval() == 8.0
    cadence.note_success()
    assert cadence.interval() > 8.0
    cadence.note_change()
    assert cadence.interval() == 8.0


def test_adaptive_cadence_failure_resets_the_success_streak():
    cadence = AdaptiveCadence(8.0, success_threshold=2)
    cadence.note_success()
    cadence.note_failure()
    cadence.note_success()  # streak restarted: still one success short
    assert cadence.interval() == 8.0


def test_adaptive_cadence_rejects_nonsense_parameters():
    with pytest.raises(ValueError):
        AdaptiveCadence(0.0)
    with pytest.raises(ValueError):
        AdaptiveCadence(8.0, growth=1.0)
    with pytest.raises(ValueError):
        AdaptiveCadence(8.0, max_factor=0.5)
    with pytest.raises(ValueError):
        AdaptiveCadence(8.0, success_threshold=0)


# --------------------------------------------------------------------------- RTT scaling
def test_rtt_scaled_period_keeps_base_on_lan():
    # Observed round trip at (or below) the reference: the LAN constants hold.
    assert rtt_scaled_period(8.0, 0.004, reference_rtt=0.004, floor=0.5) == 8.0
    assert rtt_scaled_period(8.0, 0.001, reference_rtt=0.004, floor=0.5) == 8.0


def test_rtt_scaled_period_tightens_down_to_the_floor_on_wan():
    # A 0.1 s WAN round trip vs. a 4 ms reference: clamped at the floor.
    assert rtt_scaled_period(8.0, 0.1, reference_rtt=0.004, floor=0.5) == 4.0
    # A mildly slower network lands between base and the floor.
    assert rtt_scaled_period(8.0, 0.005, reference_rtt=0.004, floor=0.5) == pytest.approx(6.4)


def test_rtt_scaled_period_unknown_rtt_keeps_base():
    assert rtt_scaled_period(8.0, None, reference_rtt=0.004, floor=0.5) == 8.0
    assert rtt_scaled_period(8.0, 0.0, reference_rtt=0.004, floor=0.5) == 8.0


def test_rtt_scaled_cadence_rereads_its_source():
    rtts = [0.004, 0.1]
    cadence = RttScaledCadence(8.0, lambda: rtts[0], reference_rtt=0.004, floor=0.5)
    assert cadence.interval() == 8.0
    rtts[0] = 0.1  # the network got slower: the next round tightens
    assert cadence.interval() == 4.0


def test_network_observed_rtt_seeds_from_nominal_then_tracks_samples():
    sim = Simulator()
    rngs = RngStreams(7)
    config = NetworkConfig(latency_model=UniformLatency(0.01, 0.03))
    network = Network(sim, rngs.stream("network"), config)
    # No samples yet: the model nominal (mean one-way 0.02 -> RTT 0.04).
    assert network.observed_rtt() == pytest.approx(0.04)
    for _ in range(Network._RTT_WARMUP_SAMPLES):
        network._latency("a", "b")
    observed = network.observed_rtt()
    assert 0.02 <= observed <= 0.06
    assert network.stats.mean_latency() == pytest.approx(observed / 2.0)


def test_lan_wan_nominal_latency_weights_cross_site_probability():
    model = LanWanLatency(sites=4)
    lan = model.lan.nominal_latency()
    wan = model.wan.nominal_latency()
    assert model.nominal_latency() == pytest.approx(0.75 * wan + 0.25 * lan)
    assert LanWanLatency(sites=1).nominal_latency() == pytest.approx(lan)


# --------------------------------------------------------------------------- redirect cache
def test_backward_distance_wraps_and_never_returns_zero():
    assert backward_distance(100.0, 90.0, 1000.0) == 10.0
    assert backward_distance(50.0, 900.0, 1000.0) == 150.0  # wrap
    assert backward_distance(70.0, 70.0, 1000.0) == 1000.0  # self -> full circle


def test_redirect_cache_returns_closest_predecessor():
    cache = RedirectCache(size=8, ttl=30.0)
    cache.record("a", 100.0, now=0.0)
    cache.record("b", 180.0, now=0.0)
    cache.record("c", 240.0, now=0.0)
    assert cache.lookup(200.0, 1000.0, now=1.0) == ("b", 180.0)
    # Wrap-around: the closest predecessor of a small value is the largest one.
    assert cache.lookup(50.0, 1000.0, now=1.0) == ("c", 240.0)
    # Excluded peers are skipped.
    assert cache.lookup(200.0, 1000.0, now=1.0, exclude=("b",)) == ("a", 100.0)


def test_redirect_cache_expires_entries_by_ttl():
    cache = RedirectCache(size=8, ttl=10.0)
    cache.record("a", 100.0, now=0.0)
    assert cache.lookup(200.0, 1000.0, now=5.0) == ("a", 100.0)
    assert cache.lookup(200.0, 1000.0, now=20.0) is None
    assert len(cache) == 0  # expired entries are pruned on lookup


def test_redirect_cache_evicts_oldest_beyond_size():
    cache = RedirectCache(size=2, ttl=100.0)
    cache.record("a", 10.0, now=0.0)
    cache.record("b", 20.0, now=1.0)
    cache.record("a", 11.0, now=2.0)  # re-record refreshes (and re-values) a
    cache.record("c", 30.0, now=3.0)  # evicts b (oldest observation)
    assert len(cache) == 2
    assert cache.lookup(25.0, 1000.0, now=4.0) == ("a", 11.0)
    # "b" was evicted: with "a" excluded the only candidate left is "c".
    assert cache.lookup(21.0, 1000.0, now=4.0, exclude=("a",)) == ("c", 30.0)
    assert cache.lookup(21.0, 1000.0, now=4.0, exclude=("a", "c")) is None


def test_redirect_cache_forget_drops_entries():
    cache = RedirectCache(size=4, ttl=100.0)
    cache.record("a", 10.0, now=0.0)
    cache.forget("a")
    assert cache.lookup(20.0, 1000.0, now=0.0) is None
    cache.forget("never-seen")  # must not raise


def test_redirect_cache_rejects_nonsense_parameters():
    with pytest.raises(ValueError):
        RedirectCache(size=0, ttl=10.0)
    with pytest.raises(ValueError):
        RedirectCache(size=4, ttl=0.0)


# --------------------------------------------------------------------------- policy + spec resolution
def test_policy_factory_resolves_presets_and_overrides():
    fixed = maintenance_policy_from_params("fixed")
    assert fixed == FIXED_MAINTENANCE
    adaptive = maintenance_policy_from_params("adaptive")
    assert adaptive.validation == "adaptive"
    assert adaptive.cadence == "rtt_scaled"
    assert adaptive.redirect_cache_size > 0
    tweaked = maintenance_policy_from_params("adaptive", redirect_cache_size=0)
    assert tweaked.redirect_cache_size == 0
    assert tweaked.validation == "adaptive"


def test_policy_factory_rejects_unknown_names_and_params():
    with pytest.raises(ValueError, match="unknown maintenance policy"):
        maintenance_policy_from_params("bogus")
    with pytest.raises(ValueError, match="unknown maintenance parameters"):
        maintenance_policy_from_params("adaptive", not_a_knob=1)
    with pytest.raises(ValueError):
        maintenance_policy_from_params("adaptive", backoff_growth=0.5)


def test_policy_validation_controller_shapes():
    policy = MaintenancePolicy(validation="adaptive", backoff_max=8.0)
    controller = policy.validation_controller(4.0)
    assert isinstance(controller, AdaptiveCadence)
    assert controller.max_factor == 8.0
    assert isinstance(FIXED_MAINTENANCE.validation_controller(4.0), FixedCadence)


def test_policy_router_controller_shapes():
    policy = MaintenancePolicy(router="adaptive", router_backoff_max=6.0)
    controller = policy.router_controller(16.0)
    assert isinstance(controller, AdaptiveCadence)
    assert controller.max_factor == 6.0
    assert controller.base == 16.0
    assert isinstance(FIXED_MAINTENANCE.router_controller(16.0), FixedCadence)


def test_adaptive_preset_enables_router_and_freshness():
    adaptive = maintenance_policy_from_params("adaptive")
    assert adaptive.router == "adaptive"
    assert adaptive.freshness_factor > 0
    # The fixed policy keeps both mechanisms off.
    assert FIXED_MAINTENANCE.router == "fixed"
    assert FIXED_MAINTENANCE.freshness_factor == 0.0
    assert FIXED_MAINTENANCE.validation_freshness(8.0) == 0.0
    assert adaptive.validation_freshness(8.0) == adaptive.freshness_factor * 8.0


def test_policy_rejects_bad_router_and_freshness_settings():
    with pytest.raises(ValueError, match="unknown router mode"):
        MaintenancePolicy(router="bogus").validate()
    with pytest.raises(ValueError, match="freshness_factor"):
        MaintenancePolicy(freshness_factor=-1.0).validate()
    with pytest.raises(ValueError, match="router_backoff_max"):
        MaintenancePolicy(router_backoff_max=0.5).validate()


def test_policy_maintenance_interval_fixed_returns_plain_float():
    assert FIXED_MAINTENANCE.maintenance_interval(4.0, lambda: 0.1) == 4.0
    interval = MaintenancePolicy(cadence="rtt_scaled").maintenance_interval(4.0, lambda: 0.1)
    assert callable(interval)
    assert interval() == 2.0  # WAN round trip -> floor 0.5


def test_maintenance_spec_resolves_into_index_config():
    spec = MaintenanceSpec(policy="adaptive", params={"backoff_max": 6.0})
    policy = spec.build_policy()
    assert policy.backoff_max == 6.0
    assert MaintenanceSpec().build_policy() is None
    with pytest.raises(ValueError, match="unknown maintenance policy"):
        MaintenanceSpec(policy="bogus").build_policy()


def test_index_config_carries_and_validates_the_policy():
    config = default_config(maintenance=maintenance_policy_from_params("adaptive"))
    assert config.maintenance_policy.validation == "adaptive"
    # The default config falls back to the fixed policy object.
    assert default_config().maintenance_policy is FIXED_MAINTENANCE
    with pytest.raises(ValueError):
        default_config(maintenance=MaintenancePolicy(validation="bogus"))


# --------------------------------------------------------------------------- Node.every with callable periods
def test_node_every_accepts_a_callable_period():
    sim = Simulator()
    rngs = RngStreams(3)
    network = Network(sim, rngs.stream("network"))
    node = Node(sim, network, "n1")
    cadence = AdaptiveCadence(1.0, growth=2.0, max_factor=4.0, success_threshold=1)
    ticks = []

    def action():
        ticks.append(sim.now)
        cadence.note_success()  # every round doubles the next interval

    node.every(cadence.interval, action, name="test-loop")
    sim.run(until=16.0)
    # Rounds at 1, then +2, +4, +4 (capped), ... -> 1, 3, 7, 11, 15.
    assert ticks == [1.0, 3.0, 7.0, 11.0, 15.0]


def test_node_every_float_period_unchanged():
    sim = Simulator()
    rngs = RngStreams(3)
    network = Network(sim, rngs.stream("network"))
    node = Node(sim, network, "n1")
    ticks = []
    node.every(2.0, lambda: ticks.append(sim.now), name="fixed-loop")
    sim.run(until=7.0)
    assert ticks == [2.0, 4.0, 6.0]
