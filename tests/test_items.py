"""Unit and property-based tests for items and the sorted item store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.items import Item, ItemStore, items_from_wire, items_to_wire
from repro.datastore.ranges import CircularRange


def test_item_wire_round_trip():
    item = Item(12.5, payload={"name": "object"})
    assert Item.from_wire(item.to_wire()) == item
    assert items_from_wire(items_to_wire([item])) == [item]


def test_add_and_len():
    store = ItemStore()
    assert store.add(Item(1.0))
    assert store.add(Item(2.0))
    assert not store.add(Item(1.0))  # duplicate key rejected
    assert len(store) == 2
    assert 1.0 in store
    assert 3.0 not in store


def test_remove_returns_item():
    store = ItemStore([Item(1.0, "a"), Item(2.0, "b")])
    removed = store.remove(1.0)
    assert removed.payload == "a"
    assert store.remove(1.0) is None
    assert store.keys() == [2.0]


def test_iteration_is_sorted():
    store = ItemStore([Item(3.0), Item(1.0), Item(2.0)])
    assert [item.skv for item in store] == [1.0, 2.0, 3.0]
    assert store.keys() == [1.0, 2.0, 3.0]


def test_items_in_interval_half_open():
    store = ItemStore([Item(float(k)) for k in range(1, 11)])
    selected = store.items_in_interval(3.0, 7.0)
    assert [item.skv for item in selected] == [4.0, 5.0, 6.0, 7.0]
    assert store.items_in_interval(7.0, 3.0) == []


def test_items_in_wrapping_range():
    store = ItemStore([Item(float(k)) for k in (5, 50, 500, 5000, 9500)])
    crange = CircularRange(9000.0, 100.0)
    assert [item.skv for item in store.items_in_range(crange)] == [5.0, 50.0, 9500.0]


def test_items_in_full_range():
    store = ItemStore([Item(1.0), Item(2.0)])
    assert len(store.items_in_range(CircularRange(0, 0, full=True))) == 2


def test_split_lower_half():
    store = ItemStore([Item(float(k)) for k in range(1, 8)])
    split_key, lower = store.split_lower_half()
    assert split_key == 4.0
    assert [item.skv for item in lower] == [1.0, 2.0, 3.0, 4.0]


def test_split_lower_half_requires_two_items():
    with pytest.raises(ValueError):
        ItemStore([Item(1.0)]).split_lower_half()


def test_take_lowest_removes_items():
    store = ItemStore([Item(float(k)) for k in range(1, 6)])
    taken = store.take_lowest(2)
    assert [item.skv for item in taken] == [1.0, 2.0]
    assert store.keys() == [3.0, 4.0, 5.0]


def test_remove_interval():
    store = ItemStore([Item(float(k)) for k in range(1, 8)])
    removed = store.remove_interval(2.0, 5.0)
    assert [item.skv for item in removed] == [3.0, 4.0, 5.0]
    assert store.keys() == [1.0, 2.0, 6.0, 7.0]


def test_remove_outside_range():
    store = ItemStore([Item(float(k)) for k in range(1, 8)])
    removed = store.remove_outside_range(CircularRange(2.0, 5.0))
    assert sorted(item.skv for item in removed) == [1.0, 2.0, 6.0, 7.0]
    assert store.keys() == [3.0, 4.0, 5.0]


def test_clear():
    store = ItemStore([Item(1.0)])
    store.clear()
    assert len(store) == 0


# --------------------------------------------------------------------------- properties
key_lists = st.lists(
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False),
    unique=True,
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(keys=key_lists)
def test_property_keys_always_sorted(keys):
    store = ItemStore(Item(key) for key in keys)
    assert store.keys() == sorted(keys)


@settings(max_examples=150, deadline=None)
@given(keys=key_lists, lo=st.floats(0, 10_000), hi=st.floats(0, 10_000))
def test_property_interval_query_matches_filter(keys, lo, hi):
    store = ItemStore(Item(key) for key in keys)
    if lo > hi:
        lo, hi = hi, lo
    result = {item.skv for item in store.items_in_interval(lo, hi)}
    assert result == {key for key in keys if lo < key <= hi}


@settings(max_examples=150, deadline=None)
@given(keys=key_lists)
def test_property_add_remove_round_trip(keys):
    store = ItemStore()
    for key in keys:
        store.add(Item(key))
    for key in keys:
        assert store.remove(key) is not None
    assert len(store) == 0


@settings(max_examples=100, deadline=None)
@given(keys=key_lists)
def test_property_split_preserves_items(keys):
    if len(keys) < 2:
        return
    store = ItemStore(Item(key) for key in keys)
    split_key, lower = store.split_lower_half()
    lower_keys = {item.skv for item in lower}
    assert lower_keys == {key for key in keys if key <= split_key}
    assert split_key in lower_keys
