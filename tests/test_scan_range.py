"""Tests for range queries: the scanRange primitive and the naive baseline."""

import pytest

from repro.core.correctness import (
    ItemTimeline,
    check_query_result,
    check_scan_range_correctness,
)
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=71, peers=9)


def expected_keys(keys, lb, ub):
    return sorted(k for k in keys if lb < k <= ub)


def test_scan_query_returns_exactly_matching_items(cluster):
    index, keys = cluster
    lb, ub = keys[5], keys[30]
    result = index.range_query_now(lb, ub)
    assert result["complete"]
    assert result["keys"] == expected_keys(keys, lb, ub)


def test_scan_query_lower_bound_is_exclusive_upper_inclusive(cluster):
    index, keys = cluster
    lb, ub = keys[2], keys[4]
    result = index.range_query_now(lb, ub)
    assert lb not in result["keys"]
    assert ub in result["keys"]


def test_scan_query_spanning_everything(cluster):
    index, keys = cluster
    result = index.range_query_now(0.0, index.config.key_space)
    assert set(result["keys"]) == set(keys)
    assert result["hops"] >= len(index.ring_members()) - 1


def test_scan_query_with_no_matches(cluster):
    index, keys = cluster
    result = index.range_query_now(keys[7] + 0.01, keys[8] - 0.01)
    assert result["keys"] == []
    assert result["complete"]


def test_scan_histories_satisfy_definition_6(cluster):
    index, keys = cluster
    for offset in range(0, 30, 10):
        index.range_query_now(keys[offset], keys[offset + 8])
        index.run(0.5)
    assert check_scan_range_correctness(index.history.history()).ok


def test_scan_queries_satisfy_definition_4(cluster):
    index, keys = cluster
    lb, ub = keys[3], keys[40]
    index.range_query_now(lb, ub)
    timeline = ItemTimeline(index.history.history())
    record = index.query_records[-1]
    assert check_query_result(timeline, record).ok


def test_naive_query_on_stable_system_is_also_correct(cluster):
    index, keys = cluster
    peer = index.ring_members()[0]
    lb, ub = keys[5], keys[25]
    result = index.run_process(peer.queries.query(lb, ub, strategy="naive"))
    assert sorted(result["keys"]) == expected_keys(keys, lb, ub)


def test_scan_and_naive_report_similar_hops(cluster):
    index, keys = cluster
    peer = index.ring_members()[0]
    lb, ub = keys[5], keys[35]
    scan = index.run_process(peer.queries.query(lb, ub, strategy="scan"))
    naive = index.run_process(peer.queries.query(lb, ub, strategy="naive"))
    assert abs(scan["hops"] - naive["hops"]) <= 2


def test_query_rejects_unknown_strategy(cluster):
    index, keys = cluster
    peer = index.ring_members()[0]
    with pytest.raises(ValueError):
        index.run_process(peer.queries.query(keys[5], keys[25], strategy="psychic"))


def test_deprecated_entry_points_warn_and_still_work(cluster):
    """The three legacy entry points stay as shims: warn, then delegate."""
    index, keys = cluster
    peer = index.ring_members()[0]
    lb, ub = keys[5], keys[25]
    for name in ("range_query", "range_query_scan", "range_query_naive"):
        with pytest.warns(DeprecationWarning, match=name):
            result = index.run_process(getattr(peer.queries, name)(lb, ub))
        assert sorted(result["keys"]) == expected_keys(keys, lb, ub)


def test_forward_target_prunes_successors_inside_the_scanned_window(cluster):
    """Window pruning: successors whose whole arc lies at or below the
    watermark are skipped without paying a hop."""
    from repro.ring.entries import JOINED

    index, _keys = cluster
    # The lowest-value peer sees an ascending successor list (no wrap), which
    # makes arc attribution in the assertion straightforward.
    peer = min(index.ring_members(), key=lambda p: p.ring.value)
    entries = [
        entry
        for entry in peer.ring.successor_entries()
        if entry.address != peer.address and entry.state == JOINED
    ]
    assert len(entries) >= 3, "settled 9-peer ring must expose several successors"
    before = index.metrics.count("scan_window_pruned")
    # Watermark exactly at the second successor's upper bound: both leading
    # arcs are fully scanned, the third entry is the first useful hop.
    target = peer.queries._forward_target(entries[1].value)
    assert target == entries[2].address
    assert index.metrics.count("scan_window_pruned") > before
    # A watermark below every arc prunes nothing: first successor wins.
    assert peer.queries._forward_target(peer.ring.value) == entries[0].address


def test_scan_query_correct_during_concurrent_churn():
    index, keys = build_cluster(seed=72, peers=9)
    rng = index.rngs.stream("churn-test")

    def churn():
        while True:
            yield index.sim.timeout(0.3)
            victim = rng.choice(keys)
            yield from index.delete_item(victim)
            yield index.sim.timeout(0.3)
            yield from index.insert_item(victim)

    index.sim.process(churn())
    for _ in range(6):
        lb, ub = keys[4], keys[44]
        index.range_query_now(lb, ub)
        index.run(1.5)
    timeline = ItemTimeline(index.history.history())
    for record in index.query_records[-6:]:
        assert check_query_result(timeline, record).ok


def test_scan_query_survives_peer_failure_mid_stream():
    index, keys = build_cluster(seed=73, peers=9)
    # Fail a peer, then immediately query a range that crosses its keys.
    victim = sorted(index.ring_members(), key=lambda p: p.ring.value)[3]
    index.fail_peer(victim.address)
    index.run(30.0)  # allow failure detection and replica revival
    result = index.range_query_now(keys[0], keys[-1])
    assert result["complete"]
    assert set(result["keys"]) == set(expected_keys(keys, keys[0], keys[-1]))
