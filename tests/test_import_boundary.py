"""Layer-boundary enforcement: protocol code never imports transport internals.

The transport contract (docs/ARCHITECTURE.md, "Contract: transports") allows
protocol layers -- ring, data store, replication, router, core, and the peer
composition -- to depend only on :mod:`repro.transport` (the Endpoint base
class, RPC errors, the Transport surface) and on the substrate-independent
engine primitives re-exported by :mod:`repro.sim` (Event, Interrupt, RWLock,
...).  Importing ``repro.sim.network`` or ``repro.sim.node`` directly would
couple protocol semantics to one delivery substrate and silently break the
asyncio transport; only the transport package itself and the composition
root (``repro.index.pring`` via ``make_transport``) may touch those modules.

Enforced by walking the AST of every protocol-layer module: no ``import`` or
``from ... import`` statement may resolve to a forbidden module.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

# Every module in these locations is protocol-layer code: substrate-blind by
# contract, reachable only through the transport surface.
PROTOCOL_LAYERS = (
    "ring",
    "datastore",
    "replication",
    "router",
    "core",
    "serve",
    "index/peer.py",
)

# Modules the protocol layers must never name.  ``repro.sim`` itself stays
# importable (engine primitives such as Event/Interrupt/RWLock are
# substrate-independent), but the sim-specific delivery machinery is not.
FORBIDDEN = ("repro.sim.network", "repro.sim.node")


def _protocol_modules():
    for entry in PROTOCOL_LAYERS:
        path = SRC / entry
        if path.is_file():
            yield path
        else:
            yield from sorted(path.rglob("*.py"))


def _imported_modules(path: Path):
    """Every module name an ``import``/``from-import`` in ``path`` resolves to."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.module, node.lineno
            # ``from repro.sim import network`` smuggles the same dependency
            # through the attribute position; resolve those too.
            for alias in node.names:
                yield f"{node.module}.{alias.name}", node.lineno


@pytest.mark.parametrize(
    "path", list(_protocol_modules()), ids=lambda p: str(p.relative_to(SRC))
)
def test_protocol_layer_respects_transport_boundary(path):
    violations = [
        f"{path.relative_to(SRC)}:{lineno}: imports {module}"
        for module, lineno in _imported_modules(path)
        if any(module == bad or module.startswith(bad + ".") for bad in FORBIDDEN)
    ]
    assert not violations, "\n".join(violations)


def test_boundary_test_covers_real_modules():
    # Guard against the walk silently matching nothing after a reorganisation.
    modules = list(_protocol_modules())
    assert len(modules) >= 10, [str(p) for p in modules]
