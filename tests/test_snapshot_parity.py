"""Resume-vs-full-run parity: a warm start is the *exact* straight-through run.

The snapshot machinery promises bit-identical end states two ways:

* a **cold-with-capture** run (first run against an empty snapshot cache) is
  deterministic per ``(spec, seed, engine)``: the parked-instant barrier
  executes events exactly as a straight-through run would, though when the
  boundary instant itself is not parked it may advance the world slightly
  before capturing -- so a snapshot run's trace can differ marginally from a
  cache-less run's (it happens on scale_300 seed 1, nowhere else in this
  matrix);
* a **warm** run (second run against the populated cache) restores the
  pre-boundary world from disk and replays only the post-boundary phases,
  finishing in the *exact* end state of the cold-with-capture run -- down to
  ``events_processed`` and the per-method RPC profile.

Both are pinned here against end states frozen from cold-with-capture runs
(``tests/data/snapshot_parity_baseline_*.json``), on both event engines for
the smoke matrix.  A plain run (no snapshot directory) is untouched by this
PR -- ``test_plain_run_unchanged_by_capture`` pins that, and the engine- and
transport-parity baselines (all frozen from plain runs) double as the
regression net.  The smoke matrix (seeds 0, 1) runs in tier-1; the scale_300
fixed + adaptive matrix (seeds 0..2) runs under ``REPRO_PARITY_FULL=1`` like
the engine- and transport-parity splits.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.scenarios import get_scenario, run_spec
from repro.sim.engine import ENGINE_NAMES
from repro.snapshot import SNAPSHOT_SUFFIX

DATA = Path(__file__).parent / "data"

# sim_time_s was frozen rounded to 6 decimals; every other pinned field is an
# exact integer (or an integer-valued dict) and must match bit-for-bit.
_ROUNDED_FIELDS = {"sim_time_s": 6}


def _frozen_cells(name: str):
    """``(scenario, seed, frozen_state)`` triples from a baseline file."""
    for key, state in sorted(json.loads((DATA / name).read_text()).items()):
        scenario, _, seed = key.rpartition("@")
        yield scenario, int(seed), state


def _end_state(result: dict, frozen: dict) -> dict:
    return {
        field: round(result[field], digits)
        if (digits := _ROUNDED_FIELDS.get(field))
        else result[field]
        for field in frozen
    }


def _assert_resume_parity(scenario, seed, engine, frozen, tmp_path, monkeypatch):
    """Cold-with-capture then warm resume; both must equal the frozen plain run."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
    spec = get_scenario(scenario)
    if engine != spec.engine:
        spec = spec.with_(engine=engine)
    snapshot_dir = tmp_path / "snapshots"

    cold = run_spec(spec, seed=seed, snapshot_dir=str(snapshot_dir))
    assert not cold.warm_start
    written = list(snapshot_dir.glob(f"*{SNAPSHOT_SUFFIX}"))
    assert len(written) == 1, "the cold run must capture exactly one snapshot"
    assert f"-{engine}" in written[0].name  # the cache key carries the engine

    warm = run_spec(spec, seed=seed, snapshot_dir=str(snapshot_dir))
    assert warm.warm_start, "the second run must resume from the snapshot"

    for label, result in (("cold-with-capture", cold), ("warm resume", warm)):
        live = _end_state(result.as_dict(), frozen)
        assert live == frozen, (
            f"{scenario}[seed={seed}, engine={engine}]: {label} diverged from "
            f"the frozen straight-through run\n  frozen: {frozen}\n  live:   {live}"
        )


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize(
    "scenario,seed,frozen",
    list(_frozen_cells("snapshot_parity_baseline_smoke.json")),
    ids=lambda value: value if isinstance(value, str) else None,
)
def test_smoke_resume_parity(scenario, seed, frozen, engine, tmp_path, monkeypatch):
    _assert_resume_parity(scenario, seed, engine, frozen, tmp_path, monkeypatch)


FULL_MATRIX = bool(os.environ.get("REPRO_PARITY_FULL"))


@pytest.mark.skipif(
    not FULL_MATRIX, reason="set REPRO_PARITY_FULL=1 for the scale_300 matrix"
)
@pytest.mark.parametrize(
    "scenario,seed,frozen",
    list(_frozen_cells("snapshot_parity_baseline_scale300.json")),
    ids=lambda value: value if isinstance(value, str) else None,
)
def test_scale_300_resume_parity(scenario, seed, frozen, tmp_path, monkeypatch):
    spec = get_scenario(scenario)
    _assert_resume_parity(scenario, seed, spec.engine, frozen, tmp_path, monkeypatch)


def test_plain_run_unchanged_by_capture(tmp_path, monkeypatch):
    """On smoke the boundary instant is already parked, so enabling the cache
    does not even shift the trace: plain == cold-with-capture, bit for bit."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    spec = get_scenario("smoke")
    plain = run_spec(spec, seed=0)
    cold = run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
    assert plain.events_processed == cold.events_processed
    assert plain.sim_time_s == cold.sim_time_s
    assert plain.rpc_per_method == cold.rpc_per_method


def test_warm_result_is_flagged(tmp_path, monkeypatch):
    """``warm_start`` in the result dict distinguishes resumed cells in BENCH
    envelopes (and is the only field a warm run may differ on)."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    spec = get_scenario("smoke")
    cold = run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
    warm = run_spec(spec, seed=0, snapshot_dir=str(tmp_path))
    cold_dict, warm_dict = cold.as_dict(), warm.as_dict()
    assert (cold_dict.pop("warm_start"), warm_dict.pop("warm_start")) == (False, True)
    # Everything else -- including wall-clock-independent per-phase deltas for
    # the *post-boundary* phases -- is identical; drop the wall-clock fields
    # and the pre-boundary phase records the warm run replays from the capture.
    for record in (cold_dict, warm_dict):
        record.pop("wall_clock_s")
        record.pop("events_per_wall_s")
        for phase in record["phases"]:
            phase.pop("wait_s")
            phase.pop("wall_clock_s", None)
    assert warm_dict == cold_dict
