"""End-to-end integration tests of the full index (PEPPER protocols)."""

import pytest

from repro import (
    PRingIndex,
    check_consistent_successor_pointers,
    check_item_availability,
    check_ring_connectivity,
    check_scan_range_correctness,
    count_lost_items,
    default_config,
)
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=81, peers=10)


def test_cluster_grows_via_splits(cluster):
    index, keys = cluster
    assert len(index.ring_members()) > 3
    assert index.total_stored_items() == len(keys)


def test_all_invariants_hold_after_build(cluster):
    index, _keys = cluster
    assert check_consistent_successor_pointers(index.live_peers()).ok
    assert check_ring_connectivity(index.live_peers()).ok
    assert check_scan_range_correctness(index.history.history()).ok
    assert check_item_availability(index.history.history()).ok
    assert count_lost_items(index.history.history(), index.live_peers()) == []


def test_point_lookup_via_tiny_range(cluster):
    index, keys = cluster
    key = keys[17]
    result = index.range_query_now(key - 1e-6, key)
    assert result["keys"] == [key]


def test_insert_route_and_query_round_trip(cluster):
    index, keys = cluster
    new_key = 4321.125
    assert index.insert_item_now(new_key, payload="late")
    index.run(2.0)
    result = index.range_query_now(new_key - 1.0, new_key + 1.0)
    assert new_key in result["keys"]
    payloads = [item.payload for item in result["items"] if item.skv == new_key]
    assert payloads == ["late"]
    assert index.delete_item_now(new_key)


def test_delete_then_query_does_not_return_item(cluster):
    index, keys = cluster
    victim = keys[22]
    assert index.delete_item_now(victim)
    index.run(2.0)
    result = index.range_query_now(victim - 1.0, victim + 1.0)
    assert victim not in result["keys"]
    # Re-insert to keep the module-scoped cluster intact for other tests.
    assert index.insert_item_now(victim, payload="restored")
    index.run(2.0)


def test_queries_from_every_peer_agree(cluster):
    index, keys = cluster
    lb, ub = keys[10], keys[35]
    expected = sorted(k for k in keys if lb < k <= ub)
    for peer in index.ring_members()[:4]:
        result = index.range_query_now(lb, ub, via=peer.address)
        assert result["keys"] == expected


def test_growth_then_more_load_keeps_invariants():
    index, keys = build_cluster(seed=82, peers=6)
    for _ in range(4):
        index.add_peer()
    extra = [k + 3.0 for k in keys[:30]]
    for key in extra:
        index.insert_item_now(key)
        index.run(0.4)
    index.run(25.0)
    assert index.total_stored_items() == len(keys) + len(extra)
    assert check_consistent_successor_pointers(index.live_peers()).ok
    assert check_ring_connectivity(index.live_peers()).ok


def test_failures_during_queries_do_not_lose_committed_items():
    index, keys = build_cluster(seed=83, peers=10)
    index.run(2 * index.config.replication_refresh_period)
    victims = [p.address for p in index.ring_members()[2:4]]
    for victim in victims:
        index.fail_peer(victim)
    index.run(50.0)
    result = index.range_query_now(0.0, index.config.key_space)
    assert set(result["keys"]) == set(keys)
    assert count_lost_items(index.history.history(), index.live_peers()) == []


def test_double_bootstrap_rejected():
    index = PRingIndex(default_config(seed=84))
    index.bootstrap()
    with pytest.raises(Exception):
        index.bootstrap()


def test_entry_peer_requires_a_ring():
    index = PRingIndex(default_config(seed=85))
    with pytest.raises(Exception):
        index.range_query_now(0.0, 1.0)


def test_metrics_capture_protocol_operations(cluster):
    index, _keys = cluster
    assert index.metrics.count("insert_succ") >= len(index.ring_members()) - 1
    assert index.metrics.count("range_query") >= 1
    assert index.network.stats.rpc_calls > 0
