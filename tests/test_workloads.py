"""Tests for workload generators (items, churn, queries)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.churn import FAIL, JOIN, ChurnEvent, ChurnSchedule, failure_schedule, join_schedule
from repro.workloads.items import ItemWorkload, skewed_keys, uniform_keys
from repro.workloads.queries import QueryWorkload, range_for_hops


def test_uniform_keys_unique_sorted_in_bounds():
    keys = uniform_keys(200, 10_000.0, random.Random(1))
    assert len(keys) == 200
    assert keys == sorted(set(keys))
    assert all(0 < key < 10_000.0 for key in keys)


def test_skewed_keys_concentrate_in_hot_region():
    keys = skewed_keys(500, 10_000.0, random.Random(2), hot_fraction=0.8, hot_region=0.1)
    hot = [key for key in keys if key <= 1_000.0]
    assert len(hot) > 300


def test_skewed_keys_validation():
    with pytest.raises(ValueError):
        skewed_keys(10, 10_000.0, random.Random(0), hot_region=0.0)


def test_item_workload_insert_events_respect_rate():
    workload = ItemWorkload([1.0, 2.0, 3.0], insert_rate=2.0, start_time=10.0)
    events = list(workload.insert_events())
    assert [time for time, _key, _payload in events] == [10.0, 10.5, 11.0]
    assert workload.duration == pytest.approx(1.5)


def test_item_workload_delete_events():
    workload = ItemWorkload([1.0], delete_keys=[5.0, 6.0], delete_rate=1.0)
    events = list(workload.delete_events(after=100.0))
    assert events == [(100.0, 5.0), (101.0, 6.0)]


def test_churn_event_kind_validation():
    with pytest.raises(ValueError):
        ChurnEvent(0.0, "explode")


def test_join_schedule_spacing():
    schedule = join_schedule(5, period=3.0, start=1.0)
    times = [event.time for event in schedule]
    assert times == [1.0, 4.0, 7.0, 10.0, 13.0]
    assert all(event.kind == JOIN for event in schedule)
    assert schedule.duration == 13.0


def test_failure_schedule_rate():
    schedule = failure_schedule(10.0, 200.0, random.Random(3))
    assert len(schedule) == 20
    assert all(event.kind == FAIL for event in schedule)
    assert all(0.0 <= event.time <= 200.0 for event in schedule)


def test_failure_schedule_zero_rate_empty():
    assert len(failure_schedule(0.0, 100.0, random.Random(0))) == 0


def test_failure_schedule_short_duration_rounds_to_zero_events():
    # rate * duration / 100 < 0.5 rounds down to an empty schedule instead of
    # injecting a spurious failure into a short window.
    schedule = failure_schedule(2.0, 20.0, random.Random(7))
    assert len(schedule) == 0
    assert schedule.duration == 0.0
    assert list(schedule) == []


def test_schedules_merge():
    merged = join_schedule(2).merged_with(failure_schedule(5.0, 100.0, random.Random(1)))
    kinds = {event.kind for event in merged}
    assert kinds == {JOIN, FAIL}


def test_schedule_events_sorted_once_at_construction():
    schedule = ChurnSchedule(
        [ChurnEvent(5.0, JOIN), ChurnEvent(1.0, FAIL), ChurnEvent(3.0, JOIN)]
    )
    assert [event.time for event in schedule.events] == [1.0, 3.0, 5.0]
    # __iter__ yields the stored (already sorted) list, no per-iteration sort.
    assert list(schedule) == schedule.events


def test_merged_with_keeps_time_order_and_tie_stability():
    joins = ChurnSchedule([ChurnEvent(1.0, JOIN), ChurnEvent(4.0, JOIN)])
    fails = ChurnSchedule([ChurnEvent(0.5, FAIL), ChurnEvent(4.0, FAIL), ChurnEvent(9.0, FAIL)])
    merged = joins.merged_with(fails)
    times = [event.time for event in merged]
    assert times == sorted(times) == [0.5, 1.0, 4.0, 4.0, 9.0]
    # Stable at equal times: the receiver's event precedes the argument's.
    tied = [event.kind for event in merged if event.time == 4.0]
    assert tied == [JOIN, FAIL]
    assert merged.duration == 9.0


def test_query_workload_selectivity():
    workload = QueryWorkload(count=50, selectivity=0.05, key_space=10_000.0, seed=4)
    queries = workload.as_list()
    assert len(queries) == 50
    for lb, ub in queries:
        assert ub - lb == pytest.approx(500.0)
        assert 0.0 <= lb <= ub <= 10_000.0


def test_range_for_hops_anchored_at_peer_boundaries():
    values = [100.0, 200.0, 300.0, 400.0, 500.0]
    lb, ub = range_for_hops(2, values, 10_000.0, random.Random(5))
    assert lb in values and ub in values or (lb, ub) == (0.0, 10_000.0)
    assert lb < ub


def test_range_for_hops_whole_ring():
    values = [100.0, 200.0]
    assert range_for_hops(5, values, 10_000.0, random.Random(1)) == (0.0, 10_000.0)


def test_range_for_hops_requires_values():
    with pytest.raises(ValueError):
        range_for_hops(1, [], 10_000.0, random.Random(0))


@settings(max_examples=50, deadline=None)
@given(count=st.integers(min_value=1, max_value=100), seed=st.integers(0, 1000))
def test_property_uniform_keys_always_unique(count, seed):
    keys = uniform_keys(count, 10_000.0, random.Random(seed))
    assert len(set(keys)) == count


@settings(max_examples=50, deadline=None)
@given(rate=st.floats(min_value=0.5, max_value=20.0), duration=st.floats(min_value=10.0, max_value=500.0))
def test_property_failure_schedule_count_matches_rate(rate, duration):
    schedule = failure_schedule(rate, duration, random.Random(0))
    assert len(schedule) == int(round(rate * duration / 100.0))


# --------------------------------------------------------------------------- zipf keys
def test_zipf_keys_unique_sorted_in_bounds():
    from repro.workloads.items import zipf_keys

    keys = zipf_keys(300, 10_000.0, random.Random(7), alpha=1.1)
    assert len(keys) == 300
    assert keys == sorted(set(keys))
    assert all(0.0 < key < 10_000.0 for key in keys)


def test_zipf_keys_concentrate_on_popular_slices():
    from repro.workloads.items import zipf_keys

    keys = zipf_keys(500, 10_000.0, random.Random(8), alpha=1.2)
    first_decile = sum(1 for key in keys if key < 1_000.0)
    assert first_decile > len(keys) * 0.5


def test_zipf_keys_validation():
    from repro.workloads.items import zipf_keys

    with pytest.raises(ValueError):
        zipf_keys(10, 10_000.0, random.Random(0), alpha=0.0)
    with pytest.raises(ValueError):
        zipf_keys(10, 10_000.0, random.Random(0), bins=0)


def test_generate_keys_dispatches_by_name():
    from repro.workloads.items import generate_keys

    uniform = generate_keys("uniform", 20, 10_000.0, random.Random(1))
    zipf = generate_keys("zipf", 20, 10_000.0, random.Random(1), alpha=1.5)
    assert len(uniform) == len(zipf) == 20
    with pytest.raises(ValueError, match="unknown key distribution"):
        generate_keys("gaussian", 10, 10_000.0, random.Random(0))


# --------------------------------------------------------------------------- burst churn
def test_flash_crowd_schedule_burst_spacing():
    from repro.workloads.churn import flash_crowd_schedule

    schedule = flash_crowd_schedule(5, at=10.0, spacing=0.1)
    times = [event.time for event in schedule]
    assert times == [10.0, 10.1, 10.2, 10.3, 10.4]
    assert all(event.kind == JOIN for event in schedule)
    with pytest.raises(ValueError):
        flash_crowd_schedule(3, at=0.0, spacing=-1.0)


def test_correlated_failure_schedule_simultaneous():
    from repro.workloads.churn import correlated_failure_schedule

    schedule = correlated_failure_schedule(4, at=50.0)
    assert [event.time for event in schedule] == [50.0] * 4
    assert all(event.kind == FAIL for event in schedule)


def test_burst_schedules_merge_with_joins():
    from repro.workloads.churn import correlated_failure_schedule, flash_crowd_schedule

    merged = join_schedule(3, period=2.0).merged_with(
        flash_crowd_schedule(2, at=1.0)
    ).merged_with(correlated_failure_schedule(1, at=9.0))
    kinds = [event.kind for event in merged]
    assert kinds.count(JOIN) == 5 and kinds.count(FAIL) == 1
    assert [event.time for event in merged] == sorted(event.time for event in merged)


# --------------------------------------------------------------------------- query rng injection
def test_query_workload_uses_injected_rng():
    stream_a = random.Random(99)
    stream_b = random.Random(99)
    first = QueryWorkload(5, 0.01, 10_000.0, rng=stream_a).as_list()
    second = QueryWorkload(5, 0.01, 10_000.0, rng=stream_b).as_list()
    assert first == second
    # The injected stream takes precedence over the fallback seed.
    assert first != QueryWorkload(5, 0.01, 10_000.0, seed=0).as_list()
