"""Direct coverage of the pluggable latency models.

Constant / uniform / lan_wan were previously exercised only indirectly through
full simulations.  These tests pin down the properties the harness relies on:
seeded determinism (two equally seeded draws produce identical sequences),
boundedness (every sample stays inside the configured interval), and the
lan_wan site partition being a stable, pure function of the address.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.network import (
    LATENCY_MODELS,
    ConstantLatency,
    LanWanLatency,
    NetworkConfig,
    UniformLatency,
    latency_model_from_params,
)


# --------------------------------------------------------------------------- constant
def test_constant_latency_is_constant_and_rng_free():
    model = ConstantLatency(0.0042)
    assert [model.sample(None, "a", "b") for _ in range(10)] == [0.0042] * 10


def test_constant_latency_rejects_negative_values():
    with pytest.raises(ValueError):
        ConstantLatency(-0.001).validate()


# --------------------------------------------------------------------------- uniform
def test_uniform_latency_is_bounded():
    model = UniformLatency(0.002, 0.009)
    rng = random.Random(5)
    for _ in range(500):
        sample = model.sample(rng, "a", "b")
        assert 0.002 <= sample <= 0.009


def test_uniform_latency_is_seeded_deterministic():
    model = UniformLatency(0.001, 0.004)
    rng_a, rng_b = random.Random(99), random.Random(99)
    assert [model.sample(rng_a, "a", "b") for _ in range(50)] == [
        model.sample(rng_b, "a", "b") for _ in range(50)
    ]


def test_uniform_latency_degenerate_bounds_return_low():
    model = UniformLatency(0.003, 0.003)
    assert model.sample(random.Random(1), "a", "b") == 0.003


def test_uniform_latency_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        UniformLatency(0.005, 0.001).validate()
    with pytest.raises(ValueError):
        UniformLatency(-0.001, 0.002).validate()


# --------------------------------------------------------------------------- lan_wan
def test_lan_wan_site_assignment_is_stable_and_consistent():
    model = LanWanLatency(sites=4)
    addresses = [f"peer{i:03d}" for i in range(100)]
    first = {address: model.site_of(address) for address in addresses}
    # Pure function of the address: identical across calls and across instances.
    again = LanWanLatency(sites=4)
    for address in addresses:
        assert model.site_of(address) == first[address]
        assert again.site_of(address) == first[address]
        assert 0 <= first[address] < 4
    # With 100 addresses over 4 sites every site must be populated.
    assert set(first.values()) == {0, 1, 2, 3}


def test_lan_wan_same_site_draws_lan_cross_site_draws_wan():
    model = LanWanLatency(
        sites=3,
        lan=UniformLatency(0.0005, 0.003),
        wan=UniformLatency(0.02, 0.08),
    )
    rng = random.Random(23)
    addresses = [f"peer{i:03d}" for i in range(40)]
    checked_lan = checked_wan = 0
    for source in addresses[:10]:
        for destination in addresses:
            sample = model.sample(rng, source, destination)
            if model.site_of(source) == model.site_of(destination):
                assert 0.0005 <= sample <= 0.003
                checked_lan += 1
            else:
                assert 0.02 <= sample <= 0.08
                checked_wan += 1
    assert checked_lan > 0 and checked_wan > 0


def test_lan_wan_is_seeded_deterministic():
    model = LanWanLatency(sites=2)
    pairs = [(f"p{i}", f"p{i + 7}") for i in range(30)]
    rng_a, rng_b = random.Random(3), random.Random(3)
    assert [model.sample(rng_a, s, d) for s, d in pairs] == [
        model.sample(rng_b, s, d) for s, d in pairs
    ]


def test_lan_wan_rejects_zero_sites():
    with pytest.raises(ValueError):
        LanWanLatency(sites=0).validate()


def test_lan_wan_single_site_degenerates_to_pure_lan():
    model = LanWanLatency(
        sites=1,
        lan=UniformLatency(0.0005, 0.003),
        wan=UniformLatency(0.02, 0.08),
    )
    model.validate()
    rng = random.Random(11)
    addresses = [f"peer{i:03d}" for i in range(20)]
    for source in addresses:
        for destination in addresses:
            assert model.site_of(source) == 0 == model.site_of(destination)
            assert 0.0005 <= model.sample(rng, source, destination) <= 0.003


# --------------------------------------------------------------------------- flat-params factory
def test_latency_model_from_params_builds_each_model():
    constant = latency_model_from_params("constant", value=0.002)
    assert isinstance(constant, ConstantLatency) and constant.value == 0.002
    uniform = latency_model_from_params("uniform", low=0.001, high=0.004)
    assert isinstance(uniform, UniformLatency) and uniform.high == 0.004
    wan = latency_model_from_params(
        "lan_wan", sites=3, lan_low=0.001, lan_high=0.002, wan_low=0.05, wan_high=0.09
    )
    assert isinstance(wan, LanWanLatency)
    assert wan.sites == 3
    assert (wan.lan.low, wan.lan.high) == (0.001, 0.002)
    assert (wan.wan.low, wan.wan.high) == (0.05, 0.09)


def test_latency_model_from_params_defaults_and_errors():
    wan = latency_model_from_params("lan_wan")
    assert wan == LanWanLatency()
    with pytest.raises(ValueError, match="unknown latency model"):
        latency_model_from_params("satellite")
    with pytest.raises(ValueError, match="unknown lan_wan parameters"):
        latency_model_from_params("lan_wan", sites=2, bogus=1)
    with pytest.raises(ValueError):  # validation runs on the built model
        latency_model_from_params("constant", value=-1.0)


# --------------------------------------------------------------------------- config resolution
def test_registry_exposes_all_three_models():
    assert set(LATENCY_MODELS) == {"constant", "uniform", "lan_wan"}


def test_network_config_resolves_explicit_model_over_legacy_bounds():
    explicit = LanWanLatency(sites=2)
    config = NetworkConfig(latency_model=explicit)
    assert config.resolved_latency_model() is explicit
    legacy = NetworkConfig(latency_min=0.001, latency_max=0.002)
    assert isinstance(legacy.resolved_latency_model(), UniformLatency)
    degenerate = NetworkConfig(latency_min=0.001, latency_max=0.001)
    assert isinstance(degenerate.resolved_latency_model(), ConstantLatency)
