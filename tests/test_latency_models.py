"""Direct coverage of the pluggable latency models.

Constant / uniform / lan_wan were previously exercised only indirectly through
full simulations.  These tests pin down the properties the harness relies on:
seeded determinism (two equally seeded draws produce identical sequences),
boundedness (every sample stays inside the configured interval), and the
lan_wan site partition being a stable, pure function of the address.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.network import (
    LATENCY_MODELS,
    ConstantLatency,
    LanWanLatency,
    NetworkConfig,
    UniformLatency,
)


# --------------------------------------------------------------------------- constant
def test_constant_latency_is_constant_and_rng_free():
    model = ConstantLatency(0.0042)
    assert [model.sample(None, "a", "b") for _ in range(10)] == [0.0042] * 10


def test_constant_latency_rejects_negative_values():
    with pytest.raises(ValueError):
        ConstantLatency(-0.001).validate()


# --------------------------------------------------------------------------- uniform
def test_uniform_latency_is_bounded():
    model = UniformLatency(0.002, 0.009)
    rng = random.Random(5)
    for _ in range(500):
        sample = model.sample(rng, "a", "b")
        assert 0.002 <= sample <= 0.009


def test_uniform_latency_is_seeded_deterministic():
    model = UniformLatency(0.001, 0.004)
    rng_a, rng_b = random.Random(99), random.Random(99)
    assert [model.sample(rng_a, "a", "b") for _ in range(50)] == [
        model.sample(rng_b, "a", "b") for _ in range(50)
    ]


def test_uniform_latency_degenerate_bounds_return_low():
    model = UniformLatency(0.003, 0.003)
    assert model.sample(random.Random(1), "a", "b") == 0.003


def test_uniform_latency_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        UniformLatency(0.005, 0.001).validate()
    with pytest.raises(ValueError):
        UniformLatency(-0.001, 0.002).validate()


# --------------------------------------------------------------------------- lan_wan
def test_lan_wan_site_assignment_is_stable_and_consistent():
    model = LanWanLatency(sites=4)
    addresses = [f"peer{i:03d}" for i in range(100)]
    first = {address: model.site_of(address) for address in addresses}
    # Pure function of the address: identical across calls and across instances.
    again = LanWanLatency(sites=4)
    for address in addresses:
        assert model.site_of(address) == first[address]
        assert again.site_of(address) == first[address]
        assert 0 <= first[address] < 4
    # With 100 addresses over 4 sites every site must be populated.
    assert set(first.values()) == {0, 1, 2, 3}


def test_lan_wan_same_site_draws_lan_cross_site_draws_wan():
    model = LanWanLatency(
        sites=3,
        lan=UniformLatency(0.0005, 0.003),
        wan=UniformLatency(0.02, 0.08),
    )
    rng = random.Random(23)
    addresses = [f"peer{i:03d}" for i in range(40)]
    checked_lan = checked_wan = 0
    for source in addresses[:10]:
        for destination in addresses:
            sample = model.sample(rng, source, destination)
            if model.site_of(source) == model.site_of(destination):
                assert 0.0005 <= sample <= 0.003
                checked_lan += 1
            else:
                assert 0.02 <= sample <= 0.08
                checked_wan += 1
    assert checked_lan > 0 and checked_wan > 0


def test_lan_wan_is_seeded_deterministic():
    model = LanWanLatency(sites=2)
    pairs = [(f"p{i}", f"p{i + 7}") for i in range(30)]
    rng_a, rng_b = random.Random(3), random.Random(3)
    assert [model.sample(rng_a, s, d) for s, d in pairs] == [
        model.sample(rng_b, s, d) for s, d in pairs
    ]


def test_lan_wan_rejects_zero_sites():
    with pytest.raises(ValueError):
        LanWanLatency(sites=0).validate()


# --------------------------------------------------------------------------- config resolution
def test_registry_exposes_all_three_models():
    assert set(LATENCY_MODELS) == {"constant", "uniform", "lan_wan"}


def test_network_config_resolves_explicit_model_over_legacy_bounds():
    explicit = LanWanLatency(sites=2)
    config = NetworkConfig(latency_model=explicit)
    assert config.resolved_latency_model() is explicit
    legacy = NetworkConfig(latency_min=0.001, latency_max=0.002)
    assert isinstance(legacy.resolved_latency_model(), UniformLatency)
    degenerate = NetworkConfig(latency_min=0.001, latency_max=0.001)
    assert isinstance(degenerate.resolved_latency_model(), ConstantLatency)
