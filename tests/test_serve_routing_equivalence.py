"""Routing equivalence: every policy returns the primary's result set.

The serve layer's contract (docs/ARCHITECTURE.md, "Contract: serve layer") is
that ``replica_lb`` and ``cached`` are pure *routing* choices: they may move
reads off the primary, but with no writes between two queries they must return
exactly the result set the ``primary`` policy returns.  These tests drive a
churn schedule (alternating deletes and re-inserts of workload keys) and
compare the three policies' result sets at checkpoints throughout -- on both
event engines over the simulated transport, and over real asyncio sockets.

The checkpoint queries run back-to-back with churn quiescent, so exact
equality is required -- replication lag is not an excuse: a replica that
missed the latest push refuses the versioned read and the client falls back
to the primary.
"""

from __future__ import annotations

import pytest

from repro import PRingIndex, default_config
from repro.sim.engine import ENGINE_NAMES
from repro.transport.api import TRANSPORT_ENV_VAR
from tests.conftest import build_cluster

CHECK_ROUTINGS = ("replica_lb", "cached")


def _assert_equivalent(index, windows, context):
    """All routing policies agree with ``primary`` on every window."""
    for lb, ub in windows:
        primary = index.range_query_now(lb, ub, routing="primary")
        assert primary["complete"], (context, "primary")
        for routing in CHECK_ROUTINGS:
            other = index.range_query_now(lb, ub, routing=routing)
            assert other["complete"], (context, routing)
            assert other["keys"] == primary["keys"], (context, routing)


def _churn_step(index, rng, keys, live, step):
    """One schedule step: deletes drain the live set, inserts refill it."""
    dead = sorted(set(keys) - live)
    if dead and (step % 2 or len(live) <= len(keys) // 2):
        revived = rng.choice(dead)
        assert index.insert_item_now(revived)
        live.add(revived)
    else:
        victim = rng.choice(sorted(live))
        assert index.delete_item_now(victim)
        live.discard(victim)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_routing_equivalence_under_500_step_churn(engine):
    index, keys = build_cluster(seed=91, peers=9, engine=engine)
    rng = index.rngs.stream("equivalence-churn")
    live = set(keys)
    windows = [
        (keys[3], keys[-4]),  # wide: crosses most peers
        (keys[20], keys[26]),  # narrow: one or two owners
        (keys[0], keys[-1]),  # full workload span
    ]
    for step in range(500):
        _churn_step(index, rng, keys, live, step)
        index.run(0.05)
        if step % 50 == 49:
            _assert_equivalent(index, windows, (engine, step))
    # The schedule really exercised both directions of churn.
    assert live != set(keys) or len(live) == len(keys)
    assert index.metrics.count("serve_cache_invalidate") >= 1


def test_routing_equivalence_under_churn_asyncio(monkeypatch):
    """The same contract holds over real sockets (smaller schedule: the
    asyncio substrate runs on the wall clock)."""
    monkeypatch.delenv(TRANSPORT_ENV_VAR, raising=False)
    config = default_config(seed=92, transport="asyncio")
    config.network.rpc_timeout = 2.0
    index = PRingIndex(config)
    try:
        index.bootstrap()
        for _ in range(3):
            index.add_peer()
        keys = [float(k) for k in range(100, 100 + 12 * 40, 40)]
        for key in keys:
            assert index.insert_item_now(key, payload=f"payload-{key}")
        index.run(1.5)
        rng = index.rngs.stream("equivalence-churn")
        live = set(keys)
        windows = [(keys[1], keys[-2]), (keys[0], keys[-1])]
        for step in range(12):
            _churn_step(index, rng, keys, live, step)
            if step % 4 == 3:
                _assert_equivalent(index, windows, step)
    finally:
        index.shutdown()
