"""Tests for the stranded-item shed pass and the reachability audit.

A half-completed split leaves copies below the holder's effective ring
boundary: ``total_stored_items()`` counts them but ``scan_range`` never
serves them.  The shed pass must route every such copy to its responsible
owner (store-then-delete with a version-checked ack) so that the
``items_reachable`` audit matches ``items_stored`` again.

Every scenario runs on both event engines (the heap/wheel parity contract
from the engine PR): the shed protocol must behave identically on either.
"""

import pytest

from repro.core.correctness import audit_reachability
from repro.datastore.items import Item
from tests.conftest import build_cluster


@pytest.fixture(params=["heap", "wheel"], ids=["heap", "wheel"])
def engine(request):
    return request.param


def _forge_stranded_copy(index):
    """Plant a copy below a member's range, as a half-completed split would.

    Returns ``(holder, stray_key)``: the key belongs to the holder's
    predecessor on the ring, but the copy sits in the holder's store.
    """
    members = index.ring_members()
    assert len(members) >= 3
    # A member with a bounded range whose lower neighbourhood is inside the
    # predecessor's range.
    holder = next(peer for peer in members[1:] if not peer.store.range.full)
    low = holder.store.range.low
    stray_key = (low - 7.5) % index.config.key_space
    assert not holder.store.owns_key(stray_key)
    assert holder.store.items.add(Item(stray_key, payload="stray"))
    return holder, stray_key


def test_stranded_copy_invisible_to_scan_until_shed(engine):
    """The satellite regression: missed by scan_range before shed, found after."""
    index, keys = build_cluster(seed=51, peers=8, engine=engine)
    holder, stray_key = _forge_stranded_copy(index)

    # Stored but unreachable: the full-space scan misses the stranded copy.
    result = index.range_query_now(0.0, index.config.key_space)
    assert result["complete"]
    assert stray_key not in result["keys"]
    audit = index.reachability()
    assert audit.items_stored == len(keys) + 1
    assert audit.items_reachable == len(keys)
    assert (holder.address, stray_key) in audit.stranded
    assert not audit.ok

    # The periodic shed pass heals it: routed to the responsible owner via
    # the normal store path, then dropped locally.
    index.run(30.0)
    audit = index.reachability()
    assert audit.ok
    assert audit.items_reachable == len(keys) + 1
    owner = index.peer_for_key(stray_key)
    assert owner is not None and owner.address != holder.address
    assert stray_key in owner.store.items.keys()
    assert stray_key not in holder.store.items.keys()
    assert index.history.count("item_shed") >= 1

    # And the scan serves it now.
    result = index.range_query_now(0.0, index.config.key_space)
    assert result["complete"]
    assert stray_key in result["keys"]


def test_shed_can_be_disabled(engine):
    """``shed_stranded=False`` keeps the legacy behaviour (copy stays put)."""
    index, keys = build_cluster(seed=52, peers=8, engine=engine, shed_stranded=False)
    holder, stray_key = _forge_stranded_copy(index)
    index.run(30.0)
    assert stray_key in holder.store.items.keys()
    assert index.history.count("item_shed") == 0
    audit = index.reachability()
    assert audit.items_stranded == 1


def test_healthy_cluster_audit_is_clean(engine):
    """With the shed on, a settled deployment reports full reachability."""
    index, keys = build_cluster(seed=53, peers=8, engine=engine)
    audit = index.reachability()
    assert audit.ok
    assert audit.items_stored == index.total_stored_items() == len(keys)
    assert audit.stranded == []


def test_audit_counts_every_member_copy():
    """audit_reachability inspects exactly the live active stores it is given."""
    index, keys = build_cluster(seed=54, peers=6)
    members = index.ring_members()
    audit = audit_reachability(members)
    assert audit.items_stored == sum(p.store.item_count() for p in members)
    assert audit.items_reachable == audit.items_stored
    # A subset audit sees only that subset's copies.
    partial = audit_reachability(members[:2])
    assert partial.items_stored == sum(p.store.item_count() for p in members[:2])
