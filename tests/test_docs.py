"""Documentation checks: internal links resolve and fenced examples run.

The ``docs/`` site is part of the layer contract (ARCHITECTURE.md documents
the update-hook and spec-resolution contracts), so broken links or rotted
examples are treated as test failures, not cosmetic issues.  The same checks
run as the CI ``docs`` job.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

# [text](target) -- excluding images and external schemes, handled below.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _heading_slugs(text: str) -> set:
    """GitHub-style anchors for every markdown heading in ``text``."""
    slugs = set()
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().lower()
        slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
        slugs.add(slug)
    return slugs


def _internal_links(path: Path):
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_doc_files_exist():
    names = {path.name for path in DOC_FILES}
    assert {"ARCHITECTURE.md", "SCENARIOS.md", "BENCH_FORMAT.md", "README.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_internal_links_resolve(doc: Path):
    for target in _internal_links(doc):
        file_part, _, anchor = target.partition("#")
        resolved = doc if file_part == "" else (doc.parent / file_part).resolve()
        assert resolved.exists(), f"{doc.name}: broken link {target!r}"
        if anchor and resolved.suffix == ".md":
            slugs = _heading_slugs(resolved.read_text())
            assert anchor in slugs, f"{doc.name}: missing anchor {target!r}"


def test_scenarios_doc_examples_run():
    """The fenced registry examples in SCENARIOS.md execute as doctests."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "SCENARIOS.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0
    assert results.failed == 0
