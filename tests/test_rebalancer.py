"""Tests for the global rebalancer and the move-then-delete bulk transfer.

The overflow trigger only recruits free peers when a store crosses
``2*sf``, so a ring whose members all sit *at* the threshold never uses its
spare capacity.  The :class:`~repro.datastore.rebalance.GlobalRebalancer`
closes that gap by moving coherent lower slices of loaded ranges onto FREE
peers -- copy first, delete only after the receiver has joined the ring and
confirmed.  These tests pin both the happy path and the crash atomicity the
move-then-delete ordering buys (the satellite-4 contract: a victim failing
mid-transfer loses nothing and leaves no duplicate serving copies).
"""

from repro import PRingIndex, default_config
from repro.datastore.items import Item
from repro.sim.node import Node
from tests.conftest import build_cluster

_TRANSFER_KEYS = ("value", "range", "items", "join_via", "notify")


def _build_saturated_single_peer(seed, **overrides):
    """One ring member holding exactly ``2*sf`` items: loaded, but the
    overflow trigger (strictly greater than the threshold) never fires."""
    config = default_config(seed=seed, **overrides)
    index = PRingIndex(config)
    index.bootstrap()
    for key in range(100, 200, 10):  # exactly overflow_threshold items
        index.insert_item_now(float(key))
        index.run(0.2)
    assert len(index.ring_members()) == 1
    peer = index.ring_members()[0]
    assert peer.store.item_count() == index.config.overflow_threshold
    return index


def _top_up_to_threshold(index, victim):
    """Grow the victim's store to exactly the overflow threshold with keys it
    owns -- loaded enough for a bulk move, not enough to race a split."""
    high = victim.store.range.high
    filler = 0
    while victim.store.item_count() < index.config.overflow_threshold:
        filler += 1
        key = (high - 0.01 * filler) % index.config.key_space
        assert victim.store.owns_key(key)
        assert victim.store.items.add(Item(key, payload="filler"))
    return victim


def _serving_copies(index, key):
    """Live active peers that both own *and* hold ``key`` (split-brain probe)."""
    return [
        peer.address
        for peer in index.ring_members()
        if peer.store.owns_key(key) and key in peer.store.items.keys()
    ]


def test_rebalancer_moves_a_range_onto_a_free_peer():
    """The tentpole happy path: a FREE peer is harvested without any overflow."""
    index = _build_saturated_single_peer(
        seed=61, rebalance_enabled=True, rebalance_period=2.0
    )
    index.add_peer()  # FREE capacity the overflow trigger would never recruit
    index.run(60.0)
    members = index.ring_members()
    assert len(members) == 2
    counts = sorted(peer.store.item_count() for peer in members)
    assert counts == [5, 5]
    assert index.rebalancer.moves_started >= 1
    assert index.rebalancer.moves_completed >= 1
    assert index.history.count("rebalance_out") >= 1
    assert index.history.count("rebalance_finished") >= 1
    audit = index.reachability()
    assert audit.ok
    assert audit.items_stored == 10


def test_rebalancer_backs_off_when_quiescent():
    """Idle rounds grow the cadence to its cap; nothing moves on a lone ring."""
    config = default_config(seed=62, rebalance_enabled=True, rebalance_period=2.0)
    index = PRingIndex(config)
    index.bootstrap()
    index.run(60.0)
    assert index.rebalancer.moves_started == 0
    assert index.rebalancer.cadence.interval() == 2.0 * config.rebalance_backoff_max


def test_rebalancer_disabled_by_default():
    index = _build_saturated_single_peer(seed=65)
    assert index.rebalancer is None
    index.add_peer()
    index.run(60.0)
    # Without the rebalancer the free peer is never recruited.
    assert len(index.ring_members()) == 1
    assert len(index.free_peers()) == 1


def test_victim_failure_mid_transfer_loses_nothing_no_duplicates():
    """Satellite 4: crash the victim between ``ds_bulk_get`` and ``ds_bulk_put``.

    Move-then-delete means the receiver's copies are complete before the
    victim sheds anything, so a victim crash mid-transfer leaves the receiver
    as the sole serving owner of the moved slice: every moved key survives on
    exactly one live owning peer (no loss, no split-brain).
    """
    index, keys = build_cluster(seed=63, peers=8)
    index.add_peer()  # make sure the pool has a free peer to reserve
    index.run(5.0)
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    victim = max(members[1:], key=lambda p: len(p.balancer._split_candidates()))
    _top_up_to_threshold(index, victim)
    coordinator = Node(index.sim, index.network, "test-coordinator")

    def drive():
        acquired = yield coordinator.call(index.pool.address, "pool_acquire", {})
        free_address = acquired["address"]
        assert free_address is not None
        bulk = yield coordinator.call(
            victim.address,
            "ds_bulk_get",
            {"new_peer": free_address, "max_items": victim.store.item_count() // 2},
        )
        assert bulk.get("ok"), bulk
        index.fail_peer(victim.address)  # crash before the receiver absorbs
        put = yield coordinator.call(
            free_address, "ds_bulk_put", {key: bulk[key] for key in _TRANSFER_KEYS}
        )
        return bulk, put

    bulk, put = index.run_process(drive())
    assert put == {"accepted": True}
    moved = [item["skv"] for item in bulk["items"]]
    assert len(moved) >= 5
    # Let the receiver join (its confirmation to the dead victim fails, so it
    # keeps the range) and the ring stabilize around the crash.
    index.run(120.0)
    for key in moved:
        assert len(_serving_copies(index, key)) == 1, key


def test_receiver_failure_before_put_leaves_victim_intact():
    """The other half of atomicity: the receiver dies before ``ds_bulk_put``.

    Nothing was deleted at the victim, so the pending transfer must time out
    and the victim keeps serving every copy it held.
    """
    index, keys = build_cluster(seed=64, peers=8)
    index.add_peer()
    index.run(5.0)
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    victim = max(members[1:], key=lambda p: len(p.balancer._split_candidates()))
    _top_up_to_threshold(index, victim)
    coordinator = Node(index.sim, index.network, "test-coordinator")

    def drive():
        acquired = yield coordinator.call(index.pool.address, "pool_acquire", {})
        free_address = acquired["address"]
        assert free_address is not None
        bulk = yield coordinator.call(
            victim.address,
            "ds_bulk_get",
            {"new_peer": free_address, "max_items": victim.store.item_count() // 2},
        )
        assert bulk.get("ok"), bulk
        index.fail_peer(free_address)  # the receiver dies holding nothing
        return bulk

    bulk = index.run_process(drive())
    moved = {item["skv"] for item in bulk["items"]}
    assert victim.balancer._pending_split is not None
    # Past the waiter deadline (leave_ack_timeout + 30 s) the move is abandoned.
    index.run(index.config.leave_ack_timeout + 40.0)
    assert victim.balancer._pending_split is None
    assert not victim.balancer._balancing
    assert index.history.count("rebalance_timed_out") == 1
    assert moved <= set(victim.store.items.keys())
    for key in moved:
        assert _serving_copies(index, key) == [victim.address]
