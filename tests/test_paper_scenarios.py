"""Deterministic reproductions of the paper's anomaly scenarios (Sections 4.2 and 5).

These tests exercise the *naive* baselines in exactly the interleavings the
paper uses to motivate its protocols, and then show that the corresponding
PEPPER protocol closes the hole.
"""

import pytest

from repro.core.correctness import (
    ItemTimeline,
    check_consistent_successor_pointers,
    check_query_result,
    count_lost_items,
)
from repro.datastore.items import items_from_wire
from tests.conftest import build_cluster


# --------------------------------------------------------------------------- §4.2.1
def test_section_4_2_1_naive_insert_creates_missing_pointers():
    """With the naive insertSucc, a freshly split-in peer is unknown to other
    predecessors until stabilization, violating Definition 5."""
    index, keys = build_cluster(
        seed=91, peers=12, consistent_insert=False, proactive_nudge=False
    )
    # Insert a burst of items into one region to force a split *now*.
    target = sorted(index.ring_members(), key=lambda p: p.ring.value)[1]
    low, high = target.store.range.low, target.store.range.high
    burst = [low + (high - low) * fraction for fraction in
             (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6)]
    for key in burst:
        index.insert_item_now(key)
    # Wait just until the split completes (the new peer reports JOINED) but
    # before a stabilization round can propagate it.
    splits_before = index.history.count("split_finished")
    for _ in range(200):
        index.run(0.05)
        if index.history.count("split_finished") > splits_before:
            break
    assert index.history.count("split_finished") > splits_before, "burst should force a split"
    result = check_consistent_successor_pointers(index.live_peers())
    assert not result.ok, "naive insertSucc should leave a window of inconsistency"


def test_section_4_2_1_pepper_insert_has_no_such_window():
    index, keys = build_cluster(seed=91, peers=12)  # same seed, PEPPER protocols
    target = sorted(index.ring_members(), key=lambda p: p.ring.value)[1]
    low, high = target.store.range.low, target.store.range.high
    burst = [low + (high - low) * fraction for fraction in
             (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6)]
    for key in burst:
        index.insert_item_now(key)
    for _ in range(200):
        index.run(0.05)
        result = check_consistent_successor_pointers(index.live_peers())
        assert result.ok, result.violations
        if index.history.count("split_finished") > 0:
            break


# --------------------------------------------------------------------------- §4.2.2
def _drive_naive_scan_with_concurrent_redistribution(index, keys):
    """Reproduce Figure 10's interleaving against the naive application scan.

    The application fetches a peer's items, then -- before it asks for the
    successor -- a redistribution moves the boundary so that an item the scan
    has not seen yet migrates *backwards* to the already-visited peer.  The
    naive scan misses it; scanRange cannot, because the redistribution blocks
    on the range lock until the scan has moved past the peer.
    """
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    # Pick an adjacent pair (scan start, successor) where the successor has
    # enough spare items that a redistribution (rather than a merge) happens.
    spare_needed = index.config.storage_factor + 3
    start, successor = None, None
    for peer, nxt in zip(members, members[1:]):
        if peer.store.item_count() >= 2 and nxt.store.item_count() >= spare_needed:
            start, successor = peer, nxt
            break
    if start is None:
        # Create the imbalance explicitly: top up one successor's range.
        start, successor = members[1], members[2]
        low, high = successor.store.range.low, successor.store.range.high
        for fraction in (0.15, 0.3, 0.45, 0.6, 0.75, 0.9):
            index.insert_item_now(low + (high - low) * fraction)
        index.run(2.0)
    assert successor.store.item_count() >= spare_needed

    lb = start.store.range.low
    ub = successor.store.range.high
    query_start = index.sim.now

    def interleaved():
        # Step 1 of the naive scan: fetch the first peer's items.
        first = yield start.call(start.address, "ds_get_local_items", {"lb": lb, "ub": ub})
        collected = {item.skv for item in items_from_wire(first["items"])}
        # Concurrent Data Store maintenance: the successor redistributes its
        # lowest items down to ``start`` (boundary moves up).
        response = yield successor.call(
            successor.address,
            "ds_redistribute_request",
            {"need": 2, "requester": start.address},
            timeout=30.0,
        )
        moved = []
        if response.get("action") == "redistribute":
            moved = [item.skv for item in items_from_wire(response["items"])]
            for item in items_from_wire(response["items"]):
                start.store.store_local(item, reason="redistribute_in")
            start.store.set_range_high(response["new_boundary"], reason="redistribute")
            start.ring.update_value(response["new_boundary"])
        # Step 2 of the naive scan: now ask for the successor and fetch its items.
        second = yield start.call(successor.address, "ds_get_local_items", {"lb": lb, "ub": ub})
        collected |= {item.skv for item in items_from_wire(second["items"])}
        return collected, moved

    collected, moved = index.run_process(interleaved())
    query_end = index.sim.now
    return collected, moved, lb, ub, query_start, query_end


def test_section_4_2_2_naive_scan_misses_redistributed_items():
    index, keys = build_cluster(seed=92, peers=8, use_scan_range=False)
    collected, moved, lb, ub, start, end = _drive_naive_scan_with_concurrent_redistribution(
        index, keys
    )
    assert moved, "the redistribution should have moved at least one item"
    missed = [skv for skv in moved if skv not in collected and lb < skv <= ub]
    assert missed, "the naive two-step scan must miss the migrated item(s)"
    # The missed items are stored in the system the whole time (they only moved
    # from the successor to the already-visited peer), so a correct range query
    # over the same interval returns them -- which the scanRange test below
    # verifies.  The naive application-level scan lost them.
    still_stored = {
        skv
        for peer in index.ring_members()
        for skv in peer.store.items.keys()
    }
    assert set(missed) <= still_stored


def test_section_4_2_2_scan_range_returns_all_live_items_despite_churn():
    index, keys = build_cluster(seed=92, peers=8)
    # Run the same kind of concurrent redistribution pressure while issuing a
    # scanRange query over the same interval: the result must be correct.
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    lb = members[1].store.range.low
    ub = members[3].store.range.high

    def churn():
        while True:
            yield index.sim.timeout(0.002)
            for peer in index.ring_members():
                if peer.store.item_count() < index.config.underflow_threshold:
                    peer.balancer.schedule_merge()

    index.sim.process(churn())
    result = index.range_query_now(lb, ub)
    timeline = ItemTimeline(index.history.history())
    record = index.query_records[-1]
    assert check_query_result(timeline, record).ok
    assert result["complete"]


# --------------------------------------------------------------------------- §5.2 / Figure 17
def _merge_then_fail(config_overrides, seed=94):
    """Figure 17's scenario: a peer merges away, then a single peer failure.

    With replication factor 1, the merging peer holds the only replica of its
    predecessor's items.  If it leaves without the extra-hop push, a subsequent
    failure of that predecessor loses the items; with the extra hop the items
    survive.  The replication refresh period is stretched so the periodic
    refresh cannot repair the gap before the failure hits (the paper's scenario
    happens "between replica refreshes").
    """
    index, keys = build_cluster(
        seed=seed,
        peers=8,
        replication_factor=1,
        replication_refresh_period=40.0,
        **config_overrides,
    )
    index.run(45.0)  # make sure at least one replication round happened
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    leaver = members[3]
    predecessor = members[2]
    at_risk = list(predecessor.store.items.keys())
    if not at_risk:
        pytest.skip("the chosen predecessor holds no items in this topology")
    # Force the leaver to merge away by deleting its items.
    for key in list(leaver.store.items.keys()):
        index.delete_item_now(key)
        index.run(0.2)
    for _ in range(400):
        index.run(0.1)
        if not leaver.in_ring:
            break
    if leaver.in_ring:
        pytest.skip("no merge occurred in this topology")
    # Single failure right after the merge: the predecessor whose only replica
    # lived at the departed peer.
    index.fail_peer(predecessor.address)
    index.run(60.0)
    lost = count_lost_items(index.history.history(), index.live_peers())
    return index, [skv for skv in lost if skv in at_risk]


@pytest.mark.xfail(
    strict=False,
    reason=(
        "whether the naive baseline actually loses items depends on which peer "
        "merges and when the failure lands relative to the replication refresh; "
        "the PEPPER counterpart below must (and does) never lose items"
    ),
)
def test_figure_17_naive_merge_can_lose_items():
    _index, lost = _merge_then_fail(
        {"extra_hop_replication": False, "safe_leave": False}
    )
    assert lost, "without the extra replication hop a single failure loses items"


def test_figure_17_extra_hop_preserves_item_availability():
    _index, lost = _merge_then_fail({})
    assert lost == []
