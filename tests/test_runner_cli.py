"""``repro-run`` CLI and runner surfaces: listing, profiling, snapshot flags.

These exercise the thin orchestration layer above :func:`run_spec` -- the
paths a scenario result travels between the registry and the BENCH envelope:

* ``--list`` renders every registry section (suites, scenarios, figures,
  benchmarks) with the per-scenario engine/transport columns;
* ``--profile`` runs serially under cProfile and writes the per-scenario
  report next to the BENCH file;
* ``--snapshot-dir`` / ``--no-warm-start`` thread through ``run_named`` /
  ``run_cells`` / ``run_cell`` into :func:`run_spec`, and the BENCH envelope
  records the cache directory and how many cells resumed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness.runner import run_cells, run_named


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_TRANSPORT", raising=False)


# ------------------------------------------------------------------ --list
def test_list_renders_every_registry_section(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for section in ("suites:", "scenarios:", "figures:", "benchmarks:"):
        assert section in out
    # The scenario table carries the engine/transport columns and known rows.
    assert "engine" in out and "transport" in out
    assert "smoke" in out and "scale_300" in out and "engine_bench" in out


def test_bare_invocation_lists_and_unknown_name_fails(capsys):
    assert main([]) == 0  # no scenario -> the listing, not an error
    assert main(["no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


# ------------------------------------------------------------------ --profile
def test_profile_writes_per_scenario_report(tmp_path, capsys):
    assert main(["smoke", "--profile", "--out-dir", str(tmp_path)]) == 0
    report = tmp_path / "PROFILE_smoke.txt"
    assert report.exists()
    text = report.read_text()
    assert "cumulative" in text  # the sort column header made it to disk
    assert (tmp_path / "BENCH_smoke.json").exists()


def test_profile_rejected_for_figures(tmp_path, capsys):
    assert main(["figure_19", "--profile", "--out-dir", str(tmp_path)]) == 2
    assert "not figures" in capsys.readouterr().err


# ------------------------------------------------------------------ snapshot flags
def test_snapshot_dir_flag_caches_and_resumes(tmp_path, capsys):
    cache = tmp_path / "snapshots"
    args = ["smoke", "--snapshot-dir", str(cache), "--out-dir", str(tmp_path)]
    assert main(args) == 0
    bench = json.loads((tmp_path / "BENCH_smoke.json").read_text())
    assert bench["snapshot_dir"] == str(cache)
    assert bench["warm_started_cells"] == 0  # first run: nothing to resume
    assert list(cache.glob("*.snap.gz"))

    capsys.readouterr()  # drop the cold run's output
    assert main(args) == 0  # second run resumes from the capture
    assert "(warm start)" in capsys.readouterr().out  # visible on the cell line
    bench = json.loads((tmp_path / "BENCH_smoke.json").read_text())
    assert bench["warm_started_cells"] == 1
    assert bench["results"][0]["warm_start"] is True


def test_no_warm_start_flag_forces_cold(tmp_path):
    cache = tmp_path / "snapshots"
    base = ["smoke", "--snapshot-dir", str(cache), "--out-dir", str(tmp_path)]
    assert main(base) == 0  # populate the cache
    assert main(base + ["--no-warm-start"]) == 0
    bench = json.loads((tmp_path / "BENCH_smoke.json").read_text())
    assert bench["warm_started_cells"] == 0
    assert bench["results"][0]["warm_start"] is False


def test_snapshot_dir_rejected_for_figures(tmp_path, capsys):
    assert main(["figure_19", "--snapshot-dir", str(tmp_path)]) == 2
    assert "not figures" in capsys.readouterr().err


def test_run_cells_shares_one_cache_across_seeds(tmp_path):
    """The seed cross product writes one keyed file per cell into a shared
    directory, and a rerun of the whole product resumes every cell."""
    cache = str(tmp_path)
    cold = run_cells(["smoke"], seeds=(0, 1), processes=1, snapshot_dir=cache)
    assert [cell["warm_start"] for cell in cold] == [False, False]
    assert len(list(Path(cache).glob("*.snap.gz"))) == 2  # one per seed
    warm = run_cells(["smoke"], seeds=(0, 1), processes=1, snapshot_dir=cache)
    assert [cell["warm_start"] for cell in warm] == [True, True]
    for cold_cell, warm_cell in zip(cold, warm):
        assert warm_cell["events_processed"] == cold_cell["events_processed"]


def test_run_named_snapshot_metadata_without_dir(tmp_path):
    """No --snapshot-dir: the envelope carries no snapshot keys at all."""
    payload = run_named("smoke", out_dir=str(tmp_path))
    assert "snapshot_dir" not in payload
    assert "warm_started_cells" not in payload
