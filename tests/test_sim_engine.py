"""Unit tests for the discrete-event simulation engines.

Every test runs against both the binary-heap engine and the timer-wheel
engine: the two must honor an identical semantics contract (see the "Engine
contract" section of docs/ARCHITECTURE.md).
"""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)
from repro.sim.wheel import WheelSimulator


@pytest.fixture(params=[Simulator, WheelSimulator], ids=["heap", "wheel"])
def sim(request):
    """A fresh simulator of each engine flavor."""
    return request.param()


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    fired = []

    def proc():
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [5.0]


def test_run_until_limit_stops_early(sim):

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_events_fire_in_time_order(sim):
    order = []

    def make(delay, label):
        def proc():
            yield sim.timeout(delay)
            order.append(label)

        return proc()

    sim.process(make(3.0, "c"))
    sim.process(make(1.0, "a"))
    sim.process(make(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(sim):
    order = []

    def make(label):
        def proc():
            yield sim.timeout(1.0)
            order.append(label)

        return proc()

    for label in ("first", "second", "third"):
        sim.process(make(label))
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_carries_value(sim):
    event = sim.event()
    seen = []

    def proc():
        value = yield event
        seen.append(value)

    sim.process(proc())
    sim._schedule(1.0, lambda: event.succeed("payload"))
    sim.run()
    assert seen == ["payload"]


def test_event_cannot_trigger_twice(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_event_failure_raises_in_waiter(sim):
    event = sim.event()
    caught = []

    def proc():
        try:
            yield event
        except ValueError as error:
            caught.append(str(error))

    sim.process(proc())
    sim._schedule(0.5, lambda: event.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_waiting_on_triggered_event_resumes_immediately(sim):
    event = sim.event()
    event.succeed("early")
    seen = []

    def proc():
        value = yield event
        seen.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert seen == [(0.0, "early")]


def test_process_return_value_becomes_event_value(sim):

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value * 2

    result = sim.run_process(outer())
    assert result == 84


def test_run_process_stops_at_completion_not_timeout(sim):

    def background():
        while True:
            yield sim.timeout(10.0)

    def quick():
        yield sim.timeout(1.0)
        return "done"

    sim.process(background())
    result = sim.run_process(quick(), timeout=1000.0)
    assert result == "done"
    assert sim.now == pytest.approx(1.0)


def test_run_process_raises_process_exception(sim):

    def failing():
        yield sim.timeout(0.1)
        raise RuntimeError("inner failure")

    with pytest.raises(RuntimeError, match="inner failure"):
        sim.run_process(failing())


def test_run_process_timeout_raises(sim):

    def never():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError):
        sim.run_process(never(), timeout=5.0)


def test_process_yielding_non_event_fails(sim):

    def bad():
        yield 42

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_interrupt_terminates_waiting_process(sim):
    progressed = []

    def proc():
        yield sim.timeout(100.0)
        progressed.append("should not happen")

    process = sim.process(proc())
    sim._schedule(1.0, lambda: process.interrupt("killed"))
    sim.run()
    assert progressed == []
    assert process.triggered
    assert not process.alive


def test_interrupt_can_be_caught(sim):
    caught = []

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)

    process = sim.process(proc())
    sim._schedule(2.0, lambda: process.interrupt("reason"))
    sim.run()
    assert caught == ["reason"]


def test_interrupting_finished_process_is_noop(sim):

    def proc():
        yield sim.timeout(1.0)

    process = sim.process(proc())
    sim.run()
    process.interrupt("late")  # must not raise
    sim.run()
    assert process.triggered


def test_any_of_returns_first_winner(sim):

    def proc():
        first = sim.timeout(5.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        index, value = yield sim.any_of([first, second])
        return index, value

    assert sim.run_process(proc()) == (1, "fast")


def test_any_of_requires_events(sim):
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_all_of_collects_values_in_order(sim):

    def proc():
        events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        values = yield sim.all_of(events)
        return values

    assert sim.run_process(proc()) == ["c", "a", "b"]


def test_all_of_empty_completes_immediately(sim):
    condition = AllOf(sim, [])
    assert condition.triggered
    assert condition.value == []


def test_stale_wakeup_after_interrupt_is_ignored(sim):
    """A pending event firing after its waiter was interrupted must not resume it."""
    steps = []

    def proc():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            steps.append("interrupted")
            yield sim.timeout(50.0)
            steps.append("second wait done")

    process = sim.process(proc())
    sim._schedule(1.0, lambda: process.interrupt())
    sim.run()
    assert steps == ["interrupted", "second wait done"]


def test_nested_run_rejected(sim):

    def proc():
        sim.run()
        yield sim.timeout(1.0)

    process = sim.process(proc())
    sim.run()
    assert not process.ok
    assert isinstance(process.value, SimulationError)


# --------------------------------------------------------------------------- timer API
# schedule_timer/cancel_timer is the engine-agnostic fast path the network
# uses for RPC expiries.  The contract: a handle is valid until its timer
# fires or is cancelled; cancellation is O(1); cancelling an already-dead
# handle (fired or cancelled, with no intervening re-arm) is a no-op that
# returns None.


def test_timer_fires_with_arg(sim):
    fired = []
    sim.schedule_timer(1.5, fired.append, "payload")
    sim.run()
    assert fired == ["payload"]
    assert sim.now == 1.5


def test_cancel_timer_returns_arg_and_suppresses_fire(sim):
    fired = []
    handle = sim.schedule_timer(1.0, fired.append, "doomed")
    assert sim.cancel_timer(handle) == "doomed"
    sim.run()
    assert fired == []


def test_cancel_after_fire_returns_none(sim):
    fired = []
    handle = sim.schedule_timer(1.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.cancel_timer(handle) is None


def test_cancel_twice_returns_none_second_time(sim):
    handle = sim.schedule_timer(1.0, lambda arg: None, "once")
    assert sim.cancel_timer(handle) == "once"
    assert sim.cancel_timer(handle) is None
    sim.run()


def test_cancel_then_reschedule_keeps_tie_break_order(sim):
    """A re-armed timer takes a fresh sequence number: it fires after every
    timer armed between the cancel and the re-arm, even at the same instant."""
    fired = []
    first = sim.schedule_timer(2.0, fired.append, "original")
    sim.schedule_timer(2.0, fired.append, "middle")
    assert sim.cancel_timer(first) == "original"
    sim.schedule_timer(2.0, fired.append, "re-armed")
    sim.run()
    assert fired == ["middle", "re-armed"]


def test_cancel_from_callback_mid_run(sim):
    """Cancelling a pending timer from inside a firing callback works."""
    fired = []
    victim = sim.schedule_timer(5.0, fired.append, "victim")

    def killer(arg):
        fired.append("killer")
        assert sim.cancel_timer(victim) == "victim"

    sim.schedule_timer(1.0, killer, None)
    sim.run()
    assert fired == ["killer"]


def test_mass_cancellation_mid_run_preserves_determinism(sim):
    """Crossing the tombstone-reclamation threshold (heap compaction / wheel
    sweep, both >2048) while the run loop is live must not disturb the
    (time, seq) firing order of the survivors."""
    fired = []
    handles = []
    for i in range(6000):
        # Deadlines interleave across cancelled and surviving entries.
        handles.append(sim.schedule_timer(10.0 + (i % 100) * 0.25, fired.append, i))

    def purge(arg):
        fired.append("purge")
        for i, handle in enumerate(handles):
            if i % 6:  # cancel 5000 of 6000 -> reclamation triggers mid-run
                sim.cancel_timer(handle)

    sim.schedule_timer(1.0, purge, None)
    sim.run()
    survivors = [i for i in range(6000) if not i % 6]
    expected = ["purge"] + sorted(survivors, key=lambda i: (10.0 + (i % 100) * 0.25, i))
    assert fired == expected


def test_far_future_timer_fires_and_cancels(sim):
    """Delays beyond the wheel's ~73 h horizon (overflow heap territory)."""
    fired = []
    sim.schedule_timer(400_000.0, fired.append, "far")
    doomed = sim.schedule_timer(500_000.0, fired.append, "doomed")
    sim.schedule_timer(1.0, fired.append, "near")
    assert sim.cancel_timer(doomed) == "doomed"
    sim.run()
    assert fired == ["near", "far"]
    assert sim.now == 400_000.0


def test_level_span_boundary_delays_complete(sim):
    """Regression: deltas just under a wheel level's span used to wrap onto
    the cursor's own slot and cascade forever.  Exercise every boundary from
    a cursor with low bits set."""
    fired = []
    sim.schedule_timer(0.4, fired.append, "advance")
    sim.run()  # leaves the wheel cursor mid-revolution
    tick = 2.0**-8
    deltas = []
    for span_ticks in (256, 2**14, 2**20, 2**26):
        for offset in (-2, -1, 0, 1):
            deltas.append((span_ticks + offset) * tick)
    expected = []
    for index, delay in enumerate(deltas):
        sim.schedule_timer(delay, fired.append, index)
        expected.append((sim.now + delay, index))
    sim.run()
    assert fired == ["advance"] + [i for _, i in sorted(expected)]


def test_timer_rejects_negative_delay(sim):
    with pytest.raises(SimulationError):
        sim.schedule_timer(-0.1, lambda arg: None, None)


def test_schedule_at_rejects_past(sim):
    sim.schedule_timer(1.0, lambda arg: None, None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda arg: None, None)


def test_schedule_at_absolute_time_ordering(sim):
    fired = []
    sim.schedule_at(3.0, fired.append, "late")
    sim.schedule_at(2.0, fired.append, "early")
    sim.schedule_timer(2.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
