"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [5.0]


def test_run_until_limit_stops_early():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def make(delay, label):
        def proc():
            yield sim.timeout(delay)
            order.append(label)

        return proc()

    sim.process(make(3.0, "c"))
    sim.process(make(1.0, "a"))
    sim.process(make(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(label):
        def proc():
            yield sim.timeout(1.0)
            order.append(label)

        return proc()

    for label in ("first", "second", "third"):
        sim.process(make(label))
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    seen = []

    def proc():
        value = yield event
        seen.append(value)

    sim.process(proc())
    sim._schedule(1.0, lambda: event.succeed("payload"))
    sim.run()
    assert seen == ["payload"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_event_failure_raises_in_waiter():
    sim = Simulator()
    event = sim.event()
    caught = []

    def proc():
        try:
            yield event
        except ValueError as error:
            caught.append(str(error))

    sim.process(proc())
    sim._schedule(0.5, lambda: event.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_waiting_on_triggered_event_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")
    seen = []

    def proc():
        value = yield event
        seen.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert seen == [(0.0, "early")]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value * 2

    result = sim.run_process(outer())
    assert result == 84


def test_run_process_stops_at_completion_not_timeout():
    sim = Simulator()

    def background():
        while True:
            yield sim.timeout(10.0)

    def quick():
        yield sim.timeout(1.0)
        return "done"

    sim.process(background())
    result = sim.run_process(quick(), timeout=1000.0)
    assert result == "done"
    assert sim.now == pytest.approx(1.0)


def test_run_process_raises_process_exception():
    sim = Simulator()

    def failing():
        yield sim.timeout(0.1)
        raise RuntimeError("inner failure")

    with pytest.raises(RuntimeError, match="inner failure"):
        sim.run_process(failing())


def test_run_process_timeout_raises():
    sim = Simulator()

    def never():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError):
        sim.run_process(never(), timeout=5.0)


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_interrupt_terminates_waiting_process():
    sim = Simulator()
    progressed = []

    def proc():
        yield sim.timeout(100.0)
        progressed.append("should not happen")

    process = sim.process(proc())
    sim._schedule(1.0, lambda: process.interrupt("killed"))
    sim.run()
    assert progressed == []
    assert process.triggered
    assert not process.alive


def test_interrupt_can_be_caught():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)

    process = sim.process(proc())
    sim._schedule(2.0, lambda: process.interrupt("reason"))
    sim.run()
    assert caught == ["reason"]


def test_interrupting_finished_process_is_noop():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    process = sim.process(proc())
    sim.run()
    process.interrupt("late")  # must not raise
    sim.run()
    assert process.triggered


def test_any_of_returns_first_winner():
    sim = Simulator()

    def proc():
        first = sim.timeout(5.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        index, value = yield sim.any_of([first, second])
        return index, value

    assert sim.run_process(proc()) == (1, "fast")


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc():
        events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        values = yield sim.all_of(events)
        return values

    assert sim.run_process(proc()) == ["c", "a", "b"]


def test_all_of_empty_completes_immediately():
    sim = Simulator()
    condition = AllOf(sim, [])
    assert condition.triggered
    assert condition.value == []


def test_stale_wakeup_after_interrupt_is_ignored():
    """A pending event firing after its waiter was interrupted must not resume it."""
    sim = Simulator()
    steps = []

    def proc():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            steps.append("interrupted")
            yield sim.timeout(50.0)
            steps.append("second wait done")

    process = sim.process(proc())
    sim._schedule(1.0, lambda: process.interrupt())
    sim.run()
    assert steps == ["interrupted", "second wait done"]


def test_nested_run_rejected():
    sim = Simulator()

    def proc():
        sim.run()
        yield sim.timeout(1.0)

    process = sim.process(proc())
    sim.run()
    assert not process.ok
    assert isinstance(process.value, SimulationError)
