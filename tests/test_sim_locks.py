"""Unit tests for the simulated read/write locks."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.locks import RWLock
from repro.sim.engine import SimulationError


@pytest.fixture
def sim():
    return Simulator()


def test_multiple_readers_share_the_lock(sim):
    lock = RWLock(sim)
    granted = []

    def reader(label):
        yield lock.acquire_read()
        granted.append((label, sim.now))
        yield sim.timeout(5.0)
        lock.release_read()

    sim.process(reader("r1"))
    sim.process(reader("r2"))
    sim.run()
    assert [label for label, _ in granted] == ["r1", "r2"]
    assert all(time == 0.0 for _, time in granted)


def test_writer_excludes_readers(sim):
    lock = RWLock(sim)
    order = []

    def writer():
        yield lock.acquire_write()
        order.append(("w", sim.now))
        yield sim.timeout(3.0)
        lock.release_write()

    def reader():
        yield sim.timeout(1.0)
        yield lock.acquire_read()
        order.append(("r", sim.now))
        lock.release_read()

    sim.process(writer())
    sim.process(reader())
    sim.run()
    assert order == [("w", 0.0), ("r", 3.0)]


def test_writer_waits_for_all_readers(sim):
    lock = RWLock(sim)
    events = []

    def reader(delay):
        yield lock.acquire_read()
        yield sim.timeout(delay)
        lock.release_read()
        events.append(("release", sim.now))

    def writer():
        yield sim.timeout(0.5)
        yield lock.acquire_write()
        events.append(("write", sim.now))
        lock.release_write()

    sim.process(reader(2.0))
    sim.process(reader(4.0))
    sim.process(writer())
    sim.run()
    assert events[-1] == ("write", 4.0)


def test_fifo_queued_writer_blocks_later_readers(sim):
    lock = RWLock(sim)
    order = []

    def first_reader():
        yield lock.acquire_read()
        yield sim.timeout(2.0)
        lock.release_read()

    def writer():
        yield sim.timeout(0.5)
        yield lock.acquire_write()
        order.append(("writer", sim.now))
        yield sim.timeout(1.0)
        lock.release_write()

    def late_reader():
        yield sim.timeout(1.0)
        yield lock.acquire_read()
        order.append(("late_reader", sim.now))
        lock.release_read()

    sim.process(first_reader())
    sim.process(writer())
    sim.process(late_reader())
    sim.run()
    assert order == [("writer", 2.0), ("late_reader", 3.0)]


def test_release_without_hold_raises(sim):
    lock = RWLock(sim)
    with pytest.raises(SimulationError):
        lock.release_read()
    with pytest.raises(SimulationError):
        lock.release_write()


def test_lock_state_inspection(sim):
    lock = RWLock(sim, name="inspect")

    def proc():
        yield lock.acquire_write()
        assert lock.write_held
        assert lock.locked
        lock.release_write()
        yield lock.acquire_read()
        assert lock.readers == 1
        assert not lock.write_held
        lock.release_read()
        assert not lock.locked

    sim.run_process(proc())


def test_waiting_counter(sim):
    lock = RWLock(sim)

    def holder():
        yield lock.acquire_write()
        yield sim.timeout(5.0)
        lock.release_write()

    def waiter():
        yield sim.timeout(1.0)
        yield lock.acquire_read()
        lock.release_read()

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=2.0)
    assert lock.waiting == 1
    sim.run()
    assert lock.waiting == 0
