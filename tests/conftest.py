"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import PRingIndex, default_config
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.randomness import RngStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim) -> Network:
    rngs = RngStreams(7)
    return Network(sim, rngs.stream("network"), NetworkConfig())


def build_cluster(
    seed: int = 1,
    peers: int = 8,
    keys=None,
    settle: float = 25.0,
    spacing: float = 0.4,
    **config_overrides,
) -> tuple:
    """Build a small, settled deployment for integration-style tests.

    Returns ``(index, keys)``.  Peers are added as free peers up front and get
    pulled into the ring by Data Store splits as the items arrive, exactly as
    in the real system; ``settle`` seconds of idle time let stabilization,
    replication and the router converge.
    """
    config = default_config(seed=seed, **config_overrides)
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(peers - 1):
        index.add_peer()
    if keys is None:
        keys = [float(k) for k in range(100, 100 + 55 * 15, 15)]
    for key in keys:
        index.insert_item_now(key, payload=f"payload-{key}")
        index.run(spacing)
    index.run(settle)
    return index, list(keys)


@pytest.fixture
def small_cluster():
    """A settled 8-peer deployment with ~55 items and PEPPER protocols."""
    return build_cluster(seed=5)


@pytest.fixture
def naive_cluster():
    """The same deployment built with every naive baseline protocol."""
    config = default_config(seed=5).with_naive_protocols()
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(7):
        index.add_peer()
    keys = [float(k) for k in range(100, 100 + 55 * 15, 15)]
    for key in keys:
        index.insert_item_now(key, payload=f"payload-{key}")
        index.run(0.4)
    index.run(25.0)
    return index, keys
