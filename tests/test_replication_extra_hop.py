"""Unit tests for the replicate-to-additional-hop protocol (Section 5.2).

``push_items_one_extra_hop`` is what stands between a merge and the Figure 17
item-loss scenario, so its edge cases (no items, dead successors, single-peer
rings with nobody to push to) get direct coverage here; the end-to-end effect
is covered by the availability ablation.
"""

import pytest

from repro import PRingIndex, default_config
from repro.datastore.items import Item
from repro.replication.extra_hop import push_items_one_extra_hop
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=81, peers=8)


def _member_with_successors(index, minimum=2):
    for peer in sorted(index.ring_members(), key=lambda p: p.ring.value):
        if len(peer.ring.joined_successors(minimum)) >= minimum:
            return peer
    pytest.skip("no member with enough joined successors in this topology")


def test_no_items_pushes_nothing(cluster):
    index, _keys = cluster
    peer = _member_with_successors(index)
    calls_before = index.network.stats.per_method.get("rep_store_replicas", 0)
    acknowledged = index.run_process(
        push_items_one_extra_hop(peer, peer.ring, [], hops=2)
    )
    assert acknowledged == 0
    assert index.network.stats.per_method.get("rep_store_replicas", 0) == calls_before


def test_push_stores_replicas_on_joined_successors(cluster):
    index, _keys = cluster
    peer = _member_with_successors(index)
    targets = peer.ring.joined_successors(2)
    items = [Item(skv=0.123456, payload="extra-hop-probe")]
    acknowledged = index.run_process(
        push_items_one_extra_hop(peer, peer.ring, items, hops=2)
    )
    assert acknowledged == len(targets)
    holders = [
        address
        for address in targets
        if 0.123456 in index.peers[address].replication.replica_keys()
    ]
    assert holders == targets


def test_push_tolerates_a_dead_successor():
    index, _keys = build_cluster(seed=82, peers=8)
    peer = _member_with_successors(index, minimum=2)
    targets = peer.ring.joined_successors(2)
    index.fail_peer(targets[0])
    items = [Item(skv=0.654321, payload="extra-hop-probe")]
    acknowledged = index.run_process(
        push_items_one_extra_hop(peer, peer.ring, items, hops=2),
        timeout=60.0,
    )
    # The dead successor never acknowledges, the live one does; the protocol
    # only needs one extra holder to preserve the replica count.
    assert acknowledged == len(targets) - 1
    live = [address for address in targets if index.peers[address].alive]
    for address in live:
        assert 0.654321 in index.peers[address].replication.replica_keys()


def test_single_member_ring_has_no_push_targets():
    config = default_config(seed=83)
    index = PRingIndex(config)
    peer = index.bootstrap()
    index.run(5.0)
    items = [Item(skv=42.0, payload="lonely")]
    acknowledged = index.run_process(
        push_items_one_extra_hop(peer, peer.ring, items, hops=2)
    )
    assert acknowledged == 0
