"""Engine-parity proof: heap and wheel runs are bit-identical end to end.

The wheel engine re-implements the time-keyed queue of the simulator; the
determinism contract (``(time, seq)`` tie-break, FIFO same-instant ready
queue, identical ``events_processed`` accounting) promises that swapping the
engine changes *wall-clock only*.  These tests pin that promise at the
full-stack level: a scenario run under each engine must produce identical
end-state metrics -- membership, stored items, RPC counts per method, message
totals, simulated time and the exact number of executed events.

The smoke-scenario matrix runs in tier-1.  The heavier ``scale_300`` matrix
(fixed + adaptive maintenance, seeds 0..2 -- the acceptance matrix for the
engine work) takes ~30 s of CPU, so it runs only when ``REPRO_PARITY_FULL``
is set; the CI engine-parity job exports it.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import run_cell

# Every end-state field that must not depend on the engine.  wall_clock_s and
# events_per_wall_s are the only result fields allowed to differ (plus the
# engine tag itself).
PARITY_FIELDS = (
    "ring_members",
    "items_stored",
    "items_requested",
    "rpc_calls",
    "rpc_timeouts",
    "messages_sent",
    "events_processed",
    "sim_time_s",
    "rpc_per_method",
)


def _end_state(scenario: str, seed: int, engine: str) -> dict:
    # REPRO_ENGINE overrides the per-cell engine choice inside make_simulator;
    # a forced engine would collapse both sides of the comparison onto one
    # implementation, so neutralize it for the duration of the run.
    forced = os.environ.pop("REPRO_ENGINE", None)
    try:
        cell = run_cell((scenario, seed, engine))
    finally:
        if forced is not None:
            os.environ["REPRO_ENGINE"] = forced
    assert cell["engine"] == engine
    return {field: cell[field] for field in PARITY_FIELDS}


def _assert_parity(scenario: str, seed: int) -> None:
    heap_state = _end_state(scenario, seed, "heap")
    wheel_state = _end_state(scenario, seed, "wheel")
    assert heap_state == wheel_state, (
        f"{scenario}[seed={seed}]: engines diverged\n"
        f"  heap:  {heap_state}\n  wheel: {wheel_state}"
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_smoke_parity(seed):
    _assert_parity("smoke", seed)


FULL_MATRIX = bool(os.environ.get("REPRO_PARITY_FULL"))


@pytest.mark.skipif(
    not FULL_MATRIX, reason="set REPRO_PARITY_FULL=1 for the scale_300 matrix"
)
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("scenario", ["scale_300", "scale_300_adaptive"])
def test_scale_300_parity(scenario, seed):
    _assert_parity(scenario, seed)
