"""Edge-case tests for the linear (successor-walking) router.

The linear router is the fallback path of the hierarchical router, so its
corner cases -- wrap-around ranges, a single-peer ring, dead successors midway
through a walk -- must hold even though the happy path is exercised through
the integration suites.
"""

import pytest

from repro import PRingIndex, default_config
from repro.router.linear import LinearRouter
from tests.conftest import build_cluster


# --------------------------------------------------------------------------- single-peer ring
def test_single_peer_ring_owns_every_key():
    config = default_config(seed=71, router="linear")
    index = PRingIndex(config)
    peer = index.bootstrap()
    index.run(5.0)
    for key in (0.5, 1.0, 4_000.0, index.config.key_space - 0.5):
        found = index.run_process(peer.router.find_responsible(key))
        assert found == peer.address
    # The zero-hop local answer must be recorded as such.
    assert index.metrics.values("route_hops")[-1] == 0


def test_single_peer_ring_with_items_routes_inserts_locally():
    config = default_config(seed=72, router="linear")
    index = PRingIndex(config)
    index.bootstrap()
    for key in (100.0, 200.0, 300.0):
        assert index.insert_item_now(key)
    assert index.total_stored_items() == 3


# --------------------------------------------------------------------------- wrap-around ranges
@pytest.fixture(scope="module")
def linear_cluster():
    return build_cluster(seed=73, peers=8, router="linear")


def _wrap_peer(index):
    """The ring member whose Data Store range wraps around the key space."""
    for peer in index.ring_members():
        if peer.store.range.low > peer.store.range.high:
            return peer
    return None


def test_some_range_wraps_the_key_space(linear_cluster):
    index, _keys = linear_cluster
    assert _wrap_peer(index) is not None, "a circular ring always has one wrapping range"


def test_route_to_key_inside_wrapped_range(linear_cluster):
    index, _keys = linear_cluster
    wrap = _wrap_peer(index)
    assert wrap is not None
    # Pick one key on each side of the wrap point.
    key_high = wrap.store.range.low + 1.0  # just above low, still < key_space
    key_low = max(wrap.store.range.high - 1e-4, wrap.store.range.high / 2)
    for key in (key_high, key_low):
        if not wrap.store.owns_key(key):
            continue  # degenerate split landed the probe outside; skip that side
        for start in index.ring_members()[:3]:
            found = index.run_process(start.router.find_responsible(key))
            assert found == wrap.address


def test_route_from_every_member_converges_on_wrap_owner(linear_cluster):
    index, _keys = linear_cluster
    wrap = _wrap_peer(index)
    assert wrap is not None
    key = wrap.store.range.low + 0.5
    if not wrap.store.owns_key(key):
        pytest.skip("wrap range too narrow for the probe key in this topology")
    owners = {
        index.run_process(peer.router.find_responsible(key))
        for peer in index.ring_members()
    }
    assert owners == {wrap.address}


# --------------------------------------------------------------------------- dead-successor paths
def test_walk_survives_dead_peer_on_route():
    index, keys = build_cluster(seed=74, peers=8, router="linear")
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    start = members[0]
    # Kill the peer two hops clockwise so the walk hits it before stabilization
    # can patch the successor lists.
    victim = members[2 % len(members)]
    target_key = members[4 % len(members)].store.range.high
    owner_before = index.peer_for_key(target_key)
    assert owner_before is not None
    index.fail_peer(victim.address)
    found = index.run_process(start.router.find_responsible(target_key), timeout=120.0)
    assert found is not None
    assert index.peers[found].alive
    assert index.peers[found].store.owns_key(target_key)


def test_unroutable_when_all_successors_dead():
    index, _keys = build_cluster(
        seed=75, peers=4, keys=[200.0 + 37.0 * i for i in range(25)]
    )
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    start = members[0]
    router = LinearRouter(start, start.ring, start.store, index.config)
    for peer in members[1:]:
        index.fail_peer(peer.address)
    foreign_key = None
    for candidate in (123.456, 7_777.7, 9_000.0):
        if not start.store.owns_key(candidate):
            foreign_key = candidate
            break
    if foreign_key is None:
        pytest.skip("the surviving peer owns the whole space in this topology")
    found = index.run_process(router.find_responsible(foreign_key), timeout=600.0)
    # Every probe times out; the router must give up cleanly, not hang or crash.
    assert found is None
