"""Audit: every source of randomness flows through seeded streams.

Scenario cells must be reproducible seed-by-seed (the multiprocessing runner
depends on it), which dies the moment any protocol or workload module calls a
module-level ``random`` function (those share interpreter-global state).  The
only approved uses are ``random.Random`` (constructing an isolated, seeded
generator) and type annotations; everything else must take an rng argument or
pull a named stream from :class:`repro.sim.randomness.RngStreams`.
"""

import ast
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

APPROVED_ATTRIBUTES = {"Random"}  # random.Random(seed) is the seeded-stream primitive


def _module_paths():
    return sorted(SRC_ROOT.rglob("*.py"))


def _violations(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        # random.<function>(...) on the module object
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr not in APPROVED_ATTRIBUTES
        ):
            found.append(f"{path.relative_to(SRC_ROOT)}:{node.lineno} random.{node.attr}")
        # from random import <module-level function>
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in APPROVED_ATTRIBUTES:
                    found.append(
                        f"{path.relative_to(SRC_ROOT)}:{node.lineno} "
                        f"from random import {alias.name}"
                    )
    return found


def test_source_tree_is_scanned():
    paths = _module_paths()
    assert len(paths) > 30, "audit should see the whole package"


@pytest.mark.parametrize("path", _module_paths(), ids=lambda p: str(p.relative_to(SRC_ROOT)))
def test_no_bare_random_calls(path):
    assert _violations(path) == []
