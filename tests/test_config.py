"""Unit tests for the deployment configuration."""

import pytest

from repro.index.config import default_config


def test_defaults_follow_paper_section_6_1():
    config = default_config()
    assert config.successor_list_length == 4
    assert config.stabilization_period == 4.0
    assert config.storage_factor == 5
    assert config.replication_factor == 6


def test_thresholds_derived_from_storage_factor():
    config = default_config(storage_factor=5)
    assert config.overflow_threshold == 10
    assert config.underflow_threshold == 5


def test_validate_rejects_bad_values():
    for overrides in (
        {"successor_list_length": 0},
        {"stabilization_period": 0},
        {"storage_factor": 0},
        {"replication_factor": -1},
        {"key_space": 0},
        {"router": "nonsense"},
    ):
        with pytest.raises(ValueError):
            default_config(**overrides)


def test_with_naive_protocols_flips_all_flags():
    config = default_config().with_naive_protocols()
    assert not config.consistent_insert
    assert not config.use_scan_range
    assert not config.safe_leave
    assert not config.extra_hop_replication
    assert not config.proactive_nudge


def test_with_pepper_protocols_enables_all_flags():
    config = default_config().with_naive_protocols().with_pepper_protocols()
    assert config.consistent_insert
    assert config.use_scan_range
    assert config.safe_leave
    assert config.extra_hop_replication


def test_copy_overrides_single_field():
    config = default_config()
    copy = config.copy(successor_list_length=8)
    assert copy.successor_list_length == 8
    assert config.successor_list_length == 4


def test_timeout_helpers_positive():
    config = default_config()
    assert config.join_ack_timeout > 0
    assert config.leave_ack_timeout > config.stabilization_period


def test_original_instance_unchanged_by_protocol_switch():
    config = default_config()
    config.with_naive_protocols()
    assert config.consistent_insert
