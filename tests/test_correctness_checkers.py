"""Unit tests for the correctness checkers (Definitions 3-7)."""

from dataclasses import dataclass, field
from typing import List

from repro.core.correctness import (
    CheckResult,
    ItemTimeline,
    QueryRecord,
    check_consistent_successor_pointers,
    check_item_availability,
    check_query_result,
    check_ring_connectivity,
    check_scan_range_correctness,
)
from repro.core.histories import History, Operation
from repro.ring.entries import JOINED, LEAVING, SuccessorEntry


# --------------------------------------------------------------------------- fake peers
@dataclass
class FakeRing:
    state: str
    value: float
    succ_list: List[SuccessorEntry] = field(default_factory=list)


@dataclass
class FakePeer:
    address: str
    alive: bool
    ring: FakeRing


def make_ring_peers(values, lists, states=None):
    peers = []
    for index, (address, value) in enumerate(values):
        entries = [SuccessorEntry(a, v, JOINED, True) for a, v in lists[index]]
        state = states[index] if states else JOINED
        peers.append(FakePeer(address, True, FakeRing(state, value, entries)))
    return peers


# --------------------------------------------------------------------------- Definition 5
def test_consistent_pointers_accepts_perfect_ring():
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    lists = [
        [("b", 20.0), ("c", 30.0)],
        [("c", 30.0), ("a", 10.0)],
        [("a", 10.0), ("b", 20.0)],
    ]
    result = check_consistent_successor_pointers(make_ring_peers(values, lists))
    assert result.ok, result.violations


def test_consistent_pointers_detects_missing_pointer():
    # "a" skips "b" (its true successor): pointer gap, Definition 5 violated.
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    lists = [
        [("c", 30.0)],
        [("c", 30.0), ("a", 10.0)],
        [("a", 10.0), ("b", 20.0)],
    ]
    result = check_consistent_successor_pointers(make_ring_peers(values, lists))
    assert not result.ok


def test_consistent_pointers_detects_gap_between_entries():
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0), ("d", 40.0)]
    lists = [
        [("b", 20.0), ("d", 40.0)],  # c missing between b and d
        [("c", 30.0), ("d", 40.0)],
        [("d", 40.0), ("a", 10.0)],
        [("a", 10.0), ("b", 20.0)],
    ]
    result = check_consistent_successor_pointers(make_ring_peers(values, lists))
    assert not result.ok
    assert any("gap" in violation for violation in result.violations)


def test_consistent_pointers_ignores_dead_and_non_joined_peers():
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    lists = [
        [("c", 30.0)],  # fine: b is not JOINED so "c" is a's successor
        [("c", 30.0), ("a", 10.0)],
        [("a", 10.0)],
    ]
    peers = make_ring_peers(values, lists, states=[JOINED, LEAVING, JOINED])
    assert check_consistent_successor_pointers(peers).ok


def test_consistent_pointers_single_peer_trivially_ok():
    peers = make_ring_peers([("a", 10.0)], [[]])
    assert check_consistent_successor_pointers(peers).ok


# --------------------------------------------------------------------------- connectivity
def test_connectivity_accepts_connected_ring():
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    lists = [
        [("b", 20.0)],
        [("c", 30.0)],
        [("a", 10.0)],
    ]
    assert check_ring_connectivity(make_ring_peers(values, lists)).ok


def test_connectivity_detects_disconnection():
    values = [("a", 10.0), ("b", 20.0), ("c", 30.0)]
    lists = [
        [("b", 20.0)],
        [("a", 10.0)],
        [("a", 10.0)],  # nobody points at c
    ]
    result = check_ring_connectivity(make_ring_peers(values, lists))
    assert not result.ok


# --------------------------------------------------------------------------- timelines
def make_history(ops):
    return History([Operation(i, kind, time, peer, attrs) for i, (time, kind, peer, attrs) in enumerate(ops)])


def test_timeline_basic_intervals():
    history = make_history(
        [
            (1.0, "item_stored", "p1", {"skv": 5.0}),
            (4.0, "item_removed", "p1", {"skv": 5.0}),
            (6.0, "item_stored", "p2", {"skv": 5.0}),
        ]
    )
    timeline = ItemTimeline(history)
    assert timeline.live_at(5.0, 2.0)
    assert not timeline.live_at(5.0, 5.0)
    assert timeline.live_at(5.0, 6.5)
    assert timeline.ever_live_between(5.0, 0.0, 2.0)
    assert not timeline.live_throughout(5.0, 1.0, 7.0)
    assert timeline.live_throughout(5.0, 1.5, 3.5)


def test_timeline_item_moving_between_peers_is_continuously_live():
    history = make_history(
        [
            (1.0, "item_stored", "p1", {"skv": 9.0}),
            (3.0, "item_stored", "p2", {"skv": 9.0}),
            (3.0, "item_removed", "p1", {"skv": 9.0}),
            (10.0, "noop", "p1", {}),
        ]
    )
    timeline = ItemTimeline(history)
    assert timeline.live_throughout(9.0, 1.5, 8.0)


def test_timeline_peer_failure_ends_presence():
    history = make_history(
        [
            (1.0, "item_stored", "p1", {"skv": 2.0}),
            (5.0, "peer_failed", "p1", {}),
            (9.0, "noop", "p2", {}),
        ]
    )
    timeline = ItemTimeline(history)
    assert timeline.live_at(2.0, 3.0)
    assert not timeline.live_at(2.0, 6.0)
    assert 2.0 not in timeline.live_keys_at(6.0)


# --------------------------------------------------------------------------- Definition 4
def test_query_result_accepts_correct_result():
    history = make_history(
        [
            (0.0, "item_stored", "p1", {"skv": 10.0}),
            (0.0, "item_stored", "p1", {"skv": 20.0}),
            (50.0, "noop", "p1", {}),
        ]
    )
    timeline = ItemTimeline(history)
    query = QueryRecord(lb=5.0, ub=25.0, start_time=1.0, end_time=2.0, result_keys=[10.0, 20.0])
    assert check_query_result(timeline, query).ok


def test_query_result_detects_missing_live_item():
    history = make_history(
        [
            (0.0, "item_stored", "p1", {"skv": 10.0}),
            (0.0, "item_stored", "p1", {"skv": 20.0}),
            (50.0, "noop", "p1", {}),
        ]
    )
    timeline = ItemTimeline(history)
    query = QueryRecord(lb=5.0, ub=25.0, start_time=1.0, end_time=2.0, result_keys=[10.0])
    result = check_query_result(timeline, query)
    assert not result.ok
    assert any("missing" in violation for violation in result.violations)


def test_query_result_allows_missing_item_that_was_not_live_throughout():
    history = make_history(
        [
            (0.0, "item_stored", "p1", {"skv": 10.0}),
            (1.5, "item_removed", "p1", {"skv": 10.0}),  # deleted mid-query
            (50.0, "noop", "p1", {}),
        ]
    )
    timeline = ItemTimeline(history)
    query = QueryRecord(lb=5.0, ub=25.0, start_time=1.0, end_time=2.0, result_keys=[])
    assert check_query_result(timeline, query).ok


def test_query_result_rejects_out_of_range_and_never_live_keys():
    history = make_history([(0.0, "item_stored", "p1", {"skv": 10.0}), (9.0, "noop", "p1", {})])
    timeline = ItemTimeline(history)
    query = QueryRecord(lb=5.0, ub=25.0, start_time=1.0, end_time=2.0, result_keys=[10.0, 30.0])
    assert not check_query_result(timeline, query).ok
    query = QueryRecord(lb=5.0, ub=25.0, start_time=1.0, end_time=2.0, result_keys=[10.0, 12.0])
    assert not check_query_result(timeline, query).ok


# --------------------------------------------------------------------------- Definition 6
def test_scan_range_correctness_accepts_clean_scan():
    history = make_history(
        [
            (1.0, "scan_init", "p1", {"scan_id": 1, "lb": 0.0, "ub": 30.0}),
            (1.1, "scan_visit", "p1", {"scan_id": 1, "sub_low": 0.0, "sub_high": 10.0, "range": (0.0, 10.0, False)}),
            (1.2, "scan_visit", "p2", {"scan_id": 1, "sub_low": 10.0, "sub_high": 30.0, "range": (10.0, 40.0, False)}),
            (1.3, "scan_done", "p2", {"scan_id": 1, "lb": 0.0, "ub": 30.0}),
        ]
    )
    assert check_scan_range_correctness(history).ok


def test_scan_range_correctness_detects_uncovered_interval():
    history = make_history(
        [
            (1.0, "scan_init", "p1", {"scan_id": 1, "lb": 0.0, "ub": 30.0}),
            (1.1, "scan_visit", "p1", {"scan_id": 1, "sub_low": 0.0, "sub_high": 10.0, "range": (0.0, 10.0, False)}),
            (1.3, "scan_done", "p1", {"scan_id": 1, "lb": 0.0, "ub": 30.0}),
        ]
    )
    assert not check_scan_range_correctness(history).ok


def test_scan_range_correctness_detects_overlap():
    history = make_history(
        [
            (1.0, "scan_init", "p1", {"scan_id": 1, "lb": 0.0, "ub": 20.0}),
            (1.1, "scan_visit", "p1", {"scan_id": 1, "sub_low": 0.0, "sub_high": 15.0, "range": (0.0, 15.0, False)}),
            (1.2, "scan_visit", "p2", {"scan_id": 1, "sub_low": 10.0, "sub_high": 20.0, "range": (10.0, 20.0, False)}),
            (1.3, "scan_done", "p2", {"scan_id": 1, "lb": 0.0, "ub": 20.0}),
        ]
    )
    result = check_scan_range_correctness(history)
    assert not result.ok
    assert any("overlap" in violation for violation in result.violations)


def test_scan_range_correctness_detects_subrange_outside_peer_range():
    history = make_history(
        [
            (1.0, "scan_init", "p1", {"scan_id": 1, "lb": 0.0, "ub": 10.0}),
            (1.1, "scan_visit", "p1", {"scan_id": 1, "sub_low": 0.0, "sub_high": 10.0, "range": (0.0, 5.0, False)}),
            (1.3, "scan_done", "p1", {"scan_id": 1, "lb": 0.0, "ub": 10.0}),
        ]
    )
    assert not check_scan_range_correctness(history).ok


def test_scan_range_correctness_requires_matching_init():
    history = make_history(
        [(1.3, "scan_done", "p1", {"scan_id": 7, "lb": 0.0, "ub": 10.0})]
    )
    assert not check_scan_range_correctness(history).ok


# --------------------------------------------------------------------------- Definition 7
def test_item_availability_ok_when_everything_live():
    history = make_history(
        [
            (0.0, "index_insert_item", "client", {"skv": 1.0}),
            (0.1, "item_stored", "p1", {"skv": 1.0}),
            (10.0, "noop", "p1", {}),
        ]
    )
    assert check_item_availability(history).ok


def test_item_availability_detects_lost_item():
    history = make_history(
        [
            (0.0, "index_insert_item", "client", {"skv": 1.0}),
            (0.1, "item_stored", "p1", {"skv": 1.0}),
            (5.0, "peer_failed", "p1", {}),
            (30.0, "noop", "p2", {}),
        ]
    )
    assert not check_item_availability(history).ok


def test_item_availability_ignores_deleted_items():
    history = make_history(
        [
            (0.0, "index_insert_item", "client", {"skv": 1.0}),
            (0.1, "item_stored", "p1", {"skv": 1.0}),
            (2.0, "index_delete_item", "client", {"skv": 1.0}),
            (2.1, "item_removed", "p1", {"skv": 1.0}),
            (30.0, "noop", "p2", {}),
        ]
    )
    assert check_item_availability(history).ok


# --------------------------------------------------------------------------- CheckResult
def test_check_result_merge_and_bool():
    good = CheckResult.success()
    bad = CheckResult.failure(["problem"])
    merged = good.merge(bad)
    assert bool(good)
    assert not bool(bad)
    assert not merged.ok
    assert merged.violations == ["problem"]
