"""Tests for the content routers (linear walk and hierarchical pointer table)."""

import pytest

from repro.router.hierarchical import HierarchicalRingRouter
from repro.router.linear import LinearRouter
from repro.router import make_router
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=61, peers=10)


def test_make_router_selects_implementation():
    index, _keys = build_cluster(seed=62, peers=3, keys=[200.0, 220.0, 240.0])
    peer = index.ring_members()[0]
    linear = make_router(peer, peer.ring, peer.store, index.config.copy(router="linear"))
    hierarchical = make_router(peer, peer.ring, peer.store, index.config)
    assert isinstance(linear, LinearRouter)
    assert isinstance(hierarchical, HierarchicalRingRouter)


def test_hierarchical_routing_finds_owner_for_every_key(cluster):
    index, keys = cluster
    start = index.ring_members()[0]
    for key in keys[::5]:
        found = index.run_process(start.router.find_responsible(key))
        assert found is not None
        assert index.peers[found].store.owns_key(key)


def test_linear_routing_finds_owner(cluster):
    index, keys = cluster
    peer = index.ring_members()[0]
    linear = LinearRouter(peer, peer.ring, peer.store, index.config)
    for key in keys[::7]:
        found = index.run_process(linear.find_responsible(key))
        assert found is not None
        assert index.peers[found].store.owns_key(key)


def test_routing_from_every_member_converges(cluster):
    index, keys = cluster
    key = keys[len(keys) // 2]
    owners = set()
    for peer in index.ring_members():
        owners.add(index.run_process(peer.router.find_responsible(key)))
    assert len(owners) == 1


def test_local_owner_short_circuits(cluster):
    index, keys = cluster
    key = keys[0]
    owner = next(p for p in index.ring_members() if p.store.owns_key(key))
    found = index.run_process(owner.router.find_responsible(key))
    assert found == owner.address


def test_router_table_is_populated_after_refresh(cluster):
    index, _keys = cluster
    index.run(2 * index.config.router_refresh_period)
    populated = [p for p in index.ring_members() if p.router.table]
    assert len(populated) >= len(index.ring_members()) // 2


def test_routing_survives_a_failed_peer(cluster):
    index, keys = cluster
    victim = index.ring_members()[3]
    index.fail_peer(victim.address)
    index.run(20.0)
    start = index.ring_members()[0]
    key = keys[10]
    found = index.run_process(start.router.find_responsible(key))
    assert found is not None
    assert index.peers[found].alive
