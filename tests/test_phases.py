"""Tests for the phased scenario lifecycle (build -> settle -> stress).

Four contracts are pinned down here:

* **Legacy equivalence.**  A flat spec resolves into the legacy phase
  decomposition, and running it through the phase executor produces the exact
  event trace the historical driver produced -- a flat spec and its explicit
  phased rewrite are indistinguishable, measurement for measurement.
* **Start conditions.**  ``start_offset`` delays, ``start_fraction`` gates on
  ring membership under churn, and ``start_quiescence`` waits out the split
  cascade, firing exactly once; every bounded wait degrades to a timed-out
  start instead of hanging.
* **Per-phase accounting.**  Event/RPC deltas across a scenario's phases sum
  to the scenario totals.
* **Registry shape.**  The scale cells are phased (build -> settle -> stress)
  and the stress phase always starts from a fully built ring.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.phases import ChurnSpec, PhaseSpec, QueryMixSpec, WorkloadSpec, validate_phases
from repro.harness.scenarios import ScenarioSpec, build_experiment, get_scenario, run_spec

TINY = ScenarioSpec(
    name="phase-tiny",
    peers=6,
    join_period=1.0,
    settle_time=10.0,
    workload=WorkloadSpec(items=40, insert_rate=4.0),
    queries=QueryMixSpec(count=3),
)

# A small split-cascade cell: free peers arrive as a crowd and a fast item
# stream pulls them into the ring through splits.  The build phase ends while
# the cascade is still running (the stream outpaces the split protocol), so
# the quiescence gate does real, observable waiting.
CASCADE = ScenarioSpec(
    name="phase-cascade",
    peers=30,
    phases=(
        PhaseSpec(
            name="build",
            arrivals=1,
            arrival_period=1.0,
            churn=ChurnSpec(flash_crowd_peers=28, flash_crowd_at=1.0, flash_crowd_spacing=0.05),
            workload=WorkloadSpec(items=240, insert_rate=240.0),
            settle=0.5,
        ),
        PhaseSpec(name="settle", start_quiescence=6.0, start_timeout=300.0, settle=1.0),
        PhaseSpec(
            name="stress",
            churn=ChurnSpec(failure_rate_per_100s=8.0, failure_window=30.0),
            queries=QueryMixSpec(count=3),
            settle=5.0,
        ),
    ),
)


# --------------------------------------------------------------------------- legacy resolution
def test_flat_spec_resolves_into_legacy_phases():
    phases = TINY.resolved_phases()
    assert [phase.name for phase in phases] == ["build", "queries"]
    build = phases[0]
    assert build.arrivals == TINY.peers - 1
    assert build.arrival_period == TINY.join_period
    assert build.workload == TINY.workload
    assert build.settle == TINY.settle_time
    assert phases[1].queries == TINY.queries


def test_flat_spec_with_failures_and_outage_resolves_all_legacy_phases():
    spec = TINY.with_(
        churn=ChurnSpec(failure_rate_per_100s=6.0, failure_window=50.0, correlated_failures=2)
    )
    names = [phase.name for phase in spec.resolved_phases()]
    assert names == ["build", "failures", "outage", "queries"]
    failures = spec.resolved_phases()[1]
    assert failures.churn.failure_rate_per_100s == 6.0
    assert failures.churn.failure_window == 50.0


def test_flat_spec_without_queries_drops_the_query_phase():
    spec = TINY.with_(queries=QueryMixSpec(count=0))
    assert [phase.name for phase in spec.resolved_phases()] == ["build"]


def test_explicit_phases_returned_verbatim_and_validated():
    assert CASCADE.resolved_phases() == CASCADE.phases
    with pytest.raises(ValueError, match="duplicate phase name"):
        TINY.with_(phases=(PhaseSpec(name="a"), PhaseSpec(name="a"))).resolved_phases()
    with pytest.raises(ValueError, match="start_fraction"):
        PhaseSpec(name="x", start_fraction=1.5).validate()
    with pytest.raises(ValueError, match="start_quiescence"):
        PhaseSpec(name="x", start_quiescence=0.0).validate()
    with pytest.raises(ValueError, match="settle"):
        PhaseSpec(name="x", settle=-1.0).validate()
    validate_phases(CASCADE.phases)  # the registry shape itself is valid


def test_flat_spec_and_explicit_phased_rewrite_are_equivalent():
    """The tentpole invariant: phasing is a refactor, not a behaviour change."""
    flat = TINY.with_(
        churn=ChurnSpec(failure_rate_per_100s=8.0, failure_window=40.0)
    )
    phased = flat.with_(phases=flat.resolved_phases())
    first = run_spec(flat, seed=5)
    second = run_spec(phased, seed=5)
    assert first.events_processed == second.events_processed
    assert first.sim_time_s == second.sim_time_s
    assert first.rpc_per_method == second.rpc_per_method
    assert first.metrics == second.metrics
    assert first.ring_members == second.ring_members
    assert first.items_stored == second.items_stored
    assert [p["phase"] for p in first.phases] == [p["phase"] for p in second.phases]


# --------------------------------------------------------------------------- start conditions
def test_start_offset_delays_the_phase():
    spec = TINY.with_(
        phases=(
            PhaseSpec(name="build", arrivals=5, arrival_period=1.0,
                      workload=WorkloadSpec(items=40, insert_rate=4.0), settle=10.0),
            PhaseSpec(name="late", start_offset=7.5, duration=0.0),
        )
    )
    result = run_spec(spec, seed=0)
    late = result.phases[1]
    assert late["start_condition"] == "offset"
    assert late["wait_s"] == pytest.approx(7.5)
    assert not late["start_timed_out"]


def test_membership_fraction_triggers_under_churn():
    """The gated phase starts exactly when the crowd has split into the ring."""
    spec = CASCADE.with_(
        phases=(
            CASCADE.phases[0],
            PhaseSpec(name="grown", start_fraction=0.9, start_timeout=300.0, start_poll=0.25),
        )
    )
    result = run_spec(spec, seed=1)
    grown = result.phases[1]
    assert grown["start_condition"] == "membership_fraction"
    assert not grown["start_timed_out"]
    assert grown["ring_members_start"] >= 27  # ceil(0.9 * 30)
    # The build phase alone had not reached the target when it ended, so the
    # fraction gate did real waiting (the condition did not hold trivially).
    assert result.phases[0]["ring_members"] < 27
    assert grown["wait_s"] > 0


def test_quiescence_waits_out_the_split_cascade_and_fires_once():
    result = run_spec(CASCADE, seed=0)
    build, settle, stress = result.phases
    assert settle["start_condition"] == "quiescence"
    assert not settle["start_timed_out"]
    # The cascade was still running when build ended: quiescence did real work.
    assert settle["ring_members_start"] > build["ring_members"]
    assert settle["wait_s"] >= 6.0
    # Fires exactly once: membership does not move again between the gate
    # firing and the stress phase starting (nothing re-armed the wait).
    assert settle["ring_members"] == settle["ring_members_start"]
    assert stress["ring_members_start"] == settle["ring_members"]
    # And the gated pre-stress state is the fully built ring.
    assert settle["ring_members"] == 30


def test_quiescence_detection_is_deterministic():
    first = run_spec(CASCADE, seed=3)
    second = run_spec(CASCADE, seed=3)
    assert [p["wait_s"] for p in first.phases] == [p["wait_s"] for p in second.phases]
    assert first.events_processed == second.events_processed


def test_unreachable_start_condition_times_out_instead_of_hanging():
    spec = CASCADE.with_(
        phases=(
            CASCADE.phases[0],
            # A quiet window longer than the whole wait budget can never be
            # observed: the phase must start anyway, flagged as timed out.
            PhaseSpec(name="impossible", start_quiescence=50.0, start_timeout=5.0,
                      duration=0.0),
        )
    )
    result = run_spec(spec, seed=0)
    late = result.phases[1]
    assert late["start_timed_out"]
    assert late["wait_s"] <= 6.0


def test_fraction_and_quiescence_share_one_timeout_budget():
    """Composed bounded conditions must not each get a full start_timeout."""
    spec = TINY.with_(
        phases=(
            PhaseSpec(name="build", arrivals=2, arrival_period=1.0,
                      workload=WorkloadSpec(items=20, insert_rate=4.0), settle=5.0),
            # Both conditions unreachable: the combined wait must stay inside
            # ONE start_timeout (plus at most a poll), not two.
            PhaseSpec(name="gated", start_fraction=1.0, start_quiescence=50.0,
                      start_timeout=8.0, start_poll=0.5, duration=0.0),
        )
    )
    result = run_spec(spec, seed=0)
    gated = result.phases[1]
    assert gated["start_timed_out"]
    assert gated["wait_s"] <= 9.0


def test_membership_fraction_timeout_is_bounded():
    spec = TINY.with_(
        phases=(
            PhaseSpec(name="build", arrivals=2, arrival_period=1.0,
                      workload=WorkloadSpec(items=20, insert_rate=4.0), settle=5.0),
            # 6 peers exist in total; a 100% fraction cannot be reached when
            # some stay free, so the gate must give up at the timeout.
            PhaseSpec(name="full", start_fraction=1.0, start_timeout=8.0, start_poll=0.5,
                      duration=0.0),
        )
    )
    result = run_spec(spec, seed=0)
    full = result.phases[1]
    assert full["start_timed_out"]
    assert 8.0 <= full["wait_s"] <= 9.0


# --------------------------------------------------------------------------- accounting
def test_per_phase_metrics_sum_to_scenario_totals():
    result = run_spec(CASCADE, seed=2)
    assert sum(p["events_processed"] for p in result.phases) == result.events_processed
    assert sum(p["rpc_calls"] for p in result.phases) == result.rpc_calls
    summed: dict = {}
    for phase in result.phases:
        for method, count in phase["rpc_per_method"].items():
            summed[method] = summed.get(method, 0) + count
    assert summed == result.rpc_per_method
    assert result.phases[-1]["ring_members"] == result.ring_members
    assert result.phases[-1]["free_peers"] == result.free_peers
    assert sum(p["queries_run"] for p in result.phases) == result.queries_run
    json.dumps(result.as_dict())  # the breakdown serialises into BENCH json


def test_phase_wall_and_sim_spans_are_positive_and_ordered():
    result = run_spec(CASCADE, seed=0)
    starts = [p["started_at_s"] for p in result.phases]
    assert starts == sorted(starts)
    for phase in result.phases:
        assert phase["sim_seconds"] >= 0
        assert phase["wall_clock_s"] >= 0
        assert phase["activity_at_s"] == pytest.approx(
            phase["started_at_s"] + phase["wait_s"]
        )


def test_phase_schedule_plays_an_arbitrary_churn_trace():
    """``PhaseSpec.schedule`` injects a bespoke join/failure trace verbatim."""
    from repro.workloads.churn import FAIL, JOIN, ChurnEvent, ChurnSchedule

    trace = ChurnSchedule(
        [ChurnEvent(0.5 + i * 1.0, JOIN) for i in range(5)] + [ChurnEvent(12.0, FAIL)]
    )
    spec = TINY.with_(
        phases=(
            PhaseSpec(
                name="build",
                schedule=trace,
                workload=WorkloadSpec(items=40, insert_rate=4.0),
                settle=10.0,
            ),
        )
    )
    result = run_spec(spec, seed=4)
    build = result.phases[0]
    # All five scheduled joins played and the scheduled failure killed one:
    # bootstrap + 5 arrivals - 1 failure remain live (ring members or free).
    assert result.ring_members + result.free_peers == 5
    # The derived active window covered the whole trace (last event at 12 s).
    assert build["sim_seconds"] >= 12.0 + 10.0


def test_phase_schedule_merges_with_staggered_arrivals():
    """A bespoke schedule composes with the declarative arrival stream."""
    from repro.workloads.churn import JOIN, ChurnEvent, ChurnSchedule

    trace = ChurnSchedule([ChurnEvent(2.0, JOIN), ChurnEvent(4.0, JOIN)])
    spec = TINY.with_(
        phases=(
            PhaseSpec(
                name="build",
                arrivals=3,
                arrival_period=1.0,
                schedule=trace,
                workload=WorkloadSpec(items=40, insert_rate=4.0),
                settle=10.0,
            ),
        )
    )
    result = run_spec(spec, seed=5)
    # 1 bootstrap + 3 staggered arrivals + 2 scheduled joins, nobody fails.
    assert result.ring_members + result.free_peers == 6


def test_run_phases_on_experiment_returns_outcomes_and_victims():
    spec = TINY.with_(
        churn=ChurnSpec(correlated_failures=2),
        workload=WorkloadSpec(items=60, insert_rate=4.0),
        peers=10,
    )
    experiment = build_experiment(spec, seed=1)
    results, outcomes, victims = experiment.run_phases(spec.resolved_phases(), total_peers=10)
    assert [r.phase for r in results] == ["build", "outage", "queries"]
    assert len(victims) == 2
    assert len(outcomes) == 3
    assert results[1].correlated_failures_injected == 2


# --------------------------------------------------------------------------- registry shape
def test_scale_cells_are_phased_build_settle_stress():
    for name in ("scale_100", "scale_300", "scale_1000", "scale_3000", "scale_5000"):
        spec = get_scenario(name)
        assert [phase.name for phase in spec.phases] == ["build", "settle", "stress"]
        assert spec.phases[1].start_quiescence is not None
        assert spec.peers == int(name.split("_")[1])
        # The failure window lives exclusively in the stress phase.
        assert spec.phases[0].churn.failure_rate_per_100s == 0
        assert spec.phases[2].churn.failure_rate_per_100s > 0
    adaptive = get_scenario("scale_1000_adaptive")
    assert adaptive.phases == get_scenario("scale_1000").phases
    assert get_scenario("scale_300_adaptive").maintenance.policy == "adaptive"
    assert get_scenario("scale_5000_adaptive").maintenance.policy == "adaptive"


def test_total_items_follows_the_resolved_lifecycle():
    assert TINY.total_items() == 40
    assert CASCADE.total_items() == 240
    two_streams = TINY.with_(
        phases=(
            PhaseSpec(name="one", workload=WorkloadSpec(items=30, insert_rate=4.0)),
            PhaseSpec(name="two", workload=WorkloadSpec(items=20, insert_rate=4.0)),
        )
    )
    assert two_streams.total_items() == 50
