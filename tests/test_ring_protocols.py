"""Ring-level tests: Chord substrate, PEPPER insertSucc and availability-preserving leave."""

import pytest

from repro.core.pepper_ring import PepperRing
from repro.core.correctness import (
    check_consistent_successor_pointers,
    check_ring_connectivity,
)
from repro.harness.metrics import Metrics
from repro.index.config import default_config
from repro.ring.chord import ChordRing, in_open_interval
from repro.ring.entries import FREE, JOINED, LEAVING, SuccessorEntry
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.randomness import RngStreams


class RingPeer(Node):
    """A bare node carrying only the ring component (for ring-level tests)."""

    def __init__(self, sim, network, address, value, config, ring_class, metrics=None):
        rng = RngStreams(config.seed).stream(f"ring:{address}")
        super().__init__(sim, network, address, rng=rng)
        self.ring = ring_class(self, value, config, metrics=metrics)


class RingHarness:
    """Builds and manipulates a ring of bare ring peers."""

    def __init__(self, ring_class=PepperRing, metrics=None, **config_overrides):
        self.config = default_config(**config_overrides)
        self.sim = Simulator()
        self.network = Network(self.sim, RngStreams(1).stream("net"), NetworkConfig())
        self.metrics = metrics or Metrics()
        self.ring_class = ring_class
        self.peers = []

    def bootstrap(self, value=1000.0):
        peer = RingPeer(
            self.sim, self.network, "n000", value, self.config, self.ring_class, self.metrics
        )
        peer.ring.create()
        self.peers.append(peer)
        return peer

    def predecessor_for(self, value):
        """The existing ring member that should precede ``value``."""
        members = [p for p in self.peers if p.alive and p.ring.state == JOINED]
        below = [p for p in members if p.ring.value < value]
        if below:
            return max(below, key=lambda p: p.ring.value)
        return max(members, key=lambda p: p.ring.value)

    def join_peer(self, value):
        address = f"n{len(self.peers):03d}"
        peer = RingPeer(
            self.sim, self.network, address, value, self.config, self.ring_class, self.metrics
        )
        self.peers.append(peer)
        predecessor = self.predecessor_for(value)
        self.sim.run_process(peer.ring.join(predecessor.address), timeout=300.0)
        return peer

    def run(self, duration):
        self.sim.run(until=self.sim.now + duration)

    def live(self):
        return [p for p in self.peers if p.alive]


# --------------------------------------------------------------------------- helpers
def test_in_open_interval_handles_wrap_and_degenerate():
    assert in_open_interval(5.0, 1.0, 10.0)
    assert not in_open_interval(1.0, 1.0, 10.0)
    assert in_open_interval(0.5, 9.0, 2.0)  # wrapping interval
    assert in_open_interval(9.5, 9.0, 2.0)
    assert not in_open_interval(5.0, 9.0, 2.0)
    assert in_open_interval(3.0, 7.0, 7.0)  # degenerate: whole ring minus endpoint
    assert not in_open_interval(7.0, 7.0, 7.0)


def test_successor_entry_wire_round_trip():
    entry = SuccessorEntry("addr", 5.0, LEAVING, stabilized=True)
    restored = SuccessorEntry.from_wire(entry.to_wire())
    assert restored.address == "addr"
    assert restored.value == 5.0
    assert restored.state == LEAVING
    assert restored.stabilized is False  # never trusted over the wire


# --------------------------------------------------------------------------- bootstrap & joins
def test_first_peer_points_at_itself():
    harness = RingHarness()
    first = harness.bootstrap()
    assert first.ring.state == JOINED
    assert first.ring.succ_list[0].address == first.address
    assert first.ring.pred_address == first.address


def test_sequential_joins_build_consistent_ring_pepper():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    for value in (100.0, 300.0, 500.0, 700.0, 900.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(3 * harness.config.stabilization_period)
    assert check_consistent_successor_pointers(harness.live()).ok
    assert check_ring_connectivity(harness.live()).ok


def test_sequential_joins_build_connected_ring_naive():
    harness = RingHarness(
        ring_class=ChordRing, consistent_insert=False, safe_leave=False, proactive_nudge=False
    )
    harness.bootstrap(1000.0)
    for value in (100.0, 300.0, 500.0, 700.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(4 * harness.config.stabilization_period)
    assert check_ring_connectivity(harness.live()).ok


def test_pepper_join_keeps_pointers_consistent_immediately():
    """Theorem 1: at no sampled instant do JOINED peers have missing pointers."""
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    for value in (200.0, 400.0, 600.0, 800.0):
        harness.join_peer(value)
        # No settling time: the new peer is JOINED, so pointers must already
        # be consistent among JOINED peers.
        result = check_consistent_successor_pointers(harness.live())
        assert result.ok, result.violations


def test_naive_join_leaves_window_of_inconsistency():
    """Section 4.2.1: right after a naive insert some predecessor misses the new peer."""
    harness = RingHarness(
        ring_class=ChordRing, consistent_insert=False, proactive_nudge=False
    )
    harness.bootstrap(1000.0)
    for value in (200.0, 400.0, 600.0, 800.0):
        harness.join_peer(value)
        harness.run(3 * harness.config.stabilization_period)
    # Insert one more peer between 400 and 600 and check instantly, before any
    # stabilization round can propagate it.
    harness.join_peer(500.0)
    result = check_consistent_successor_pointers(harness.live())
    assert not result.ok


def test_insert_succ_metric_recorded():
    metrics = Metrics()
    harness = RingHarness(ring_class=PepperRing, metrics=metrics)
    harness.bootstrap(1000.0)
    harness.join_peer(500.0)
    harness.run(2.0)
    assert metrics.count("insert_succ") == 1
    assert metrics.mean("insert_succ") >= 0.0


def test_insert_redirect_when_contacting_wrong_predecessor():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    harness.join_peer(200.0)
    harness.join_peer(600.0)
    harness.run(8.0)
    # Join a peer at 700 but deliberately contact the peer at 200: the ring
    # must redirect the join towards the correct predecessor (600).
    address = f"n{len(harness.peers):03d}"
    peer = RingPeer(harness.sim, harness.network, address, 700.0, harness.config, PepperRing)
    harness.peers.append(peer)
    wrong_contact = next(p for p in harness.peers if p.ring.value == 200.0)
    harness.sim.run_process(peer.ring.join(wrong_contact.address), timeout=300.0)
    harness.run(3 * harness.config.stabilization_period)
    assert peer.ring.state == JOINED
    assert check_consistent_successor_pointers(harness.live()).ok


class RedirectingStub(Node):
    """A forged ring member whose insertSucc always redirects to a fixed partner."""

    def __init__(self, sim, network, address):
        super().__init__(sim, network, address)
        self.partner = None
        self.requests = 0
        self.register_handler("ring_insert_successor", self._redirect)

    def _redirect(self, payload, request):
        self.requests += 1
        return {"accepted": False, "state": JOINED, "redirect": self.partner}


def test_join_redirect_cycle_aborts_instead_of_spinning():
    """A cyclic stale-pointer redirect chain (A -> B -> A) must hit the attempt
    cap and abort -- the ``ring_insert_successor`` redirect storm seen under
    flash crowds.  Before the fix the redirect path skipped the cap check, so
    this join spun forever."""
    harness = RingHarness(ring_class=ChordRing)
    a = RedirectingStub(harness.sim, harness.network, "stubA")
    b = RedirectingStub(harness.sim, harness.network, "stubB")
    a.partner, b.partner = "stubB", "stubA"
    joiner = RingPeer(harness.sim, harness.network, "joiner", 500.0, harness.config, ChordRing)
    with pytest.raises(RuntimeError, match="could not join"):
        harness.sim.run_process(joiner.ring.join("stubA"), timeout=500.0)
    assert joiner.ring.state == FREE
    # The cap bounds the storm: at most 20 insert attempts reach the ring.
    assert a.requests + b.requests <= 20
    # The 2-cycle redirect memory backs off between laps instead of
    # ping-ponging at network speed: simulated time actually advanced.
    assert harness.sim.now > 5.0


# --------------------------------------------------------------------------- failures
def test_failure_detection_repairs_ring():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    for value in (200.0, 400.0, 600.0, 800.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(8.0)
    victim = next(p for p in harness.peers if p.ring.value == 400.0)
    victim.fail()
    harness.run(4 * harness.config.stabilization_period)
    assert check_ring_connectivity(harness.live()).ok
    assert check_consistent_successor_pointers(harness.live()).ok
    # The failed peer must not appear in any live successor list any more.
    for peer in harness.live():
        assert all(entry.address != victim.address for entry in peer.ring.succ_list)


def test_predecessor_failure_clears_pointer_and_recovers():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    a = harness.join_peer(200.0)
    b = harness.join_peer(500.0)
    harness.run(10.0)
    assert b.ring.pred_address == a.address
    a.fail()
    harness.run(4 * harness.config.predecessor_check_period)
    assert b.ring.pred_address != a.address


def test_ring_survives_k_minus_one_failures():
    """With successor lists of length 4 the ring tolerates 3 simultaneous failures."""
    harness = RingHarness(ring_class=PepperRing, successor_list_length=4)
    harness.bootstrap(1000.0)
    for value in (100.0, 250.0, 400.0, 550.0, 700.0, 850.0, 925.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(12.0)
    victims = [p for p in harness.peers if p.ring.value in (250.0, 400.0, 550.0)]
    for victim in victims:
        victim.fail()
    harness.run(6 * harness.config.stabilization_period)
    assert check_ring_connectivity(harness.live()).ok


# --------------------------------------------------------------------------- leave
def test_safe_leave_waits_for_acknowledgement():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    for value in (200.0, 400.0, 600.0, 800.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(10.0)
    leaver = next(p for p in harness.peers if p.ring.value == 400.0)
    duration = harness.sim.run_process(leaver.ring.leave(), timeout=300.0)
    assert leaver.ring.state == FREE
    assert duration < harness.config.leave_ack_timeout
    harness.run(4 * harness.config.stabilization_period)
    alive = [p for p in harness.live() if p is not leaver]
    assert check_ring_connectivity(alive).ok


def test_safe_leave_preserves_failure_tolerance():
    """Section 5.1 (Figure 14): after a safe leave, one failure cannot disconnect the ring."""
    harness = RingHarness(ring_class=PepperRing, successor_list_length=2)
    harness.bootstrap(1000.0)
    for value in (200.0, 400.0, 600.0, 800.0):
        harness.join_peer(value)
        harness.run(1.0)
    harness.run(10.0)
    leaver = next(p for p in harness.peers if p.ring.value == 400.0)
    harness.sim.run_process(leaver.ring.leave(), timeout=300.0)
    # Immediately afterwards (no stabilization rounds), fail the leaver's old successor.
    victim = next(p for p in harness.peers if p.ring.value == 600.0)
    victim.fail()
    harness.run(4 * harness.config.stabilization_period)
    alive = [p for p in harness.live() if p not in (leaver,)]
    assert check_ring_connectivity(alive).ok


def test_naive_leave_is_immediate():
    harness = RingHarness(
        ring_class=ChordRing, safe_leave=False, consistent_insert=False
    )
    harness.bootstrap(1000.0)
    harness.join_peer(500.0)
    harness.run(5.0)
    leaver = harness.peers[1]
    duration = harness.sim.run_process(leaver.ring.leave(), timeout=60.0)
    assert duration == pytest.approx(0.0, abs=1e-6)
    assert leaver.ring.state == FREE


def test_leave_of_sole_companion_acks_immediately():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    other = harness.join_peer(500.0)
    harness.run(6.0)
    duration = harness.sim.run_process(other.ring.leave(), timeout=120.0)
    assert duration < 1.0


# --------------------------------------------------------------------------- misc behaviour
def test_value_update_propagates_to_neighbours():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    a = harness.join_peer(200.0)
    b = harness.join_peer(600.0)
    harness.run(10.0)
    a.ring.update_value(300.0)
    harness.run(3 * harness.config.stabilization_period)
    assert b.ring.pred_value == 300.0
    entry = next(e for e in harness.peers[0].ring.succ_list if e.address == a.address)
    assert entry.value == 300.0


def test_free_peer_rejects_stabilization():
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    peer = harness.join_peer(500.0)
    harness.run(6.0)
    harness.sim.run_process(peer.ring.leave(), timeout=300.0)
    harness.run(4 * harness.config.stabilization_period)
    # The remaining member must have dropped every pointer to the departed peer.
    survivor = harness.peers[0]
    assert all(e.address != peer.address for e in survivor.ring.succ_list)


def test_concurrent_inserts_at_same_predecessor_serialise():
    """Two peers joining through the same predecessor both end up in the ring."""
    harness = RingHarness(ring_class=PepperRing)
    harness.bootstrap(1000.0)
    harness.join_peer(200.0)
    harness.run(8.0)
    predecessor = harness.predecessor_for(500.0)
    first = RingPeer(harness.sim, harness.network, "c001", 500.0, harness.config, PepperRing)
    second = RingPeer(harness.sim, harness.network, "c002", 600.0, harness.config, PepperRing)
    harness.peers.extend([first, second])
    join_one = harness.sim.process(first.ring.join(predecessor.address))
    join_two = harness.sim.process(second.ring.join(predecessor.address))
    harness.run(6 * harness.config.stabilization_period)
    assert join_one.triggered and join_one.ok
    assert join_two.triggered and join_two.ok
    assert first.ring.state == JOINED
    assert second.ring.state == JOINED
    harness.run(2 * harness.config.stabilization_period)
    assert check_consistent_successor_pointers(harness.live()).ok
