"""Integration tests for the adaptive maintenance policy on live deployments.

Two claims are pinned down here:

* **Invariants hold.**  The incremental membership index must equal a
  from-scratch rescan after every step of a randomized churn schedule *under
  the adaptive policy* -- backing off validations, passively skipping
  predecessor pings and serving joins from the redirect cache must never make
  the index diverge from reality (``tests/test_membership_invariants.py``
  pins the same schedule under the fixed policy and stays unchanged).

* **Traffic drops.**  On a deployment large enough to have settled phases,
  the adaptive policy issues measurably fewer ``ring_ping`` validation RPCs
  than the fixed policy while ending with an equally healthy ring.
"""

from __future__ import annotations

import random

from repro import PRingIndex, default_config
from repro.harness.scenarios import get_scenario, run_spec
from repro.maintenance import maintenance_policy_from_params
from repro.sim.node import Node

from tests.test_membership_invariants import assert_membership_consistent

CHURN_STEPS = 250


def build_adaptive_index(seed: int, free_peers: int = 0) -> PRingIndex:
    config = default_config(
        seed=seed, maintenance=maintenance_policy_from_params("adaptive")
    ).with_pepper_protocols()
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(free_peers):
        index.add_peer()
    return index


# --------------------------------------------------------------------------- churn invariants
def test_membership_index_matches_rescan_under_adaptive_policy():
    """Randomized joins/inserts/deletes/failures with every mechanism enabled."""
    index = build_adaptive_index(seed=71)
    rng = random.Random(0xADA9)
    next_key = iter(range(1, 100_000))
    inserted: list = []

    for step in range(CHURN_STEPS):
        roll = rng.random()
        if roll < 0.20:
            index.add_peer()
        elif roll < 0.55:
            key = (next(next_key) * 7.3) % index.config.key_space
            if index.insert_item_now(key):
                inserted.append(key)
        elif roll < 0.70 and inserted:
            victim_key = inserted.pop(rng.randrange(len(inserted)))
            index.delete_item_now(victim_key)
        elif roll < 0.80:
            members = index.ring_members()
            if len(members) > 3:
                index.fail_peer(rng.choice(members).address)
        index.run(rng.uniform(0.05, 0.4))
        assert_membership_consistent(index, context=f"after adaptive step {step}")

    assert index.history.count("peer_failed") > 0
    assert index.metrics.count("insert_succ") > 0


def test_membership_survives_merges_under_adaptive_policy():
    """Mass deletions force merges/leaves while validations are backed off."""
    index = build_adaptive_index(seed=72, free_peers=10)
    rng = random.Random(17)
    keys = [i * 97.0 % index.config.key_space for i in range(1, 60)]
    for key in keys:
        index.insert_item_now(key)
        index.run(0.2)
    index.run(20.0)
    assert_membership_consistent(index, "after adaptive build")
    before = len(index.ring_members())
    assert before > 2
    for key in rng.sample(keys, int(len(keys) * 0.8)):
        index.delete_item_now(key)
        index.run(0.5)
        assert_membership_consistent(index, f"after deleting {key}")
    index.run(30.0)
    assert_membership_consistent(index, "after adaptive merge settle")
    assert len(index.ring_members()) < before
    assert len(index.free_peers()) > 0


# --------------------------------------------------------------------------- traffic reduction
def test_adaptive_policy_reduces_ring_ping_traffic():
    """The headline claim, at CI scale: fewer validation RPCs, same ring."""
    fixed = run_spec(get_scenario("scale_100"), seed=0)
    adaptive = run_spec(get_scenario("scale_100_adaptive"), seed=0)
    assert fixed.rpc_per_method["ring_ping"] > 0
    ratio = fixed.rpc_per_method["ring_ping"] / adaptive.rpc_per_method["ring_ping"]
    assert ratio >= 1.5, f"adaptive ring_ping reduction only {ratio:.2f}x"
    # The adaptive router refresh must also cut table-walk traffic: the loop
    # backs off while refreshes validate clean (quiescence-gated settle gives
    # it long clean stretches) and tightens again under the stress phase.
    router_ratio = (
        fixed.rpc_per_method["route_table_entry"]
        / adaptive.rpc_per_method["route_table_entry"]
    )
    assert router_ratio >= 1.2, f"adaptive router-refresh reduction only {router_ratio:.2f}x"
    # Per-entry freshness actually skipped re-pings of confirmed successors.
    assert adaptive.metrics.get("ring_ping_fresh_skip", {}).get("count", 0) > 0
    assert "ring_ping_fresh_skip" not in fixed.metrics
    # The leaner maintenance must not cost ring health or query quality.
    assert adaptive.ring_members >= fixed.ring_members * 0.9
    assert adaptive.items_stored >= fixed.items_stored * 0.9
    assert adaptive.queries_complete == adaptive.queries_run


def test_adaptive_cells_registered():
    for name in (
        "scale_100_adaptive",
        "scale_300_adaptive",
        "scale_1000_adaptive",
        "scale_1000_wan_adaptive",
        "scale_5000",
        "scale_5000_adaptive",
    ):
        assert get_scenario(name) is not None
    adaptive = get_scenario("scale_1000_adaptive")
    assert adaptive.maintenance.policy == "adaptive"
    assert get_scenario("scale_1000").maintenance.policy is None
    wan = get_scenario("scale_1000_wan_adaptive")
    assert wan.latency.model == "lan_wan"
    assert wan.maintenance.policy == "adaptive"


def test_redirect_cache_serves_join_redirects():
    """A join through a stale contact is redirected, striding past one-hop.

    First-hand predecessor adoption (``adopt_inserted_predecessor``) removed
    the systemic source of stale split contacts, so live scale cells no longer
    produce join redirects to count.  The mechanism still matters -- a lagging
    stabilization round can leave any pointer stale -- so this forges the
    situation directly: a join addressed at a member two ring steps before its
    insertion point must be rejected with a redirect, and the redirect cache /
    successor-list stride must answer with the *closest known* predecessor
    instead of the one-step successor walk.
    """
    index = build_adaptive_index(seed=73, free_peers=8)
    for i in range(1, 61):
        index.insert_item_now((i * 83.0) % index.config.key_space)
        index.run(0.2)
    index.run(30.0)
    members = sorted(index.ring_members(), key=lambda peer: peer.ring.value)
    assert len(members) >= 4
    contact, one_step, stride_target, after = members[:4]
    join_value = (stride_target.ring.value + after.ring.value) / 2.0

    redirects_before = index.metrics.count("join_redirect")
    cached_before = index.metrics.count("join_redirect_cached")
    coordinator = Node(index.sim, index.network, "test-redirect-driver")
    responses = []

    def drive():
        response = yield coordinator.call(
            contact.address,
            "ring_insert_successor",
            {"address": "test-joiner", "value": join_value, "bad_redirects": []},
        )
        responses.append(response)

    index.run_process(drive())
    (response,) = responses
    assert response["accepted"] is False
    # The cache strode straight to the closest known predecessor of the
    # joining value, not merely to the contact's immediate successor.
    assert response["redirect"] == stride_target.address
    assert response["redirect"] != one_step.address
    assert index.metrics.count("join_redirect") == redirects_before + 1
    assert index.metrics.count("join_redirect_cached") == cached_before + 1
