"""SimTransport parity: the transport refactor changed zero observable behaviour.

PR "one contract, two transports" moved the RPC surface out of the simulator
core: protocol layers now talk to :class:`repro.transport.api.Transport`
instead of ``sim.network``/``sim.node`` directly, and :class:`SimTransport`
adapts the existing discrete-event Network underneath.  The refactor's promise
is *bit-identical event traces* -- the adapter constructs clock, RNG streams
and network in exactly the pre-refactor order, so every scheduled event lands
on the same ``(time, seq)`` key as before.

These tests pin that promise against end states frozen from the pre-refactor
tree (commit da01b0f): membership, item counts, per-method RPC profiles,
message totals and the exact number of executed events, per scenario x seed.
The smoke matrix runs in tier-1; the heavier ``scale_300`` acceptance matrix
(fixed + adaptive, seeds 0..2) runs under ``REPRO_PARITY_FULL=1`` exactly like
the engine-parity split in ``test_engine_parity.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.runner import run_cell

DATA = Path(__file__).parent / "data"

# sim_time_s was frozen rounded to 6 decimals; every other pinned field is an
# exact integer (or an integer-valued dict) and must match bit-for-bit.
_ROUNDED_FIELDS = {"sim_time_s": 6}


def _load(name: str) -> dict:
    return json.loads((DATA / name).read_text())


def _frozen_cells(name: str):
    """``(scenario, seed, frozen_state)`` triples from a baseline file."""
    for key, state in sorted(_load(name).items()):
        scenario, _, seed = key.rpartition("@")
        yield scenario, int(seed), state


def _assert_matches_frozen(scenario: str, seed: int, frozen: dict) -> None:
    forced = os.environ.pop("REPRO_ENGINE", None)
    try:
        cell = run_cell((scenario, seed))
    finally:
        if forced is not None:
            os.environ["REPRO_ENGINE"] = forced
    assert cell["transport"] == "sim"
    live = {
        field: round(cell[field], digits) if (digits := _ROUNDED_FIELDS.get(field)) else cell[field]
        for field in frozen
    }
    assert live == frozen, (
        f"{scenario}[seed={seed}]: SimTransport diverged from the pre-refactor trace\n"
        f"  frozen: {frozen}\n  live:   {live}"
    )


@pytest.mark.parametrize(
    "scenario,seed,frozen",
    list(_frozen_cells("transport_refactor_baseline_smoke.json")),
    ids=lambda value: value if isinstance(value, str) else None,
)
def test_smoke_matches_pre_refactor_trace(scenario, seed, frozen):
    _assert_matches_frozen(scenario, seed, frozen)


FULL_MATRIX = bool(os.environ.get("REPRO_PARITY_FULL"))


@pytest.mark.skipif(
    not FULL_MATRIX, reason="set REPRO_PARITY_FULL=1 for the scale_300 matrix"
)
@pytest.mark.parametrize(
    "scenario,seed,frozen",
    list(_frozen_cells("transport_refactor_baseline_scale300.json")),
    ids=lambda value: value if isinstance(value, str) else None,
)
def test_scale_300_matches_pre_refactor_trace(scenario, seed, frozen):
    _assert_matches_frozen(scenario, seed, frozen)
