"""Unit tests for the network model and RPC transport."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig, RpcRemoteError, RpcTimeout
from repro.sim.node import Node
from repro.sim.randomness import RngStreams


class EchoNode(Node):
    def rpc_echo(self, payload, request):
        return {"echo": payload, "me": self.address}

    def rpc_slow(self, payload, request):
        yield self.sim.timeout(payload["delay"])
        return {"done": True}

    def rpc_broken(self, payload, request):
        raise ValueError("handler exploded")


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, RngStreams(3).stream("net"), NetworkConfig())
    a = EchoNode(sim, network, "a")
    b = EchoNode(sim, network, "b")
    return sim, network, a, b


def test_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(latency_min=-1).validate()
    with pytest.raises(ValueError):
        NetworkConfig(latency_min=2, latency_max=1).validate()
    with pytest.raises(ValueError):
        NetworkConfig(drop_probability=1.5).validate()
    with pytest.raises(ValueError):
        NetworkConfig(rpc_timeout=0).validate()


def test_rpc_round_trip(env):
    sim, network, a, b = env

    def proc():
        response = yield a.call("b", "echo", {"x": 1})
        return response

    response = sim.run_process(proc())
    assert response == {"echo": {"x": 1}, "me": "b"}
    assert network.stats.rpc_calls == 1


def test_rpc_latency_applied(env):
    sim, network, a, b = env

    def proc():
        yield a.call("b", "echo", {})
        return sim.now

    elapsed = sim.run_process(proc())
    assert elapsed >= 2 * network.config.latency_min
    assert elapsed <= 2 * network.config.latency_max + 1e-9


def test_rpc_to_unknown_address_times_out(env):
    sim, network, a, _b = env

    def proc():
        try:
            yield a.call("ghost", "echo", {}, timeout=0.2)
        except RpcTimeout:
            return "timed out"

    assert sim.run_process(proc()) == "timed out"
    assert network.stats.rpc_timeouts == 1


def test_rpc_to_dead_peer_times_out(env):
    sim, network, a, b = env
    b.fail()

    def proc():
        try:
            yield a.call("b", "echo", {}, timeout=0.2)
        except RpcTimeout:
            return "timed out"

    assert sim.run_process(proc()) == "timed out"


def test_generator_handler_runs_as_process(env):
    sim, network, a, b = env

    def proc():
        response = yield a.call("b", "slow", {"delay": 0.1}, timeout=1.0)
        return response

    assert sim.run_process(proc()) == {"done": True}


def test_handler_exception_becomes_remote_error(env):
    sim, network, a, b = env

    def proc():
        try:
            yield a.call("b", "broken", {})
        except RpcRemoteError as error:
            return str(error)

    assert "exploded" in sim.run_process(proc())


def test_missing_handler_is_remote_error(env):
    sim, network, a, b = env

    def proc():
        try:
            yield a.call("b", "no_such_method", {})
        except RpcRemoteError as error:
            return str(error)

    assert "no handler" in sim.run_process(proc())


def test_message_drop_causes_timeout():
    sim = Simulator()
    config = NetworkConfig(drop_probability=0.999999)
    network = Network(sim, RngStreams(1).stream("net"), config)
    a = EchoNode(sim, network, "a")
    EchoNode(sim, network, "b")

    def proc():
        try:
            yield a.call("b", "echo", {}, timeout=0.3)
        except RpcTimeout:
            return "dropped"

    assert sim.run_process(proc()) == "dropped"
    assert network.stats.messages_dropped >= 1


def test_per_method_stats(env):
    sim, network, a, b = env

    def proc():
        yield a.call("b", "echo", {})
        yield a.call("b", "echo", {})
        yield a.call("b", "slow", {"delay": 0.01})

    sim.run_process(proc())
    assert network.stats.per_method["echo"] == 2
    assert network.stats.per_method["slow"] == 1


def test_registered_handler_takes_precedence(env):
    sim, network, a, b = env
    b.register_handler("echo", lambda payload, request: {"override": True})

    def proc():
        response = yield a.call("b", "echo", {})
        return response

    assert sim.run_process(proc()) == {"override": True}


def test_failed_node_interrupts_processes(env):
    sim, network, a, b = env
    progressed = []

    def long_task():
        yield sim.timeout(100.0)
        progressed.append("finished")

    b.spawn(long_task())
    sim.run(until=1.0)
    b.fail()
    sim.run(until=200.0)
    assert progressed == []
    assert not b.alive


def test_node_every_runs_periodically(env):
    sim, network, a, b = env
    ticks = []
    a.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert len(ticks) == 5


def test_node_every_stops_after_failure(env):
    sim, network, a, b = env
    ticks = []
    a.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    a.fail()
    sim.run(until=10.0)
    assert len(ticks) == 2
