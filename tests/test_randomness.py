"""Unit tests for the seeded RNG streams."""

from repro.sim.randomness import RngStreams


def test_same_seed_same_stream_sequence():
    first = RngStreams(42).stream("network")
    second = RngStreams(42).stream("network")
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RngStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RngStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    forward = RngStreams(9)
    backward = RngStreams(9)
    forward.stream("first")
    value_forward = forward.stream("second").random()
    backward.stream("second")  # created first this time
    value_backward = RngStreams(9).stream("second").random()
    assert value_forward == value_backward


def test_fork_changes_streams():
    base = RngStreams(3)
    forked = base.fork(1)
    assert base.stream("w").random() != forked.stream("w").random()


def test_fork_is_deterministic():
    assert (
        RngStreams(3).fork(5).stream("q").random()
        == RngStreams(3).fork(5).stream("q").random()
    )
