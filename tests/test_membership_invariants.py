"""Churn invariants of the incremental membership index.

The :class:`~repro.index.membership.MembershipIndex` replaces the facade's
O(peers) rescans with sets maintained by ring state/value hooks and failure
hooks.  These tests drive a deployment through a randomized churn schedule --
joins, item inserts (splits), item deletes (merges and leaves), fail-stop
failures -- and after *every* step assert that

* the incremental live/free/ring-member sets equal a from-scratch rescan of
  every peer ever created,
* the ring-member view is strictly sorted by ``(ring value, address)``,
* no failed peer is ever reported as a ring member.

A second group pins down :meth:`PRingIndex.peer_for_key` at the ring
boundaries (below the smallest ring value, above the largest, exactly on a
member's value, single-member ring) against the new sorted view.
"""

from __future__ import annotations

import random

import pytest

from repro import PRingIndex, default_config

CHURN_STEPS = 500


# --------------------------------------------------------------------------- helpers
def rescan(index: PRingIndex):
    """The ground truth the incremental index must match: scan every peer."""
    live = {a: p for a, p in index.peers.items() if p.alive}
    members = {a: p for a, p in live.items() if p.in_ring}
    free = {a: p for a, p in live.items() if p.is_free}
    return live, members, free


def assert_membership_consistent(index: PRingIndex, context: str = "") -> None:
    live, members, free = rescan(index)
    got_live = index.live_peers()
    got_members = index.ring_members()
    got_free = index.free_peers()
    assert {p.address for p in got_live} == set(live), f"live set diverged {context}"
    assert {p.address for p in got_members} == set(members), (
        f"ring-member set diverged {context}"
    )
    assert {p.address for p in got_free} == set(free), f"free set diverged {context}"
    # Counts must come from the same bookkeeping (no duplicates hiding in sets).
    assert len(got_live) == len(live)
    assert len(got_members) == len(members)
    assert len(got_free) == len(free)
    # The sorted view: strictly increasing (value, address) pairs.
    ordering = [(p.ring.value, p.address) for p in got_members]
    assert all(a < b for a, b in zip(ordering, ordering[1:])), (
        f"ring-value ordering not strictly sorted {context}: {ordering}"
    )
    # A failed peer must never be reported as a ring member.
    assert all(p.alive for p in got_members), f"failed peer among members {context}"
    assert all(p.alive for p in got_free), f"failed peer among free peers {context}"


def build_index(seed: int, free_peers: int = 0) -> PRingIndex:
    """Bootstrap plus ``free_peers`` waiting peers (splits pull them into the ring)."""
    config = default_config(seed=seed).with_pepper_protocols()
    index = PRingIndex(config)
    index.bootstrap()
    for _ in range(free_peers):
        index.add_peer()
    return index


# --------------------------------------------------------------------------- randomized churn
def test_membership_index_matches_rescan_under_randomized_churn():
    """The acceptance schedule: 500 randomized join/insert/delete/fail steps."""
    index = build_index(seed=61)
    rng = random.Random(0xC0FFEE)
    next_key = iter(range(1, 100_000))
    inserted: list = []

    for step in range(CHURN_STEPS):
        roll = rng.random()
        if roll < 0.20:
            index.add_peer()
        elif roll < 0.55:
            key = (next(next_key) * 7.3) % index.config.key_space
            if index.insert_item_now(key):
                inserted.append(key)
        elif roll < 0.70 and inserted:
            victim_key = inserted.pop(rng.randrange(len(inserted)))
            index.delete_item_now(victim_key)
        elif roll < 0.80:
            members = index.ring_members()
            if len(members) > 3:
                index.fail_peer(rng.choice(members).address)
        index.run(rng.uniform(0.05, 0.4))
        assert_membership_consistent(index, context=f"after step {step}")

    # The schedule must actually have exercised the interesting transitions.
    assert index.history.count("peer_failed") > 0
    assert index.metrics.count("insert_succ") > 0


def test_membership_survives_merges_and_leaves():
    """Deleting most items forces underflows -> merges -> LEAVING/FREE transitions."""
    index = build_index(seed=62, free_peers=10)
    rng = random.Random(9)
    keys = [i * 97.0 % index.config.key_space for i in range(1, 60)]
    for key in keys:
        index.insert_item_now(key)
        index.run(0.2)
    index.run(20.0)
    assert_membership_consistent(index, "after build")
    before = len(index.ring_members())
    assert before > 2
    for key in rng.sample(keys, int(len(keys) * 0.8)):
        index.delete_item_now(key)
        index.run(0.5)
        assert_membership_consistent(index, f"after deleting {key}")
    index.run(30.0)
    assert_membership_consistent(index, "after merge settle")
    # Merged-away peers must have moved to the free set, not vanished.
    assert len(index.ring_members()) < before
    assert len(index.free_peers()) > 0


def test_membership_survives_correlated_failures():
    index = build_index(seed=63, free_peers=12)
    for i in range(1, 80):
        index.insert_item_now(i * 127.0 % index.config.key_space)
    index.run(25.0)
    assert_membership_consistent(index, "after build")
    members = index.ring_members()
    assert len(members) > 5
    for victim in members[2:5]:  # ring-adjacent victims: the hard case
        index.fail_peer(victim.address)
        assert_membership_consistent(index, f"right after failing {victim.address}")
    index.run(40.0)
    assert_membership_consistent(index, "after repair settle")


# --------------------------------------------------------------------------- peer_for_key boundaries
@pytest.fixture(scope="module")
def settled_index():
    index = build_index(seed=64, free_peers=10)
    for i in range(1, 70):
        index.insert_item_now(i * 139.0 % index.config.key_space)
    index.run(30.0)
    assert len(index.ring_members()) >= 4
    return index


def test_peer_for_key_below_smallest_value_wraps_to_first_member(settled_index):
    members = settled_index.ring_members()
    smallest = members[0]
    key = smallest.ring.value / 2.0
    owner = settled_index.peer_for_key(key)
    assert owner is smallest
    assert owner.store.owns_key(key)


def test_peer_for_key_above_largest_value_wraps_to_first_member():
    # The bootstrap peer owns value == key_space (the domain maximum), so "a
    # key above the largest ring value" only exists after that peer fails and
    # the ring repairs around the gap.
    index = build_index(seed=67, free_peers=10)
    for i in range(1, 70):
        index.insert_item_now(i * 151.0 % index.config.key_space)
    index.run(30.0)
    members = index.ring_members()
    assert members[-1].ring.value == index.config.key_space
    index.fail_peer(members[-1].address)
    index.run(40.0)  # failure detection + replica revival
    members = index.ring_members()
    largest = members[-1]
    assert largest.ring.value < index.config.key_space
    key = (largest.ring.value + index.config.key_space) / 2.0
    assert key > largest.ring.value
    owner = index.peer_for_key(key)
    # The wrap-around arm (largest, smallest] belongs to the smallest-value peer.
    assert owner is members[0]
    assert owner.store.owns_key(key)


def test_peer_for_key_exactly_on_a_ring_value_is_inclusive(settled_index):
    # Ranges are (pred.value, own.value]: a key equal to a member's ring value
    # belongs to that member, not its successor.
    for member in settled_index.ring_members():
        owner = settled_index.peer_for_key(member.ring.value)
        assert owner is member


def test_peer_for_key_between_two_members_picks_the_upper(settled_index):
    members = settled_index.ring_members()
    lower, upper = members[1], members[2]
    key = (lower.ring.value + upper.ring.value) / 2.0
    owner = settled_index.peer_for_key(key)
    assert owner is upper


def test_peer_for_key_single_member_ring_owns_everything():
    index = build_index(seed=65)
    only = index.ring_members()[0]
    for key in (0.0, 1.0, index.config.key_space / 2, index.config.key_space):
        assert index.peer_for_key(key) is only


def test_peer_for_key_no_members_returns_none():
    index = PRingIndex(default_config(seed=66))
    assert index.peer_for_key(1.0) is None
