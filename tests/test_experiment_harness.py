"""Tests for the experiment harness and (tiny-scale) figure reproductions."""

import pytest

from repro.harness.experiment import ClusterExperiment, ExperimentSettings
from repro.harness.figures import (
    FigureResult,
    ablation_availability,
    figure_19,
    figure_21,
    figure_22,
)
from repro.index.config import default_config


def make_experiment(seed=101, peers=8, items=50, **overrides):
    config = default_config(seed=seed, **overrides)
    settings = ExperimentSettings(peers=peers, items=items, seed=seed, settle_time=15.0)
    return ClusterExperiment(config, settings)


def test_build_creates_ring_and_stores_all_items():
    experiment = make_experiment()
    index = experiment.build()
    assert len(index.ring_members()) >= 3
    assert index.total_stored_items() == len(experiment.inserted_keys)


def test_settings_scaled():
    settings = ExperimentSettings(peers=30, items=180)
    scaled = settings.scaled(0.5)
    assert scaled.peers == 15
    assert scaled.items == 90


def test_run_query_outcome_fields():
    experiment = make_experiment(seed=102)
    experiment.build()
    keys = experiment.inserted_keys
    outcome = experiment.run_query(keys[3], keys[20])
    assert outcome.complete
    assert outcome.hops >= 1
    assert outcome.keys == experiment.expected_keys(keys[3], keys[20])
    assert outcome.record is not None


def test_inject_failures_kills_ring_members():
    experiment = make_experiment(seed=103)
    experiment.build()
    before = len(experiment.index.ring_members())
    injected = experiment.inject_failures(rate_per_100s=20.0, duration=50.0)
    assert injected >= before / 10
    assert len(experiment.index.ring_members()) <= before


def test_delete_items_forces_merges():
    experiment = make_experiment(seed=104)
    experiment.build()
    keys = experiment.inserted_keys
    experiment.delete_items(keys[: int(len(keys) * 0.8)], rate=4.0)
    experiment.settle(25.0)
    assert experiment.index.metrics.count("merge") >= 1


def test_run_queries_by_hops_buckets_results():
    experiment = make_experiment(seed=105)
    experiment.build()
    outcomes = experiment.run_queries_by_hops([1, 3], queries_per_target=2)
    assert outcomes
    for hops, results in outcomes.items():
        assert hops >= 0
        assert all(result.complete for result in results)


# --------------------------------------------------------------------------- figure smoke tests
def test_figure_result_table_and_series():
    result = FigureResult(
        figure="F", description="d", headers=["x", "y"], rows=[(1, 2.0), (3, 4.0)]
    )
    assert "F: d" in result.as_table()
    assert result.series() == {1: 2.0, 3: 4.0}


def test_figure_19_shape_tiny():
    result = figure_19(succ_lengths=(2, 6), peers=9, items=55, seed=201)
    series_naive = {row[0]: row[1] for row in result.rows}
    series_pepper = {row[0]: row[2] for row in result.rows}
    assert set(series_naive) == {2, 6}
    # PEPPER pays more than naive, and grows with the successor-list length.
    assert series_pepper[2] > series_naive[2]
    assert series_pepper[6] > series_pepper[2]


def test_figure_21_scan_matches_naive_tiny():
    result = figure_21(hop_targets=(1, 3), peers=9, items=55, queries_per_target=2, seed=202)
    assert result.rows
    for _hops, scan_time, naive_time in result.rows:
        assert scan_time == pytest.approx(naive_time, rel=2.0, abs=0.05)


def test_figure_22_safe_leave_much_slower_than_naive_tiny():
    result = figure_22(succ_lengths=(4,), peers=8, items=50, seed=203)
    (_length, merge_time, safe_leave, naive_leave), = result.rows
    assert merge_time > naive_leave
    assert safe_leave > naive_leave
    assert naive_leave < 0.01


def test_ablation_availability_tiny():
    result = ablation_availability(peers=8, items=45, seed=204)
    rows = {row[0]: row for row in result.rows}
    assert rows["pepper"][2] == 0  # no lost items with the paper's protocols
