"""Unit and property-based tests for histories of operations."""

from hypothesis import given, settings, strategies as st

from repro.core.histories import History, HistoryRecorder, Operation
from repro.sim.engine import Simulator


def test_recorder_assigns_monotonic_ids_and_times():
    sim = Simulator()
    recorder = HistoryRecorder(sim)
    first = recorder.record("a", peer="p1")
    sim._schedule(1.0, lambda: None)
    sim.run()
    second = recorder.record("b", peer="p2", extra=1)
    assert first.op_id < second.op_id
    assert first.time <= second.time
    assert second.get("extra") == 1
    assert recorder.count("a") == 1


def test_recorder_can_be_disabled():
    recorder = HistoryRecorder()
    recorder.enabled = False
    assert recorder.record("a") is None
    assert len(recorder.history()) == 0


def test_recorder_clear():
    recorder = HistoryRecorder()
    recorder.record("a")
    recorder.clear()
    assert len(recorder.history()) == 0


def test_history_sorted_by_time_then_id():
    ops = [
        Operation(2, "b", 1.0, None),
        Operation(1, "a", 1.0, None),
        Operation(3, "c", 0.5, None),
    ]
    history = History(ops)
    assert [op.kind for op in history] == ["c", "a", "b"]


def test_of_kind_and_last_of_kind():
    history = History(
        [
            Operation(1, "x", 0.0, "p"),
            Operation(2, "y", 1.0, "p"),
            Operation(3, "x", 2.0, "q"),
        ]
    )
    assert [op.op_id for op in history.of_kind("x")] == [1, 3]
    assert history.last_of_kind("x").op_id == 3
    assert history.last_of_kind("missing") is None


def test_happened_before_is_strict():
    early = Operation(1, "x", 0.0, None)
    late = Operation(2, "y", 1.0, None)
    history = History([early, late])
    assert history.happened_before(early, late)
    assert not history.happened_before(late, early)
    assert not history.happened_before(early, early)


def test_truncate_returns_prefix():
    ops = [Operation(i, "op", float(i), None) for i in range(5)]
    history = History(ops)
    truncated = history.truncate(ops[2])
    assert len(truncated) == 3
    assert truncated.operations[-1].op_id == 2


def test_between_window():
    ops = [Operation(i, "op", float(i), None) for i in range(10)]
    history = History(ops)
    window = history.between(2.0, 5.0)
    assert [op.op_id for op in window] == [2, 3, 4, 5]


def test_filter_predicate():
    ops = [Operation(i, "op", float(i), "p" if i % 2 else "q") for i in range(6)]
    history = History(ops)
    only_p = history.filter(lambda op: op.peer == "p")
    assert all(op.peer == "p" for op in only_p)
    assert len(only_p) == 3


# --------------------------------------------------------------------------- properties
operation_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=50,
)


@settings(max_examples=100, deadline=None)
@given(operation_lists)
def test_property_happened_before_is_a_strict_total_order(raw):
    ops = [Operation(i, kind, time, None) for i, (time, kind) in enumerate(raw)]
    history = History(ops)
    ordered = history.operations
    for i, first in enumerate(ordered):
        for second in ordered[i + 1 :]:
            assert history.happened_before(first, second)
            assert not history.happened_before(second, first)


@settings(max_examples=100, deadline=None)
@given(operation_lists)
def test_property_truncation_is_prefix_closed(raw):
    ops = [Operation(i, kind, time, None) for i, (time, kind) in enumerate(raw)]
    history = History(ops)
    if not len(history):
        return
    pivot = history.operations[len(history) // 2]
    truncated = history.truncate(pivot)
    for op in truncated:
        assert not history.happened_before(pivot, op)
    assert pivot in truncated.operations
