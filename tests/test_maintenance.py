"""Tests for storage balancing: splits, merges, redistributions and the free-peer pool."""

import pytest

from repro import PRingIndex, default_config
from repro.core.correctness import check_consistent_successor_pointers
from tests.conftest import build_cluster


def test_free_peer_pool_acquire_release():
    from repro.datastore.maintenance import FreePeerPool
    from repro.sim.engine import Simulator
    from repro.sim.network import Network, NetworkConfig
    from repro.sim.randomness import RngStreams

    sim = Simulator()
    network = Network(sim, RngStreams(0).stream("net"), NetworkConfig())
    pool = FreePeerPool(sim, network, "pool")
    pool.add("peerA")
    pool.add("peerA")  # duplicates ignored
    assert pool.available() == 1
    assert pool.rpc_pool_acquire({}, None) == {"address": "peerA"}
    assert pool.rpc_pool_acquire({}, None) == {"address": None}
    pool.rpc_pool_release({"address": "peerA"}, None)
    assert pool.available() == 1


def test_splits_pull_free_peers_into_the_ring():
    index, keys = build_cluster(seed=41, peers=8)
    assert len(index.ring_members()) > 1
    assert index.history.count("split_finished") >= len(index.ring_members()) - 1


def test_split_preserves_all_items():
    index, keys = build_cluster(seed=42, peers=8)
    stored = set()
    for peer in index.ring_members():
        stored.update(peer.store.items.keys())
    assert stored == set(keys)


def test_no_splits_without_free_peers():
    config = default_config(seed=43)
    index = PRingIndex(config)
    index.bootstrap()  # no free peers at all
    for key in range(100, 400, 10):
        index.insert_item_now(float(key))
        index.run(0.2)
    index.run(10.0)
    # The single peer holds everything (overflowing, but nowhere to split to).
    assert len(index.ring_members()) == 1
    assert index.total_stored_items() == 30
    assert index.history.count("split_deferred") >= 1


def test_no_free_peer_deferral_backs_off():
    """A deferred split must not retry on every balancer round.

    Regression: ``split_deferred(reason="no_free_peer")`` used to be retried
    by every periodic check with no backoff, hot-spinning the balancer (and
    the free-peer pool RPC) at saturation.  Consecutive deferrals now back
    the periodic retry off multiplicatively, so a saturated deployment
    records a handful of deferrals per 120 s instead of one per round.
    """
    config = default_config(seed=47)
    index = PRingIndex(config)
    index.bootstrap()  # a single overflowing peer, never any free peers
    for key in range(100, 400, 10):
        index.insert_item_now(float(key))
        index.run(0.2)
    before = index.history.count("split_deferred")
    index.run(120.0)
    deferred = index.history.count("split_deferred") - before
    # The balancer round is ~4 s: without backoff this window would record
    # ~30 deferrals; with multiplicative backoff (capped at 8x the base
    # period) it stays in single digits, while still retrying eventually.
    assert 1 <= deferred <= 10


def test_overflow_event_still_retries_split_immediately_during_backoff():
    """New overflow pressure (an insert) bypasses the deferral backoff.

    The backoff only pauses the *periodic* retry; an overflow event carries
    new information (the store grew), so it must still trigger an immediate
    attempt -- otherwise a build-phase deferral could delay a needed split by
    the whole backoff interval.
    """
    config = default_config(seed=48)
    index = PRingIndex(config)
    index.bootstrap()
    for key in range(100, 400, 10):
        index.insert_item_now(float(key))
        index.run(0.2)
    peer = index.ring_members()[0]
    # Force a long backoff window, then overflow again: the event-triggered
    # attempt must run (and record its deferral) despite the backoff.
    peer.balancer._defer_until = index.sim.now + 100.0
    before = index.history.count("split_deferred")
    index.insert_item_now(401.0)  # overflow event during the backoff window
    index.run(2.0)
    assert index.history.count("split_deferred") > before


def test_ring_stranded_overflow_defers_split_instead_of_spinning():
    """An overflow made of items the ring can no longer accept must not split.

    Regression for the 5000-peer wedge: when a peer's effective ring boundary
    moves past items it still holds (a half-completed split or a lagging
    range), the old split logic kept picking a stranded item as the split key
    -- the new peer's join was redirected forever, it returned to the pool,
    and the periodic check retried the same doomed split indefinitely
    (permanently blocking lifecycle quiescence).  Such stores must report no
    split pressure and defer the split before touching the free-peer pool.
    """
    from repro.datastore.items import Item

    # Shed disabled: this test pins the *deferral* behaviour, so the stranded
    # copies must stay put instead of being healed to their responsible owner
    # (tests/test_stranded_shed.py covers the healing path).
    index, keys = build_cluster(seed=44, peers=6, shed_stranded=False)
    for _ in range(4):  # make sure the pool has free peers to (not) consume
        index.add_peer()
    index.run(60.0)  # let any genuine splits the new free peers enable finish
    assert not index.split_pressure()
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    peer = members[2]
    low = peer.store.range.low
    # Strand items: overflow the store with keys at/below its lower boundary
    # (as if the boundary moved up after they arrived).
    for offset in range(index.config.overflow_threshold + 2):
        peer.store.items.add(Item((low - 0.001 * (offset + 1)) % index.config.key_space))
    assert peer.store.item_count() > index.config.overflow_threshold
    in_range = len(peer.balancer._split_candidates())
    assert in_range <= index.config.overflow_threshold
    assert not peer.balancer.split_feasible()
    assert not index.split_pressure()
    # The split defers without consuming a free peer or wedging the balancer.
    free_before = len(index.free_peers())
    peer.balancer.schedule_split()
    index.run(30.0)
    assert peer.balancer._pending_split is None
    assert not peer.balancer._balancing
    assert len(index.free_peers()) == free_before
    assert index.history.count("split_deferred") > 0


def test_split_base_respects_a_predecessor_inside_the_range():
    """A ring predecessor inside the store range tightens the split boundary."""
    index, keys = build_cluster(seed=45, peers=6)
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    peer = members[2]
    low, own = peer.store.range.low, peer.ring.value
    assert peer.balancer._split_base() == low
    # Simulate the ring adopting a closer predecessor while the range lags.
    inside = (low + (own - low) * 0.5) if own > low else own - 0.001
    peer.ring.pred_address = "peerX"
    peer.ring.pred_value = inside
    assert peer.balancer._split_base() == inside


def test_deletions_cause_merges_and_peers_become_free():
    index, keys = build_cluster(seed=44, peers=8)
    before = len(index.ring_members())
    for key in keys[: int(len(keys) * 0.8)]:
        index.delete_item_now(key)
        index.run(0.8)
    index.run(30.0)
    after = len(index.ring_members())
    assert after < before
    assert index.metrics.count("merge") >= 1
    assert len(index.free_peers()) > 0
    assert check_consistent_successor_pointers(index.live_peers()).ok


@pytest.mark.xfail(
    strict=False,
    reason=(
        "timing-sensitive under cascading merges: when several adjacent peers "
        "merge away in quick succession a handed-off item can transiently sit "
        "on a peer that is between ring memberships (documented limitation)"
    ),
)
def test_merged_peers_surrender_items_to_survivors():
    index, keys = build_cluster(seed=45, peers=8)
    victims = keys[: int(len(keys) * 0.8)]
    for key in victims:
        index.delete_item_now(key)
        index.run(0.8)
    index.run(30.0)
    survivors = set()
    for peer in index.ring_members():
        survivors.update(peer.store.items.keys())
    assert survivors == set(keys) - set(victims)


def test_redistribution_moves_boundary():
    index, keys = build_cluster(seed=46, peers=8)
    redistributions = index.history.count("redistribute")
    # Delete items from one peer's range only, so it underflows while its
    # successor still has plenty -> redistribution rather than merge.
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    donor = None
    for peer, successor in zip(members, members[1:]):
        if peer.store.item_count() >= 5 and successor.store.item_count() >= 8:
            donor = (peer, successor)
            break
    if donor is None:
        pytest.skip("no suitable adjacent pair in this topology")
    peer, successor = donor
    for key in list(peer.store.items.keys())[: peer.store.item_count() - 1]:
        index.delete_item_now(key)
        index.run(0.3)
    index.run(15.0)
    assert (
        index.history.count("redistribute") > redistributions
        or index.metrics.count("merge") > 0
    )


def test_merged_peer_leaves_the_ring_and_surrenders_its_range():
    index, keys = build_cluster(seed=44, peers=8)
    for key in keys[: int(len(keys) * 0.8)]:
        index.delete_item_now(key)
        index.run(0.8)
    index.run(30.0)
    merges = index.history.history().of_kind("merge_finished")
    assert merges, "the deletion workload should force at least one merge"
    for op in merges:
        merged_peer = index.peers[op.peer]
        if merged_peer.alive:
            # A merged-away peer is out of the ring (free) unless a later split
            # pulled it back in; either way it must hold a consistent state.
            assert merged_peer.is_free or merged_peer.in_ring
    # At least the most recent merger should still be outside the ring.
    last_merged = index.peers[merges[-1].peer]
    assert not last_merged.in_ring or index.pool.available() > 0


def test_balance_survives_interleaved_inserts_and_deletes():
    index, keys = build_cluster(seed=48, peers=8)
    rng_keys = [k + 7.0 for k in keys[:20]]
    for new_key, victim in zip(rng_keys, keys[:20]):
        index.insert_item_now(new_key)
        index.delete_item_now(victim)
        index.run(0.5)
    index.run(20.0)
    expected = (set(keys) - set(keys[:20])) | set(rng_keys)
    stored = set()
    for peer in index.ring_members():
        stored.update(peer.store.items.keys())
    assert stored == expected
    assert check_consistent_successor_pointers(index.live_peers()).ok
