"""Codec round trips: every serialised structure survives encode -> JSON -> decode.

Each test pushes a component's encoding through an actual ``json.dumps`` /
``json.loads`` cycle (the snapshot store persists JSON, so "round trips as a
Python dict" alone would not prove the on-disk format), decodes it into a
*fresh* instance of the component, and asserts the re-encoding is identical.
Component tests that need live protocol objects run on a settled deployment,
parametrized over both event engines like the transport unit tests.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.datastore.items import Item, ItemStore
from repro.datastore.ranges import CircularRange
from repro.index.peer import IndexPeer
from repro.maintenance.cadence import AdaptiveCadence, FixedCadence
from repro.sim.engine import ENGINE_NAMES
from repro.snapshot.codec import (
    decode_cadence,
    decode_peer_components,
    decode_range,
    decode_rng_state,
    decode_stats,
    encode_cadence,
    encode_peer,
    encode_range,
    encode_rng_state,
    encode_stats,
)
from repro.transport.api import NetworkStats

from tests.conftest import build_cluster


def _json_cycle(data):
    """The exact transformation the snapshot store applies to the payload."""
    return json.loads(json.dumps(data))


# ------------------------------------------------------------------ scalar codecs
def test_rng_state_round_trip_preserves_the_stream():
    rng = random.Random(1234)
    rng.random(), rng.gauss(0, 1)  # advance past the seed, set gauss_next
    encoded = _json_cycle(encode_rng_state(rng.getstate()))
    twin = random.Random()
    twin.setstate(decode_rng_state(encoded))
    assert [twin.random() for _ in range(20)] == [rng.random() for _ in range(20)]
    assert twin.gauss(0, 1) == rng.gauss(0, 1)


def test_item_store_round_trip_including_version():
    store = ItemStore()
    for skv in (10.0, 250.5, 3.25):
        store.add(Item(skv=skv, payload=f"p-{skv}"))
    store.remove(250.5)  # bumps version past len(items): the counter matters
    from repro.snapshot.codec import decode_item_store, encode_item_store

    encoded = _json_cycle(encode_item_store(store))
    fresh = ItemStore()
    decode_item_store(encoded, fresh)
    assert encode_item_store(fresh) == encoded
    assert fresh.version == store.version


@pytest.mark.parametrize(
    "crange",
    [None, CircularRange(10.0, 250.0), CircularRange(250.0, 10.0), CircularRange(0.0, 0.0, full=True)],
    ids=["none", "plain", "wrapping", "full"],
)
def test_range_round_trip(crange):
    decoded = decode_range(_json_cycle(encode_range(crange)))
    assert encode_range(decoded) == encode_range(crange)


def test_adaptive_cadence_round_trip():
    cadence = AdaptiveCadence(base=2.0)
    for _ in range(5):
        cadence.note_success()  # backed-off interval + success count
    fresh = AdaptiveCadence(base=2.0)
    decode_cadence(_json_cycle(encode_cadence(cadence)), fresh)
    assert fresh._interval == cadence._interval
    assert fresh._successes == cadence._successes


def test_fixed_cadence_encodes_as_stateless():
    assert encode_cadence(FixedCadence(base=1.0)) is None


def test_stats_round_trip():
    stats = NetworkStats()
    stats.messages_sent = 101
    stats.rpc_calls = 55
    stats.rpc_timeouts = 2
    stats.latency_sum = 0.123456789
    stats.latency_samples = 55
    stats.per_method = {"echo": 50, "note": 5}
    stats.per_site_rpcs = {"site-a": 55}
    fresh = NetworkStats()
    decode_stats(_json_cycle(encode_stats(stats)), fresh)
    assert encode_stats(fresh) == encode_stats(stats)


# ------------------------------------------------------------------ live components
@pytest.fixture(params=ENGINE_NAMES)
def cluster(request, monkeypatch):
    # REPRO_ENGINE would collapse the parametrization onto one engine.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    index, keys = build_cluster(seed=5, engine=request.param)
    yield index
    index.shutdown()


# Fields decode_peer_components intentionally leaves to the world-level
# restore (loop arming / joined-event succeed need the defer context).
_WORLD_LEVEL_RING_FIELDS = ("maintenance_started", "joined")


def test_peer_round_trip_on_both_engines(cluster):
    """encode -> JSON -> decode into a *fresh* peer -> identical re-encoding.

    Exercises every per-peer codec at once (ring, datastore, replication,
    router, balancer, query counter) against protocol state produced by a
    real settled deployment -- successor lists, replica freshness maps,
    redirect caches and adaptive cadences all carry non-default values here.
    """
    for address in list(cluster.membership._members):
        source = cluster.peers[address]
        encoded = _json_cycle(encode_peer(source))
        fresh = IndexPeer(
            sim=cluster.sim,
            network=cluster.network,
            address=f"rt-{address}",
            value=encoded["ring"]["value"],
            config=cluster.config,
            rng=cluster.rngs.stream(f"peer:rt-{address}"),
            pool_address=cluster.pool.address,
            metrics=cluster.metrics,
            history=cluster.history,
        )
        decode_peer_components(encoded, fresh)
        round_tripped = encode_peer(fresh)
        round_tripped["address"] = encoded["address"]
        for field in _WORLD_LEVEL_RING_FIELDS:
            round_tripped["ring"][field] = encoded["ring"][field]
        assert round_tripped == encoded, f"peer {address} did not round-trip"


def test_live_stats_round_trip(cluster):
    """The settled deployment's real traffic counters survive the cycle."""
    stats = cluster.network.stats
    assert stats.rpc_calls > 0 and stats.per_method  # non-trivial sample
    fresh = NetworkStats()
    decode_stats(_json_cycle(encode_stats(stats)), fresh)
    assert encode_stats(fresh) == encode_stats(stats)


def test_live_rng_streams_round_trip(cluster):
    """Every named stream's state survives; the twin draws the same future."""
    for name, stream in cluster.rngs._streams.items():
        twin = random.Random()
        twin.setstate(decode_rng_state(_json_cycle(encode_rng_state(stream.getstate()))))
        assert twin.getstate() == stream.getstate(), f"stream {name!r}"
